//! Piccolo on Jiffy (paper §5.3).
//!
//! Piccolo programs share distributed mutable state through key-value
//! tables; concurrent updates to one key are resolved by user-defined
//! *accumulators*. Kernel functions run as parallel tasks; control
//! functions run on a master that creates tables, launches kernels,
//! renews leases and checkpoints tables by flushing them to the
//! persistent tier.

use jiffy_sync::Arc;
use std::time::Duration;

use jiffy_client::{JobClient, KvClient};
use jiffy_common::Result;

/// Resolves concurrent updates to one key (Piccolo's accumulator).
pub trait Accumulator: Send + Sync {
    /// Merges `update` into the current value (if any), producing the
    /// stored value.
    fn accumulate(&self, current: Option<&[u8]>, update: &[u8]) -> Vec<u8>;
}

/// Sum accumulator over little-endian `f64` values.
pub struct SumF64;

impl Accumulator for SumF64 {
    fn accumulate(&self, current: Option<&[u8]>, update: &[u8]) -> Vec<u8> {
        let cur = current
            .and_then(|b| b.try_into().ok().map(f64::from_le_bytes))
            .unwrap_or(0.0);
        let upd = update
            .try_into()
            .ok()
            .map(f64::from_le_bytes)
            .unwrap_or(0.0);
        (cur + upd).to_le_bytes().to_vec()
    }
}

/// Overwrite accumulator (last writer wins).
pub struct Overwrite;

impl Accumulator for Overwrite {
    fn accumulate(&self, _current: Option<&[u8]>, update: &[u8]) -> Vec<u8> {
        update.to_vec()
    }
}

/// A Piccolo table: a Jiffy KV-store with an accumulator for updates.
///
/// Kernels partition the key space among themselves (the Piccolo
/// convention), so each key has a single writer per superstep and the
/// read-modify-write `update` is race-free; cross-kernel aggregation
/// happens between supersteps through `update` on a fresh handle.
pub struct PiccoloTable<A> {
    kv: KvClient,
    name: String,
    accumulator: Arc<A>,
}

impl<A: Accumulator> PiccoloTable<A> {
    /// Creates (or opens) the table `name` on the job.
    ///
    /// # Errors
    ///
    /// Allocation failures.
    pub fn create(
        job: &JobClient,
        name: &str,
        accumulator: A,
        initial_blocks: u32,
    ) -> Result<Self> {
        let kv = job.open_kv(name, &[], initial_blocks)?;
        Ok(Self {
            kv,
            name: name.to_string(),
            accumulator: Arc::new(accumulator),
        })
    }

    /// Opens another handle to the same table (for a new kernel task).
    ///
    /// # Errors
    ///
    /// Resolution failures.
    pub fn another_handle(&self, job: &JobClient) -> Result<Self> {
        let kv = job.open_kv(&self.name, &[], 1)?;
        Ok(Self {
            kv,
            name: self.name.clone(),
            accumulator: self.accumulator.clone(),
        })
    }

    /// Applies `update` to `key` through the accumulator.
    ///
    /// # Errors
    ///
    /// KV failures.
    pub fn update(&self, key: &[u8], update: &[u8]) -> Result<()> {
        let current = self.kv.get(key)?;
        let merged = self.accumulator.accumulate(current.as_deref(), update);
        self.kv.put(key, &merged)?;
        Ok(())
    }

    /// Direct read.
    ///
    /// # Errors
    ///
    /// KV failures.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.kv.get(key)
    }

    /// Direct write (bypasses the accumulator).
    ///
    /// # Errors
    ///
    /// KV failures.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.kv.put(key, value)?;
        Ok(())
    }

    /// Number of keys.
    ///
    /// # Errors
    ///
    /// KV failures.
    pub fn len(&self) -> Result<u64> {
        self.kv.count()
    }

    /// Whether the table is empty.
    ///
    /// # Errors
    ///
    /// KV failures.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Checkpoints the table to the persistent tier (Piccolo
    /// checkpointing == Jiffy flush).
    ///
    /// # Errors
    ///
    /// Flush failures.
    pub fn checkpoint(&self, job: &JobClient, external_path: &str) -> Result<u64> {
        job.flush(&self.name, external_path)
    }
}

/// Runs `num_kernels` kernel functions in parallel (threads as stand-in
/// lambdas), with a master lease renewer covering `table_names`. Each
/// kernel gets its index; the caller's closure builds per-kernel state
/// (e.g. its own table handles) and runs the kernel body.
///
/// # Errors
///
/// The first kernel failure.
pub fn run_kernels<F>(
    job: &JobClient,
    table_names: Vec<String>,
    num_kernels: usize,
    kernel: F,
) -> Result<()>
where
    F: Fn(usize) -> Result<()> + Send + Sync + 'static,
{
    let renewer = job.start_lease_renewer(table_names, Duration::from_millis(200));
    let kernel = Arc::new(kernel);
    let mut handles = Vec::with_capacity(num_kernels);
    for k in 0..num_kernels {
        let kernel = kernel.clone();
        handles.push(std::thread::spawn(move || kernel(k)));
    }
    let mut first_error = None;
    for h in handles {
        if let Err(e) = h.join().expect("kernel panicked") {
            first_error.get_or_insert(e);
        }
    }
    drop(renewer);
    match first_error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
