//! Distributed programming models on Jiffy (paper §5).
//!
//! The paper demonstrates Jiffy's expressiveness by building serverless
//! incarnations of four classic frameworks on its data structures. This
//! crate does the same, with "serverless tasks" realized as threads
//! driving independent Jiffy client handles (each with its own cached
//! metadata, exactly like separate lambda invocations):
//!
//! | model | paper | Jiffy structures used |
//! |---|---|---|
//! | [`mapreduce`] | MapReduce (§5.1) | shuffle **files** (many concurrent appenders), master-driven lease renewal |
//! | [`dataflow`] | Dryad (§5.2) | **files** and **queues** as channels; vertices scheduled on input readiness; queue notifications |
//! | [`streaming`] | StreamScope (§5.2) | continuous event **queues**, hash-partitioned stages |
//! | [`piccolo`] | Piccolo (§5.3) | shared **KV-store** tables with user accumulators, checkpoint via flush |

pub mod dataflow;
pub mod mapreduce;
pub mod piccolo;
pub mod records;
pub mod streaming;

pub use dataflow::{ChannelKind, Dataflow, VertexCtx};
pub use mapreduce::{MapReduceJob, Mapper, Reducer};
pub use piccolo::{Accumulator, PiccoloTable};
pub use records::{RecordReader, RecordWriter};
pub use streaming::{StreamPipeline, StreamStage};
