//! Record framing over Jiffy files and queues.
//!
//! Shuffle files concatenate key-value records from many concurrent
//! writers; each record is written as one atomic `append` of
//! `[u32 length][wire-encoded (key, value)]`, so readers can re-split
//! the byte stream regardless of interleaving.

use jiffy_client::FileClient;
use jiffy_common::{JiffyError, Result};
use jiffy_proto::Blob;

/// Writes length-prefixed records to a Jiffy file.
pub struct RecordWriter<'a> {
    file: &'a FileClient,
}

impl<'a> RecordWriter<'a> {
    /// Wraps a file handle.
    pub fn new(file: &'a FileClient) -> Self {
        Self { file }
    }

    /// Appends one key-value record atomically.
    ///
    /// # Errors
    ///
    /// File append failures.
    pub fn write(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let body = jiffy_proto::to_bytes(&(Blob::new(key.to_vec()), Blob::new(value.to_vec())))?;
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        framed.extend_from_slice(&body);
        self.file.append(&framed)
    }
}

/// Re-splits a record stream produced by [`RecordWriter`].
pub struct RecordReader {
    data: Vec<u8>,
    pos: usize,
}

impl RecordReader {
    /// Reads the whole file and prepares to iterate its records.
    ///
    /// # Errors
    ///
    /// File read failures.
    pub fn open(file: &FileClient) -> Result<Self> {
        Ok(Self {
            data: file.read_all()?,
            pos: 0,
        })
    }

    /// Wraps an already-fetched byte stream.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }

    /// Returns the next record, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// [`JiffyError::Codec`] on a corrupt stream.
    pub fn next_record(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        if self.pos + 4 > self.data.len() {
            return Err(JiffyError::Codec("truncated record length".into()));
        }
        let len =
            u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().unwrap()) as usize;
        self.pos += 4;
        if self.pos + len > self.data.len() {
            return Err(JiffyError::Codec("truncated record body".into()));
        }
        let (k, v): (Blob, Blob) = jiffy_proto::from_bytes(&self.data[self.pos..self.pos + len])?;
        self.pos += len;
        Ok(Some((k.into_inner(), v.into_inner())))
    }

    /// Collects all remaining records.
    ///
    /// # Errors
    ///
    /// [`JiffyError::Codec`] on a corrupt stream.
    pub fn collect_all(mut self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

/// Frames a single item for queue-based channels (queues preserve item
/// boundaries natively, so this is plain wire encoding of `(key, value)`).
pub fn encode_item(key: &[u8], value: &[u8]) -> Result<Vec<u8>> {
    jiffy_proto::to_bytes(&(Blob::new(key.to_vec()), Blob::new(value.to_vec())))
}

/// Inverse of [`encode_item`].
///
/// # Errors
///
/// [`JiffyError::Codec`] on malformed items.
pub fn decode_item(bytes: &[u8]) -> Result<(Vec<u8>, Vec<u8>)> {
    let (k, v): (Blob, Blob) = jiffy_proto::from_bytes(bytes)?;
    Ok((k.into_inner(), v.into_inner()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_stream_round_trips_from_bytes() {
        // Build a stream by hand (no cluster needed).
        let mut stream = Vec::new();
        for i in 0..10u32 {
            let body = jiffy_proto::to_bytes(&(
                Blob::new(format!("k{i}").into_bytes()),
                Blob::new(vec![i as u8; i as usize]),
            ))
            .unwrap();
            stream.extend_from_slice(&(body.len() as u32).to_le_bytes());
            stream.extend_from_slice(&body);
        }
        let records = RecordReader::from_bytes(stream).collect_all().unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[3].0, b"k3");
        assert_eq!(records[3].1, vec![3u8; 3]);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        assert!(RecordReader::from_bytes(vec![1, 2]).collect_all().is_err());
        let mut r = RecordReader::from_bytes(vec![100, 0, 0, 0, 1]);
        assert!(r.next_record().is_err());
    }

    #[test]
    fn items_round_trip() {
        let bytes = encode_item(b"key", b"value").unwrap();
        assert_eq!(
            decode_item(&bytes).unwrap(),
            (b"key".to_vec(), b"value".to_vec())
        );
    }
}
