//! Dryad-style dataflow on Jiffy (paper §5.2).
//!
//! Programmers describe a DAG whose vertices are computations and whose
//! edges are data channels — Jiffy **files** (batch: the consumer starts
//! once the producer finished) or **queues** (streaming: producer and
//! consumer run concurrently; the consumer detects item availability via
//! Jiffy notifications). A master process schedules vertices as their
//! inputs become ready and renews leases.

use jiffy_sync::Arc;
use std::collections::HashMap;
use std::time::Duration;

use jiffy_client::{FileClient, JobClient, QueueClient};
use jiffy_common::{JiffyError, Result};
use jiffy_proto::OpKind;

use crate::records::{self, RecordReader, RecordWriter};

/// Kind of a dataflow channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// A Jiffy file: batch semantics, ready when fully written.
    File,
    /// A Jiffy FIFO queue: streaming semantics, ready when non-empty.
    Queue,
}

/// Sentinel item marking end-of-stream on queue channels.
const EOS: &[u8] = b"__jiffy_dataflow_eos__";

/// Handle a vertex uses to read its inputs and write its outputs.
pub struct VertexCtx {
    inputs: Vec<ChannelReader>,
    outputs: Vec<ChannelWriter>,
}

impl VertexCtx {
    /// Number of input channels.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Reads the next `(key, value)` item from input `i`, blocking for
    /// queue channels until data or end-of-stream.
    ///
    /// # Errors
    ///
    /// Channel failures.
    pub fn read(&mut self, i: usize) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        self.inputs[i].next()
    }

    /// Writes an item to output `o`.
    ///
    /// # Errors
    ///
    /// Channel failures.
    pub fn write(&self, o: usize, key: &[u8], value: &[u8]) -> Result<()> {
        self.outputs[o].write(key, value)
    }
}

enum ChannelReader {
    File(Box<RecordReader>),
    Queue(Box<QueueReader>),
}

struct QueueReader {
    queue: QueueClient,
    listener: jiffy_client::Listener,
    /// EOS sentinels still expected (one per producer vertex).
    eos_remaining: usize,
}

impl ChannelReader {
    fn next(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        match self {
            Self::File(r) => r.next_record(),
            Self::Queue(q) => {
                let QueueReader {
                    queue,
                    listener,
                    eos_remaining,
                } = q.as_mut();
                if *eos_remaining == 0 {
                    return Ok(None);
                }
                loop {
                    match queue.dequeue()? {
                        Some(item) if item == EOS => {
                            *eos_remaining -= 1;
                            if *eos_remaining == 0 {
                                return Ok(None);
                            }
                        }
                        Some(item) => return records::decode_item(&item).map(Some),
                        None => {
                            // Queue is ready "as long as some vertex is
                            // writing to it": wait for an enqueue
                            // notification rather than spinning.
                            let _ = listener.get(Duration::from_millis(20));
                        }
                    }
                }
            }
        }
    }
}

enum ChannelWriter {
    File(Arc<FileClient>),
    Queue(Arc<QueueClient>),
}

impl ChannelWriter {
    fn write(&self, key: &[u8], value: &[u8]) -> Result<()> {
        match self {
            Self::File(f) => RecordWriter::new(f).write(key, value),
            Self::Queue(q) => q.enqueue(&records::encode_item(key, value)?),
        }
    }
}

type VertexFn = Arc<dyn Fn(&mut VertexCtx) -> Result<()> + Send + Sync>;

struct VertexSpec {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    func: VertexFn,
}

/// A dataflow graph under construction / execution.
pub struct Dataflow {
    channels: HashMap<String, ChannelKind>,
    vertices: Vec<VertexSpec>,
}

impl Dataflow {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self {
            channels: HashMap::new(),
            vertices: Vec::new(),
        }
    }

    /// Declares a channel.
    pub fn channel(&mut self, name: &str, kind: ChannelKind) -> &mut Self {
        self.channels.insert(name.to_string(), kind);
        self
    }

    /// Declares a vertex reading `inputs` and writing `outputs`.
    pub fn vertex(
        &mut self,
        name: &str,
        inputs: &[&str],
        outputs: &[&str],
        func: impl Fn(&mut VertexCtx) -> Result<()> + Send + Sync + 'static,
    ) -> &mut Self {
        self.vertices.push(VertexSpec {
            name: name.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            func: Arc::new(func),
        });
        self
    }

    /// Executes the graph on a Jiffy job. Vertices connected by queues
    /// run concurrently; a vertex with file inputs starts once every
    /// producer of those files has finished (Dryad's readiness rule).
    ///
    /// # Errors
    ///
    /// The first vertex failure, after all vertices stop.
    pub fn run(&self, job: &JobClient) -> Result<()> {
        // Create channel prefixes; queue channels carry notifications.
        for (name, kind) in &self.channels {
            match kind {
                ChannelKind::File => {
                    job.open_file(name, &[])?;
                }
                ChannelKind::Queue => {
                    job.open_queue(name, &[])?;
                }
            }
        }
        let renewer = job.start_lease_renewer(
            self.channels.keys().cloned().collect(),
            Duration::from_millis(200),
        );

        // Producer bookkeeping: which vertices write each channel.
        let mut producers: HashMap<&str, Vec<&str>> = HashMap::new();
        for v in &self.vertices {
            for o in &v.outputs {
                producers.entry(o).or_default().push(&v.name);
            }
        }
        // Execute in waves: a vertex is runnable when every *file* input
        // has all of its producers completed. Queue inputs impose no
        // ordering (streaming).
        let mut completed: Vec<String> = Vec::new();
        let mut remaining: Vec<&VertexSpec> = self.vertices.iter().collect();
        let mut first_error: Option<JiffyError> = None;
        while !remaining.is_empty() {
            let (ready, blocked): (Vec<&VertexSpec>, Vec<&VertexSpec>) =
                remaining.into_iter().partition(|v| {
                    v.inputs.iter().all(|ch| {
                        self.channels[ch] != ChannelKind::File
                            || producers
                                .get(ch.as_str())
                                .map(|ps| ps.iter().all(|p| completed.iter().any(|c| c == p)))
                                .unwrap_or(true)
                    })
                });
            if ready.is_empty() {
                return Err(JiffyError::Internal(
                    "dataflow deadlock: no vertex is runnable (file cycle?)".into(),
                ));
            }
            let mut handles = Vec::new();
            for v in &ready {
                let mut ctx = self.make_ctx(job, v)?;
                let func = v.func.clone();
                let outputs: Vec<(String, ChannelKind)> = v
                    .outputs
                    .iter()
                    .map(|o| (o.clone(), self.channels[o]))
                    .collect();
                let job2 = job.clone();
                let name = v.name.clone();
                handles.push(std::thread::spawn(move || -> (String, Result<()>) {
                    let result = func(&mut ctx).and_then(|()| {
                        // Close queue outputs with the EOS sentinel so
                        // downstream consumers terminate.
                        for (o, kind) in &outputs {
                            if *kind == ChannelKind::Queue {
                                let q = job2.open_queue(o, &[])?;
                                q.enqueue(EOS)?;
                            }
                        }
                        Ok(())
                    });
                    (name, result)
                }));
            }
            for h in handles {
                let (name, result) = h.join().expect("vertex panicked");
                if let Err(e) = result {
                    first_error.get_or_insert(e);
                }
                completed.push(name);
            }
            remaining = blocked;
        }
        drop(renewer);
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn make_ctx(&self, job: &JobClient, v: &VertexSpec) -> Result<VertexCtx> {
        let mut inputs = Vec::with_capacity(v.inputs.len());
        for ch in &v.inputs {
            inputs.push(match self.channels[ch] {
                ChannelKind::File => {
                    let f = job.open_file(ch, &[])?;
                    ChannelReader::File(Box::new(RecordReader::open(&f)?))
                }
                ChannelKind::Queue => {
                    let q = job.open_queue(ch, &[])?;
                    let listener = q.subscribe(&[OpKind::Enqueue])?;
                    let eos_remaining = self
                        .vertices
                        .iter()
                        .filter(|p| p.outputs.iter().any(|o| o == ch))
                        .count()
                        .max(1);
                    ChannelReader::Queue(Box::new(QueueReader {
                        queue: q,
                        listener,
                        eos_remaining,
                    }))
                }
            });
        }
        let mut outputs = Vec::with_capacity(v.outputs.len());
        for ch in &v.outputs {
            outputs.push(match self.channels[ch] {
                ChannelKind::File => ChannelWriter::File(Arc::new(job.open_file(ch, &[])?)),
                ChannelKind::Queue => ChannelWriter::Queue(Arc::new(job.open_queue(ch, &[])?)),
            });
        }
        Ok(VertexCtx { inputs, outputs })
    }
}

impl Default for Dataflow {
    fn default() -> Self {
        Self::new()
    }
}
