//! MapReduce on Jiffy (paper §5.1).
//!
//! Map and reduce tasks run as independent workers (threads standing in
//! for lambdas), each with its own Jiffy client handles. Intermediate
//! key-value pairs are exchanged through **shuffle files**: reduce
//! partition `r` has one shuffle file to which *every* map task appends
//! the pairs hashing to `r` — relying on Jiffy's atomic appends for
//! correctness under concurrent writers. A master process creates the
//! address hierarchy and renews leases while tasks run.

use jiffy_sync::Arc;
use std::collections::BTreeMap;
use std::time::Duration;

use jiffy_client::JobClient;
use jiffy_common::Result;
use jiffy_ds::kv_slot;

use crate::records::{RecordReader, RecordWriter};

/// User map function: consumes one input record, emits intermediate
/// pairs.
pub trait Mapper: Send + Sync {
    /// Processes one `(key, value)` input, calling `emit` per
    /// intermediate pair.
    fn map(&self, key: &[u8], value: &[u8], emit: &mut dyn FnMut(Vec<u8>, Vec<u8>));
}

/// User reduce function: merges all values of one intermediate key.
pub trait Reducer: Send + Sync {
    /// Reduces the values collected for `key` to one output value.
    fn reduce(&self, key: &[u8], values: &[Vec<u8>]) -> Vec<u8>;
}

/// A configured MapReduce job.
pub struct MapReduceJob<M, R> {
    mapper: Arc<M>,
    reducer: Arc<R>,
    num_reducers: usize,
    lease_renew_interval: Duration,
}

impl<M: Mapper + 'static, R: Reducer + 'static> MapReduceJob<M, R> {
    /// Creates a job with `num_reducers` reduce partitions.
    pub fn new(mapper: M, reducer: R, num_reducers: usize) -> Self {
        Self {
            mapper: Arc::new(mapper),
            reducer: Arc::new(reducer),
            num_reducers: num_reducers.max(1),
            lease_renew_interval: Duration::from_millis(200),
        }
    }

    /// Runs the job: `inputs` is pre-partitioned per map task (one inner
    /// vector per mapper). Returns the reduced output sorted by key.
    ///
    /// # Errors
    ///
    /// Any Jiffy failure from the underlying tasks.
    pub fn run(
        &self,
        job: &JobClient,
        inputs: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    ) -> Result<BTreeMap<Vec<u8>, Vec<u8>>> {
        let num_maps = inputs.len();
        let r = self.num_reducers;

        // Master: build the address hierarchy — one prefix per map task
        // and one shuffle-file prefix per reduce partition, children of
        // the map stage so lease renewal propagates (§3.2).
        job.create_addr_prefix("map-stage", &[])?;
        let mut shuffle_names = Vec::with_capacity(r);
        for i in 0..r {
            let name = format!("shuffle-{i}");
            job.open_file(&name, &["map-stage"])?;
            shuffle_names.push(name);
        }
        // Master renews the stage lease; propagation covers the shuffle
        // files (descendants of map-stage).
        let renewer =
            job.start_lease_renewer(vec!["map-stage".to_string()], self.lease_renew_interval);

        // Map phase: one worker per input partition.
        let mut map_handles = Vec::with_capacity(num_maps);
        for input in inputs {
            let job = job.clone();
            let mapper = self.mapper.clone();
            let shuffle_names = shuffle_names.clone();
            map_handles.push(std::thread::spawn(move || -> Result<()> {
                // Each task opens its own shuffle-file handles (own
                // metadata caches), like a fresh lambda would.
                let mut shuffles = Vec::with_capacity(shuffle_names.len());
                for name in &shuffle_names {
                    shuffles.push(job.open_file(name, &["map-stage"])?);
                }
                let r = shuffles.len() as u32;
                for (k, v) in input {
                    let mut failed = None;
                    mapper.map(&k, &v, &mut |ik, iv| {
                        if failed.is_some() {
                            return;
                        }
                        let part = kv_slot(&ik, r) as usize;
                        if let Err(e) = RecordWriter::new(&shuffles[part]).write(&ik, &iv) {
                            failed = Some(e);
                        }
                    });
                    if let Some(e) = failed {
                        return Err(e);
                    }
                }
                Ok(())
            }));
        }
        for h in map_handles {
            h.join().expect("map task panicked")?;
        }

        // Reduce phase: one worker per shuffle partition.
        let mut reduce_handles = Vec::with_capacity(r);
        for name in shuffle_names {
            let job = job.clone();
            let reducer = self.reducer.clone();
            reduce_handles.push(std::thread::spawn(
                move || -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
                    let file = job.open_file(&name, &["map-stage"])?;
                    let records = RecordReader::open(&file)?.collect_all()?;
                    let mut groups: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
                    for (k, v) in records {
                        groups.entry(k).or_default().push(v);
                    }
                    Ok(groups
                        .into_iter()
                        .map(|(k, vs)| {
                            let out = reducer.reduce(&k, &vs);
                            (k, out)
                        })
                        .collect())
                },
            ));
        }
        let mut output = BTreeMap::new();
        for h in reduce_handles {
            for (k, v) in h.join().expect("reduce task panicked")? {
                output.insert(k, v);
            }
        }
        drop(renewer);
        // Intermediate data is no longer needed: release it eagerly
        // rather than waiting for lease expiry.
        for i in 0..r {
            job.remove_addr_prefix(&format!("shuffle-{i}")).ok();
        }
        job.remove_addr_prefix("map-stage").ok();
        Ok(output)
    }
}
