//! StreamScope-style streaming dataflow on Jiffy (paper §5.2, §6.5).
//!
//! A pipeline of stages connected by continuous event streams (Jiffy
//! queues). Each stage runs `parallelism` instances; events are routed
//! between stages by key hash, so all events of one key flow through the
//! same downstream instance (the invariant keyed operators need). The
//! streaming word-count evaluation of §6.5 is exactly this shape:
//! 50 partition tasks → 50 count tasks.

use jiffy_sync::Arc;
use std::time::Duration;

use jiffy_client::{JobClient, QueueClient};
use jiffy_common::Result;
use jiffy_ds::kv_slot;
use jiffy_proto::OpKind;

use crate::records;

/// Sentinel closing a stream.
const EOS: &[u8] = b"__jiffy_stream_eos__";

/// `(key, value, emit)`: a stage's transform over one event.
type StageFn = Arc<dyn Fn(&[u8], &[u8], &mut dyn FnMut(Vec<u8>, Vec<u8>)) + Send + Sync>;

/// One stage: a keyed event transformer.
pub struct StreamStage {
    name: String,
    parallelism: usize,
    /// `(key, value, emit)`: emit zero or more output events.
    func: StageFn,
}

impl StreamStage {
    /// Creates a stage.
    pub fn new(
        name: &str,
        parallelism: usize,
        func: impl Fn(&[u8], &[u8], &mut dyn FnMut(Vec<u8>, Vec<u8>)) + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            parallelism: parallelism.max(1),
            func: Arc::new(func),
        }
    }
}

/// A linear pipeline of streaming stages.
pub struct StreamPipeline {
    stages: Vec<StreamStage>,
}

/// Handle for feeding events into a running pipeline.
pub struct StreamInput {
    queues: Vec<QueueClient>,
}

impl StreamInput {
    /// Sends one event; routed to the stage-0 instance owning the key.
    ///
    /// # Errors
    ///
    /// Queue failures.
    pub fn send(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let idx = kv_slot(key, self.queues.len() as u32) as usize;
        self.queues[idx].enqueue(&records::encode_item(key, value)?)
    }

    /// Closes the stream: every stage-0 instance receives EOS.
    ///
    /// # Errors
    ///
    /// Queue failures.
    pub fn close(&self) -> Result<()> {
        for q in &self.queues {
            q.enqueue(EOS)?;
        }
        Ok(())
    }
}

impl StreamPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Appends a stage.
    pub fn stage(mut self, stage: StreamStage) -> Self {
        self.stages.push(stage);
        self
    }

    /// Queue name for instance `i` of stage `s`'s *input*.
    fn queue_name(stage: &str, i: usize) -> String {
        format!("stream-{stage}-{i}")
    }

    /// Launches the pipeline on `job`. Returns the input handle and a
    /// join handle resolving to the final stage's collected output
    /// events once the stream is closed and drained.
    ///
    /// # Errors
    ///
    /// Setup failures.
    #[allow(clippy::type_complexity)]
    pub fn launch(
        self,
        job: &JobClient,
    ) -> Result<(
        StreamInput,
        std::thread::JoinHandle<Result<Vec<(Vec<u8>, Vec<u8>)>>>,
    )> {
        assert!(!self.stages.is_empty(), "pipeline needs at least one stage");
        // Create all stage-input queues plus the sink queue.
        let mut all_names = Vec::new();
        for stage in &self.stages {
            for i in 0..stage.parallelism {
                let name = Self::queue_name(&stage.name, i);
                job.open_queue(&name, &[])?;
                all_names.push(name);
            }
        }
        job.open_queue("stream-sink-0", &[])?;
        all_names.push("stream-sink-0".to_string());
        let renewer = job.start_lease_renewer(all_names, Duration::from_millis(200));

        // Spawn stage instances, last stage first (consumers before
        // producers is not required — queues decouple them — but keeps
        // subscription setup simple).
        let mut worker_handles = Vec::new();
        for (s, stage) in self.stages.iter().enumerate() {
            let next_names: Vec<String> = if s + 1 < self.stages.len() {
                let next = &self.stages[s + 1];
                (0..next.parallelism)
                    .map(|i| Self::queue_name(&next.name, i))
                    .collect()
            } else {
                vec!["stream-sink-0".to_string()]
            };
            // Producers feeding *this* stage (for EOS accounting).
            let upstream = if s == 0 {
                1 // the external input
            } else {
                self.stages[s - 1].parallelism
            };
            for i in 0..stage.parallelism {
                let job = job.clone();
                let func = stage.func.clone();
                let my_queue = Self::queue_name(&stage.name, i);
                let next_names = next_names.clone();
                worker_handles.push(std::thread::spawn(move || -> Result<()> {
                    let input = job.open_queue(&my_queue, &[])?;
                    let listener = input.subscribe(&[OpKind::Enqueue])?;
                    let mut outputs = Vec::with_capacity(next_names.len());
                    for n in &next_names {
                        outputs.push(job.open_queue(n, &[])?);
                    }
                    let mut eos_remaining = upstream;
                    loop {
                        match input.dequeue()? {
                            Some(item) if item == EOS => {
                                eos_remaining -= 1;
                                if eos_remaining == 0 {
                                    break;
                                }
                            }
                            Some(item) => {
                                let (k, v) = records::decode_item(&item)?;
                                let mut failure = None;
                                func(&k, &v, &mut |ok, ov| {
                                    if failure.is_some() {
                                        return;
                                    }
                                    let idx = kv_slot(&ok, outputs.len() as u32) as usize;
                                    let encoded = match records::encode_item(&ok, &ov) {
                                        Ok(e) => e,
                                        Err(e) => {
                                            failure = Some(e);
                                            return;
                                        }
                                    };
                                    if let Err(e) = outputs[idx].enqueue(&encoded) {
                                        failure = Some(e);
                                    }
                                });
                                if let Some(e) = failure {
                                    return Err(e);
                                }
                            }
                            None => {
                                let _ = listener.get(Duration::from_millis(10));
                            }
                        }
                    }
                    // Propagate EOS downstream.
                    for q in &outputs {
                        q.enqueue(EOS)?;
                    }
                    Ok(())
                }));
            }
        }

        // Input handle: stage-0 queues.
        let stage0 = &self.stages[0];
        let mut in_queues = Vec::with_capacity(stage0.parallelism);
        for i in 0..stage0.parallelism {
            in_queues.push(job.open_queue(&Self::queue_name(&stage0.name, i), &[])?);
        }
        let input = StreamInput { queues: in_queues };

        // Sink collector: drains the sink queue until EOS from every
        // last-stage instance arrived.
        let last_parallelism = self.stages.last().expect("non-empty").parallelism;
        let sink_job = job.clone();
        let collector = std::thread::spawn(move || -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
            let sink = sink_job.open_queue("stream-sink-0", &[])?;
            let listener = sink.subscribe(&[OpKind::Enqueue])?;
            let mut out = Vec::new();
            let mut eos_remaining = last_parallelism;
            loop {
                match sink.dequeue()? {
                    Some(item) if item == EOS => {
                        eos_remaining -= 1;
                        if eos_remaining == 0 {
                            break;
                        }
                    }
                    Some(item) => out.push(records::decode_item(&item)?),
                    None => {
                        let _ = listener.get(Duration::from_millis(10));
                    }
                }
            }
            // Wait for all workers, then release the channels.
            for h in worker_handles {
                h.join().expect("stream worker panicked")?;
            }
            drop(renewer);
            Ok(out)
        });
        Ok((input, collector))
    }
}

impl Default for StreamPipeline {
    fn default() -> Self {
        Self::new()
    }
}
