//! The demand-driven autoscaler watermark policy.

use jiffy_common::ServerId;

use crate::membership::{ServerLoad, ServerState};

/// What the autoscaler wants done after looking at one load snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Capacity is inside the comfort band; do nothing.
    Hold,
    /// Free capacity dropped below the low watermark: acquire a new
    /// server from the provider.
    ScaleUp,
    /// Free capacity rose above the high watermark and the emptiest
    /// server's blocks fit elsewhere: drain and release it.
    ScaleDown {
        /// The chosen victim (the alive server with the fewest used
        /// blocks).
        victim: ServerId,
    },
}

/// Watermark-based scaling policy over aggregate free-block counts.
///
/// Mirrors the per-block split/merge thresholds (§3.3) one level up:
/// blocks split at 95 % usage and merge at 5 %, servers are added when
/// the *pool* runs low on free blocks and removed when most of the pool
/// idles. Hysteresis comes from the gap between the two watermarks plus
/// the fit check on scale-down (a victim is only drained if the rest of
/// the pool can absorb its used blocks and still sit above the low
/// watermark, so the pool does not oscillate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerPolicy {
    /// Scale up when `free / total` across alive servers drops below
    /// this.
    pub scale_up_free_fraction: f64,
    /// Consider scaling down when `free / total` rises above this.
    pub scale_down_free_fraction: f64,
    /// Never drain below this many alive servers.
    pub min_servers: usize,
    /// Never provision above this many alive servers.
    pub max_servers: usize,
}

impl AutoscalerPolicy {
    /// Policy with the config's watermarks and a `[min, max]` pool size.
    pub fn new(
        scale_up_free_fraction: f64,
        scale_down_free_fraction: f64,
        min_servers: usize,
        max_servers: usize,
    ) -> Self {
        Self {
            scale_up_free_fraction,
            scale_down_free_fraction,
            min_servers,
            max_servers,
        }
    }

    /// Evaluates one membership snapshot. Draining and dead servers
    /// contribute nothing to capacity (their free blocks are not
    /// allocatable); a snapshot with no alive servers scales up.
    pub fn decide(&self, snapshot: &[ServerLoad]) -> ScaleDecision {
        let alive: Vec<&ServerLoad> = snapshot
            .iter()
            .filter(|s| s.state == ServerState::Alive)
            .collect();
        if alive.is_empty() {
            return ScaleDecision::ScaleUp;
        }
        let total: u64 = alive.iter().map(|s| u64::from(s.total_blocks())).sum();
        let free: u64 = alive.iter().map(|s| u64::from(s.free_blocks)).sum();
        if total == 0 {
            return ScaleDecision::Hold;
        }
        let free_fraction = free as f64 / total as f64;
        if free_fraction < self.scale_up_free_fraction {
            return if alive.len() < self.max_servers {
                ScaleDecision::ScaleUp
            } else {
                ScaleDecision::Hold
            };
        }
        if free_fraction > self.scale_down_free_fraction && alive.len() > self.min_servers {
            // Victim: fewest used blocks; ties broken by lowest ID so
            // repeated evaluations agree.
            #[allow(clippy::expect_used)] // invariant: alive is non-empty (checked above)
            let victim = alive
                .iter()
                .min_by_key(|s| (s.used_blocks, s.server.raw()))
                .expect("invariant: alive is non-empty");
            // Fit check: the rest of the pool must absorb the victim's
            // used blocks and still sit above the low watermark.
            let rest_total = total - u64::from(victim.total_blocks());
            let rest_free = free - u64::from(victim.free_blocks);
            let free_after = rest_free.saturating_sub(u64::from(victim.used_blocks));
            if rest_total > 0
                && rest_free >= u64::from(victim.used_blocks)
                && (free_after as f64 / rest_total as f64) > self.scale_up_free_fraction
            {
                return ScaleDecision::ScaleDown {
                    victim: victim.server,
                };
            }
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(id: u64, state: ServerState, used: u32, free: u32) -> ServerLoad {
        ServerLoad {
            server: ServerId(id),
            state,
            used_blocks: used,
            free_blocks: free,
        }
    }

    fn policy() -> AutoscalerPolicy {
        AutoscalerPolicy::new(0.2, 0.7, 1, 8)
    }

    #[test]
    fn scales_up_below_low_watermark() {
        let snap = [
            load(1, ServerState::Alive, 7, 1),
            load(2, ServerState::Alive, 7, 1),
        ];
        assert_eq!(policy().decide(&snap), ScaleDecision::ScaleUp);
    }

    #[test]
    fn holds_inside_band() {
        let snap = [
            load(1, ServerState::Alive, 4, 4),
            load(2, ServerState::Alive, 4, 4),
        ];
        assert_eq!(policy().decide(&snap), ScaleDecision::Hold);
    }

    #[test]
    fn scales_down_to_the_emptiest_server() {
        let snap = [
            load(1, ServerState::Alive, 2, 6),
            load(2, ServerState::Alive, 0, 8),
            load(3, ServerState::Alive, 1, 7),
        ];
        assert_eq!(
            policy().decide(&snap),
            ScaleDecision::ScaleDown {
                victim: ServerId(2)
            }
        );
    }

    #[test]
    fn scale_down_requires_fit_elsewhere() {
        // Mostly free, but the rest of the pool cannot hold the
        // victim's used blocks.
        let snap = [
            load(1, ServerState::Alive, 6, 2),
            load(2, ServerState::Alive, 0, 30),
        ];
        // Victim would be server 2 (0 used) — trivially fits. Force the
        // interesting case: one tiny helper and a big victim.
        assert_eq!(
            policy().decide(&snap),
            ScaleDecision::ScaleDown {
                victim: ServerId(2)
            }
        );
        let snap = [
            load(1, ServerState::Alive, 0, 1),
            load(2, ServerState::Alive, 5, 95),
        ];
        // Emptiest by used blocks is server 1; removing it is fine, but
        // then check the big one is never chosen when it cannot fit.
        let d = policy().decide(&snap);
        assert!(matches!(d, ScaleDecision::ScaleDown { victim } if victim == ServerId(1)));
    }

    #[test]
    fn respects_min_and_max_pool_size() {
        let p = AutoscalerPolicy::new(0.2, 0.7, 2, 2);
        let starving = [
            load(1, ServerState::Alive, 8, 0),
            load(2, ServerState::Alive, 8, 0),
        ];
        assert_eq!(p.decide(&starving), ScaleDecision::Hold); // at max
        let idle = [
            load(1, ServerState::Alive, 0, 8),
            load(2, ServerState::Alive, 0, 8),
        ];
        assert_eq!(p.decide(&idle), ScaleDecision::Hold); // at min
    }

    #[test]
    fn draining_and_dead_servers_do_not_count() {
        let snap = [
            load(1, ServerState::Alive, 7, 1),
            load(2, ServerState::Draining, 0, 8),
            load(3, ServerState::Dead, 0, 8),
        ];
        // Only server 1 counts: 1/8 free < 0.2 → scale up.
        assert_eq!(policy().decide(&snap), ScaleDecision::ScaleUp);
    }

    #[test]
    fn empty_pool_scales_up() {
        assert_eq!(policy().decide(&[]), ScaleDecision::ScaleUp);
    }
}
