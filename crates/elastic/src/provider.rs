//! The pluggable server acquisition/release interface.

use jiffy_common::{Result, ServerId};

/// Acquires and releases memory servers on the autoscaler's behalf.
///
/// The controller decides *when* the pool should grow or shrink (the
/// watermark policy); the provider decides *how* a server comes to be —
/// an in-proc `MemoryServer` for tests and benchmarks, a spawned TCP
/// process for deployments, a cloud instance API in production. A newly
/// provisioned server is expected to register itself with the
/// controller (`JoinServer`) and start heartbeating, exactly as a
/// manually started server would.
pub trait ServerProvider: Send + Sync {
    /// Brings one new server into the cluster. Returns its assigned ID
    /// once it has registered with the controller.
    ///
    /// # Errors
    ///
    /// Provider-specific: resource exhaustion, spawn failure,
    /// registration RPC failure.
    fn provision(&self) -> Result<ServerId>;

    /// Releases a server that the controller has fully drained and
    /// removed from its membership table. The provider tears down the
    /// transport endpoint and reclaims the resources.
    ///
    /// # Errors
    ///
    /// Provider-specific teardown failures.
    fn decommission(&self, server: ServerId) -> Result<()>;
}
