//! Heartbeat-based failure detection.

use std::collections::HashMap;
use std::time::Duration;

use jiffy_common::ServerId;

/// Tracks the last heartbeat seen from each server and reports the ones
/// that have fallen silent.
///
/// Pure bookkeeping: the caller supplies timestamps (from its
/// `Clock`), so the detector is fully deterministic under a
/// `ManualClock` — tests advance time explicitly and call
/// [`FailureDetector::expired`].
#[derive(Debug, Default)]
pub struct FailureDetector {
    last_seen: HashMap<ServerId, Duration>,
}

impl FailureDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or refreshes) tracking of `server` as of `now`.
    /// Registration counts as a heartbeat so a freshly joined server is
    /// not declared dead before its first beacon.
    pub fn record(&mut self, server: ServerId, now: Duration) {
        self.last_seen.insert(server, now);
    }

    /// Stops tracking `server` (it left voluntarily or was declared
    /// dead).
    pub fn forget(&mut self, server: ServerId) {
        self.last_seen.remove(&server);
    }

    /// Whether `server` is currently tracked.
    pub fn is_tracked(&self, server: ServerId) -> bool {
        self.last_seen.contains_key(&server)
    }

    /// Returns every tracked server whose last heartbeat is older than
    /// `timeout` as of `now`, removing them from the tracked set (each
    /// failure is reported exactly once). Results are sorted for
    /// deterministic handling order.
    pub fn expired(&mut self, now: Duration, timeout: Duration) -> Vec<ServerId> {
        let mut dead: Vec<ServerId> = self
            .last_seen
            .iter()
            .filter(|(_, &seen)| now.saturating_sub(seen) > timeout)
            .map(|(&id, _)| id)
            .collect();
        dead.sort_unstable_by_key(|s| s.raw());
        for s in &dead {
            self.last_seen.remove(s);
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn silence_past_timeout_expires_once() {
        let mut d = FailureDetector::new();
        d.record(ServerId(1), ms(0));
        d.record(ServerId(2), ms(0));
        // s2 keeps beating, s1 goes silent.
        d.record(ServerId(2), ms(80));
        assert!(d.expired(ms(50), ms(100)).is_empty());
        assert_eq!(d.expired(ms(120), ms(100)), vec![ServerId(1)]);
        // Reported exactly once.
        assert!(d.expired(ms(500), ms(100)).contains(&ServerId(2)));
        assert!(d.expired(ms(900), ms(100)).is_empty());
    }

    #[test]
    fn forget_suppresses_expiry() {
        let mut d = FailureDetector::new();
        d.record(ServerId(7), ms(0));
        d.forget(ServerId(7));
        assert!(!d.is_tracked(ServerId(7)));
        assert!(d.expired(ms(1000), ms(10)).is_empty());
    }

    #[test]
    fn expiry_order_is_deterministic() {
        let mut d = FailureDetector::new();
        for id in [5u64, 3, 9, 1] {
            d.record(ServerId(id), ms(0));
        }
        assert_eq!(
            d.expired(ms(100), ms(10)),
            vec![ServerId(1), ServerId(3), ServerId(5), ServerId(9)]
        );
    }
}
