//! Cluster elasticity for Jiffy (paper title promise: *elastic*
//! far-memory).
//!
//! Jiffy allocates at block granularity (§3), which makes server-level
//! elasticity cheap: a server's worth of state is just a set of blocks,
//! each of which can be live-migrated independently. This crate holds
//! the policy half of that subsystem — the mechanism (RPCs, data
//! movement) lives in `jiffy-controller` / `jiffy-server`:
//!
//! - [`membership`] — server lifecycle states ([`ServerState`]) and the
//!   per-server load snapshot ([`ServerLoad`]) the policies consume.
//! - [`detector`] — the heartbeat [`FailureDetector`]: servers beacon
//!   periodically; one is declared dead after `heartbeat_timeout` of
//!   silence.
//! - [`autoscaler`] — the demand-driven watermark policy
//!   ([`AutoscalerPolicy`]): scale up when the cluster-wide free-block
//!   fraction drops below the low watermark, drain the emptiest server
//!   when it rises above the high watermark.
//! - [`provider`] — the pluggable [`ServerProvider`] that actually
//!   acquires and releases servers (in-proc for tests, TCP spawner for
//!   deployments, a cloud API in production).

pub mod autoscaler;
pub mod detector;
pub mod membership;
pub mod provider;

pub use autoscaler::{AutoscalerPolicy, ScaleDecision};
pub use detector::FailureDetector;
pub use membership::{ServerLoad, ServerState};
pub use provider::ServerProvider;
