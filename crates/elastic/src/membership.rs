//! Server lifecycle states and load snapshots.

use jiffy_common::ServerId;
use serde::{Deserialize, Serialize};

/// Lifecycle state of a memory server in the controller's membership
/// table.
///
/// Transitions: `Alive → Draining → (removed)` on voluntary departure
/// (`LeaveServer` / scale-down), and `Alive|Draining → Dead` when the
/// failure detector times out its heartbeats. There is no transition
/// out of `Dead`: a recovered machine re-joins under a fresh
/// [`ServerId`] (IDs are never re-issued).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerState {
    /// Serving ops; eligible for new block allocations.
    Alive,
    /// Being decommissioned: serves ops for blocks it still holds, but
    /// receives no new allocations while its live blocks migrate away.
    Draining,
    /// Declared dead by the failure detector. Its blocks were re-routed
    /// (replica promotion / persistent reload) or are lost.
    Dead,
}

impl ServerState {
    /// Lowercase display name (used in `ServerInfo.state` on the wire).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Alive => "alive",
            Self::Draining => "draining",
            Self::Dead => "dead",
        }
    }
}

impl std::fmt::Display for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One server's contribution to the cluster-wide capacity picture; the
/// input rows of [`crate::AutoscalerPolicy::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerLoad {
    /// The server.
    pub server: ServerId,
    /// Lifecycle state (only [`ServerState::Alive`] servers count
    /// toward capacity).
    pub state: ServerState,
    /// Blocks currently allocated to a data structure.
    pub used_blocks: u32,
    /// Blocks currently free.
    pub free_blocks: u32,
}

impl ServerLoad {
    /// Total blocks the server hosts.
    pub fn total_blocks(&self) -> u32 {
        self.used_blocks + self.free_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_display_names() {
        assert_eq!(ServerState::Alive.to_string(), "alive");
        assert_eq!(ServerState::Draining.as_str(), "draining");
        assert_eq!(ServerState::Dead.as_str(), "dead");
    }
}
