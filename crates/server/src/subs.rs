//! The per-server subscription map (paper §4.2.2): data-structure
//! operations → client sessions to notify.

use std::collections::HashMap;

use jiffy_common::BlockId;
use jiffy_proto::{Notification, OpKind};
use jiffy_rpc::SessionHandle;
use jiffy_sync::Mutex;

/// Maps `(block, op-kind)` to the sessions subscribed to it.
#[derive(Default)]
pub struct SubscriptionMap {
    subs: Mutex<HashMap<(BlockId, OpKind), Vec<SessionHandle>>>,
}

impl SubscriptionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes `session` to `ops` on `block`.
    pub fn subscribe(&self, block: BlockId, ops: &[OpKind], session: &SessionHandle) {
        let mut map = self.subs.lock();
        for &op in ops {
            let entry = map.entry((block, op)).or_default();
            if !entry.iter().any(|s| s == session) {
                entry.push(session.clone());
            }
        }
    }

    /// Removes `session`'s subscriptions for `ops` on `block`.
    pub fn unsubscribe(&self, block: BlockId, ops: &[OpKind], session: &SessionHandle) {
        let mut map = self.subs.lock();
        for &op in ops {
            if let Some(entry) = map.get_mut(&(block, op)) {
                entry.retain(|s| s != session);
                if entry.is_empty() {
                    map.remove(&(block, op));
                }
            }
        }
    }

    /// Removes every subscription held by `session` (disconnect path).
    pub fn drop_session(&self, session: &SessionHandle) {
        let mut map = self.subs.lock();
        map.retain(|_, entry| {
            entry.retain(|s| s != session);
            !entry.is_empty()
        });
    }

    /// Pushes `n` to every subscriber of `(n.block, n.op)`; returns how
    /// many sessions were notified.
    pub fn publish(&self, n: &Notification) -> usize {
        let sessions: Vec<SessionHandle> = {
            let map = self.subs.lock();
            map.get(&(n.block, n.op)).cloned().unwrap_or_default()
        };
        for s in &sessions {
            s.push(n.clone());
        }
        sessions.len()
    }

    /// Total live subscription entries (for tests/metrics).
    pub fn len(&self) -> usize {
        self.subs.lock().values().map(Vec::len).sum()
    }

    /// Whether no subscriptions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_sync::atomic::{AtomicUsize, Ordering};
    use jiffy_sync::Arc;

    fn session(counter: Arc<AtomicUsize>) -> SessionHandle {
        SessionHandle::new(Arc::new(move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        }))
    }

    fn notif(block: u64, op: OpKind) -> Notification {
        Notification {
            block: BlockId(block),
            op,
            size: 0,
            seq: 1,
        }
    }

    #[test]
    fn publish_reaches_matching_subscribers_only() {
        let subs = SubscriptionMap::new();
        let c1 = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::new(AtomicUsize::new(0));
        let s1 = session(c1.clone());
        let s2 = session(c2.clone());
        subs.subscribe(BlockId(1), &[OpKind::Enqueue], &s1);
        subs.subscribe(BlockId(1), &[OpKind::Dequeue], &s2);
        assert_eq!(subs.publish(&notif(1, OpKind::Enqueue)), 1);
        assert_eq!(subs.publish(&notif(2, OpKind::Enqueue)), 0);
        assert_eq!(c1.load(Ordering::SeqCst), 1);
        assert_eq!(c2.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn duplicate_subscriptions_are_idempotent() {
        let subs = SubscriptionMap::new();
        let c = Arc::new(AtomicUsize::new(0));
        let s = session(c.clone());
        subs.subscribe(BlockId(1), &[OpKind::Put], &s);
        subs.subscribe(BlockId(1), &[OpKind::Put], &s);
        assert_eq!(subs.len(), 1);
        subs.publish(&notif(1, OpKind::Put));
        assert_eq!(c.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unsubscribe_removes_exactly_the_given_kinds() {
        let subs = SubscriptionMap::new();
        let c = Arc::new(AtomicUsize::new(0));
        let s = session(c.clone());
        subs.subscribe(BlockId(1), &[OpKind::Put, OpKind::Delete], &s);
        subs.unsubscribe(BlockId(1), &[OpKind::Put], &s);
        assert_eq!(subs.publish(&notif(1, OpKind::Put)), 0);
        assert_eq!(subs.publish(&notif(1, OpKind::Delete)), 1);
    }

    #[test]
    fn drop_session_clears_everything() {
        let subs = SubscriptionMap::new();
        let c = Arc::new(AtomicUsize::new(0));
        let s = session(c.clone());
        subs.subscribe(BlockId(1), &[OpKind::Put], &s);
        subs.subscribe(BlockId(2), &[OpKind::Enqueue, OpKind::Dequeue], &s);
        assert_eq!(subs.len(), 3);
        subs.drop_session(&s);
        assert!(subs.is_empty());
    }
}
