//! Jiffy memory server (data plane, paper §4.2.2).
//!
//! Each memory server partitions its DRAM into fixed-size blocks and,
//! per block, maintains: the data-structure operator implementation
//! (via [`jiffy_block::Partition`]) and a subscription map from
//! operation kinds to client sessions awaiting notifications. It serves
//! three kinds of traffic:
//!
//! - **client ops** — `writeOp`/`readOp`/`deleteOp` routed by clients
//!   via `getBlock` semantics, plus subscriptions;
//! - **controller orders** — block init/reset/export and the
//!   split/merge legs of elastic scaling (Fig. 8), reported back through
//!   overload/underload signals raised by the blocks themselves;
//! - **peer transfers** — repartition payload imports and chain
//!   replication forwarding.
//!
//! Threshold signalling is asynchronous: ops never wait on the
//! controller; a background worker drains crossing events and reports
//! them, which is what keeps op latency flat during repartitioning
//! (paper Fig. 11b).

pub mod server;
pub mod subs;

pub use server::{MemoryServer, ServerStats};
pub use subs::SubscriptionMap;
