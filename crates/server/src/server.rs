//! The memory server service.

use jiffy_sync::atomic::{AtomicU64, Ordering};
use jiffy_sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use jiffy_block::{Block, BlockStore, PartitionRegistry, ThresholdEvent};
use jiffy_common::clock::SystemClock;
use jiffy_common::{BlockId, JiffyConfig, JiffyError, Result, ServerId, TenantId};
use jiffy_proto::{
    ControlRequest, ControlResponse, DataRequest, DataResponse, DsOp, DsResult, Envelope,
    MergeSpec, SplitSpec, CLIENT_RID_BASE, INTERNAL_RID,
};
use jiffy_qos::AdmissionControl;
use jiffy_rpc::{Fabric, Service, SessionHandle};
use jiffy_sync::Mutex;

use crate::subs::SubscriptionMap;

/// Operational counters for one memory server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Data-structure operations executed.
    pub ops: u64,
    /// Notifications fanned out.
    pub notifications: u64,
    /// Split legs executed (as the source block).
    pub splits: u64,
    /// Merge legs executed (as the source block).
    pub merges: u64,
    /// Repartition payloads imported (as the target block).
    pub imports: u64,
    /// Retried requests answered from a block's replicated replay window
    /// instead of re-executing (exactly-once across head failover).
    pub window_replays: u64,
}

#[derive(Default)]
struct StatCells {
    ops: AtomicU64,
    notifications: AtomicU64,
    splits: AtomicU64,
    merges: AtomicU64,
    imports: AtomicU64,
    window_replays: AtomicU64,
}

/// One Jiffy memory server.
///
/// Constructed detached; [`MemoryServer::register`] introduces it to the
/// controller (which assigns its server ID and block IDs) once a
/// transport address is known.
pub struct MemoryServer {
    cfg: JiffyConfig,
    store: BlockStore,
    registry: jiffy_sync::RwLock<PartitionRegistry>,
    subs: SubscriptionMap,
    fabric: Fabric,
    controller_addr: String,
    identity: Mutex<Option<(ServerId, String)>>,
    event_tx: Sender<(BlockId, ThresholdEvent)>,
    stats: StatCells,
    /// Per-tenant data-plane admission control (token buckets + load
    /// accounting); limits refresh from heartbeat acks.
    qos: AdmissionControl,
}

impl MemoryServer {
    /// Creates a memory server and starts its threshold-report worker.
    pub fn new(cfg: JiffyConfig, fabric: Fabric, controller_addr: impl Into<String>) -> Arc<Self> {
        let mut registry = PartitionRegistry::new();
        jiffy_ds::register_builtins(&mut registry);
        let (event_tx, event_rx) = unbounded::<(BlockId, ThresholdEvent)>();
        let qos = AdmissionControl::new(cfg.qos.clone(), SystemClock::shared());
        let server = Arc::new(Self {
            cfg,
            store: BlockStore::new(),
            registry: jiffy_sync::RwLock::new(registry),
            subs: SubscriptionMap::new(),
            fabric,
            controller_addr: controller_addr.into(),
            identity: Mutex::new(None),
            event_tx,
            stats: StatCells::default(),
            qos,
        });
        // Asynchronous threshold reporting: ops never block on the
        // controller (paper §3.3 — repartitioning is asynchronous).
        let worker = Arc::downgrade(&server);
        #[allow(clippy::expect_used)] // invariant documented in the message
        std::thread::Builder::new()
            .name("jiffy-threshold-report".into())
            .spawn(move || {
                while let Ok((block, event)) = event_rx.recv() {
                    let Some(server) = worker.upgrade() else {
                        break;
                    };
                    server.report_threshold(block, event);
                }
            })
            .expect("invariant: thread spawn fails only on OS resource exhaustion");
        server
    }

    /// Registers a custom data structure factory (paper Table 2's
    /// "custom data structures" row). Call before blocks of that type
    /// are initialized; applications register the same factory on every
    /// server.
    pub fn register_custom_ds(&self, name: &str, factory: jiffy_block::PartitionFactory) {
        self.registry.write().register(name, factory);
    }

    /// Registers this server with the controller under the given
    /// transport address, creating `capacity_blocks` blocks.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected controller reply.
    pub fn register(&self, addr: &str, capacity_blocks: u32) -> Result<ServerId> {
        let conn = self.fabric.connect(&self.controller_addr)?;
        let resp = conn.call(Envelope::ControlReq {
            id: 0,
            req: ControlRequest::JoinServer {
                addr: addr.to_string(),
                capacity_blocks,
            },
            tenant: TenantId::ANONYMOUS,
        })?;
        let (server_id, blocks) = match resp {
            Envelope::ControlResp {
                resp: Ok(ControlResponse::ServerJoined { server, blocks }),
                ..
            } => (server, blocks),
            Envelope::ControlResp { resp: Err(e), .. } => return Err(e),
            other => {
                return Err(JiffyError::Rpc(format!(
                    "unexpected register reply: {other:?}"
                )))
            }
        };
        for id in blocks {
            self.store.add(Block::new(
                id,
                self.cfg.block_size,
                self.cfg.low_watermark(),
                self.cfg.high_watermark(),
            ))?;
        }
        *self.identity.lock() = Some((server_id, addr.to_string()));
        Ok(server_id)
    }

    /// The controller-assigned identity, if registered.
    pub fn identity(&self) -> Option<(ServerId, String)> {
        self.identity.lock().clone()
    }

    /// Bytes used across all hosted blocks (Fig. 11a sampling).
    pub fn used_bytes(&self) -> u64 {
        self.store.total_used_bytes()
    }

    /// Number of blocks currently allocated to data structures.
    pub fn allocated_blocks(&self) -> usize {
        self.store.allocated_count()
    }

    /// Operational counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            ops: self.stats.ops.load(Ordering::Relaxed),
            notifications: self.stats.notifications.load(Ordering::Relaxed),
            splits: self.stats.splits.load(Ordering::Relaxed),
            merges: self.stats.merges.load(Ordering::Relaxed),
            imports: self.stats.imports.load(Ordering::Relaxed),
            window_replays: self.stats.window_replays.load(Ordering::Relaxed),
        }
    }

    /// Installs a tenant limit table into admission control right now.
    /// The heartbeat loop refreshes the table each interval; this lets a
    /// share change take effect without waiting for the next beat.
    pub fn install_tenant_limits(&self, limits: &[jiffy_proto::TenantLimit]) {
        self.qos.install_limits(limits);
    }

    /// Per-tenant load counters observed by this server's admission
    /// control (what the heartbeat reports to the controller).
    pub fn tenant_loads(&self) -> Vec<jiffy_proto::TenantLoad> {
        self.qos.loads()
    }

    fn report_threshold(&self, block: BlockId, event: ThresholdEvent) {
        let req = match event {
            ThresholdEvent::Overloaded { used } => ControlRequest::ReportOverload { block, used },
            ThresholdEvent::Underloaded { used } => ControlRequest::ReportUnderload { block, used },
        };
        if let Ok(conn) = self.fabric.connect(&self.controller_addr) {
            let _ = conn.call(Envelope::ControlReq {
                id: 0,
                req,
                tenant: TenantId::ANONYMOUS,
            });
        }
    }

    /// Whether `rid` identifies a client-stamped mutation whose result
    /// belongs in the block's replay window. Pure reads are idempotent
    /// (re-executing one is harmless), and internal/auto-assigned ids
    /// (fan-down envelopes, legacy callers) stay below
    /// [`CLIENT_RID_BASE`], so only client-originated writes are
    /// tracked.
    fn replay_tracked(rid: u64, op: &DsOp) -> bool {
        rid >= CLIENT_RID_BASE && op.kind().is_some()
    }

    /// Executes one op, answering from the block's replay window when
    /// the same client request id already executed here (a retry after
    /// a lost ack or a chain-head failover). `record` is set on the
    /// replication path, where the executing replica must remember the
    /// result so ANY replica — including a freshly promoted head — can
    /// answer the retry without re-executing.
    fn execute_op(&self, block_id: BlockId, op: &DsOp, rid: u64, record: bool) -> Result<DsResult> {
        let block = self.store.get(block_id)?;
        let tracked = Self::replay_tracked(rid, op);
        let (result, notification, event) = {
            let mut guard = block.lock();
            if tracked {
                if let Some(hit) = guard.replay_lookup(rid) {
                    drop(guard);
                    self.stats.window_replays.fetch_add(1, Ordering::Relaxed);
                    return Ok(hit);
                }
            }
            let executed = guard.execute(op)?;
            if tracked && record {
                guard.replay_record(rid, &executed.0);
            }
            executed
        };
        self.stats.ops.fetch_add(1, Ordering::Relaxed);
        if let Some(n) = notification {
            let fanned = self.subs.publish(&n);
            self.stats
                .notifications
                .fetch_add(fanned as u64, Ordering::Relaxed);
        }
        if let Some(e) = event {
            let _ = self.event_tx.send((block_id, e));
        }
        Ok(result)
    }

    /// Executes a run of ops against one block under a *single* lock
    /// acquisition (the batch fast path). Ops run in order; execution
    /// stops at the first failure, so the returned vector is a prefix of
    /// the request — every entry before the last is `Ok` and ops past
    /// its length were never attempted. Stopping (rather than skipping
    /// ahead) keeps order-sensitive structures correct: a queue must not
    /// apply op N+1 when op N failed and will be retried.
    ///
    /// Notifications and threshold events are collected inside the lock
    /// but published after it drops, like the single-op path.
    ///
    /// `rids` carries one client request id per op (or is empty for
    /// read-only batches): retries may regroup pending ops into
    /// different batches after a split re-routes some of them, so the
    /// replay window tracks individual ops, never batch identities. An
    /// op whose rid already sits in the window replays its cached
    /// result instead of executing.
    fn execute_batch(
        &self,
        block_id: BlockId,
        ops: &[DsOp],
        rids: &[u64],
        record: bool,
    ) -> Result<Vec<Result<DsResult>>> {
        if !rids.is_empty() && rids.len() != ops.len() {
            return Err(JiffyError::Rpc(format!(
                "batch rids/ops length mismatch: {} rids for {} ops",
                rids.len(),
                ops.len()
            )));
        }
        let block = self.store.get(block_id)?;
        let mut results = Vec::with_capacity(ops.len());
        let mut notifications = Vec::new();
        let mut last_event = None;
        let mut executed = 0u64;
        let mut replayed = 0u64;
        {
            let mut guard = block.lock();
            for (i, op) in ops.iter().enumerate() {
                let rid = rids.get(i).copied().unwrap_or(INTERNAL_RID);
                if Self::replay_tracked(rid, op) {
                    if let Some(hit) = guard.replay_lookup(rid) {
                        // Already executed here (the ack was lost, or a
                        // promoted replica is answering the retry):
                        // notifications were published the first time.
                        replayed += 1;
                        results.push(Ok(hit));
                        continue;
                    }
                }
                match guard.execute(op) {
                    Ok((result, notification, event)) => {
                        executed += 1;
                        if record && Self::replay_tracked(rid, op) {
                            guard.replay_record(rid, &result);
                        }
                        if let Some(n) = notification {
                            notifications.push(n);
                        }
                        if let Some(e) = event {
                            // Threshold events are monotone within one
                            // run; only the latest state matters.
                            last_event = Some(e);
                        }
                        results.push(Ok(result));
                    }
                    Err(e) => {
                        results.push(Err(e));
                        break;
                    }
                }
            }
        }
        self.stats.ops.fetch_add(executed, Ordering::Relaxed);
        self.stats
            .window_replays
            .fetch_add(replayed, Ordering::Relaxed);
        for n in notifications {
            let fanned = self.subs.publish(&n);
            self.stats
                .notifications
                .fetch_add(fanned as u64, Ordering::Relaxed);
        }
        if let Some(e) = last_event {
            let _ = self.event_tx.send((block_id, e));
        }
        Ok(results)
    }

    fn init_block(&self, block_id: BlockId, ds: &str, params: &[u8]) -> Result<()> {
        let partition = self
            .registry
            .read()
            .create(ds, self.cfg.block_size, params)?;
        let block = self.store.get(block_id)?;
        let mut guard = block.lock();
        if guard.is_allocated() {
            // Idempotent re-init: the controller resets before reuse, but
            // a crash between reset and init must not wedge the block.
            guard.reset();
        }
        guard.install(partition)
    }

    fn split_block(
        &self,
        block_id: BlockId,
        spec: &SplitSpec,
        target: Option<&jiffy_proto::BlockLocation>,
    ) -> Result<()> {
        let block = self.store.get(block_id)?;
        let (payload, replay) = {
            let mut guard = block.lock();
            guard.set_repartition_in_flight(true);
            // The replay window travels with repartitioned data: a
            // retry for a key that moved re-routes to the target block
            // and must still find its cached result there. The snapshot
            // is taken under the same lock as the extraction, so it
            // covers every op the shipped payload reflects.
            let replay = match guard.export_replay() {
                Ok(r) => r,
                Err(e) => {
                    guard.set_repartition_in_flight(false);
                    return Err(e);
                }
            };
            let r = guard.partition_mut()?.split_out(spec);
            match r {
                Ok(p) => (p, replay),
                Err(e) => {
                    guard.set_repartition_in_flight(false);
                    return Err(e);
                }
            }
        };
        // Ship the payload while the block keeps serving ops (async
        // repartitioning: the block lock is NOT held during the
        // transfer).
        let data_moved = !payload.is_empty();
        let result = match (target, data_moved) {
            (Some(t), true) => self.ship_payload(t, &payload, &replay),
            _ => Ok(()),
        };
        let mut guard = block.lock();
        guard.finish_repartition(data_moved);
        if data_moved {
            if let Some(e) = guard.check_thresholds() {
                let _ = self.event_tx.send((block_id, e));
            }
        }
        self.stats.splits.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn merge_block(
        &self,
        block_id: BlockId,
        spec: &MergeSpec,
        target: Option<&jiffy_proto::BlockLocation>,
    ) -> Result<()> {
        let block = self.store.get(block_id)?;
        let (payloads, replay) = {
            let mut guard = block.lock();
            guard.set_repartition_in_flight(true);
            // As with split: the merged-away block's replay window moves
            // to the target, where retries for its keys will re-route.
            let replay = match guard.export_replay() {
                Ok(r) => r,
                Err(e) => {
                    guard.set_repartition_in_flight(false);
                    return Err(e);
                }
            };
            let r = guard.partition_mut()?.merge_out();
            match r {
                Ok(p) => (p, replay),
                Err(e) => {
                    guard.set_repartition_in_flight(false);
                    return Err(e);
                }
            }
        };
        let mut result = Ok(());
        let mut shipped = 0;
        if let Some(t) = target {
            for p in &payloads {
                match self.ship_payload(t, p, &replay) {
                    Ok(()) => shipped += 1,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        } else if !payloads.is_empty() && payloads.iter().any(|p| !p.is_empty()) {
            result = Err(JiffyError::Internal(format!(
                "merge of {block_id} produced payloads but no target (spec {spec:?})"
            )));
        }
        if result.is_err() {
            // Transactional abort: merge payloads are atomic (a KV merge
            // produces exactly one all-ranges payload, and absorption is
            // all-or-nothing), so on failure nothing reached the target
            // and re-absorbing restores the source losslessly.
            let mut guard = block.lock();
            if let Ok(partition) = guard.partition_mut() {
                for p in payloads.iter().skip(shipped) {
                    let _ = partition.absorb(p);
                }
            }
        }
        let mut guard = block.lock();
        guard.set_repartition_in_flight(false);
        self.stats.merges.fetch_add(1, Ordering::Relaxed);
        result
    }

    fn ship_payload(
        &self,
        target: &jiffy_proto::BlockLocation,
        payload: &[u8],
        replay: &[u8],
    ) -> Result<()> {
        // Every replica of the target chain absorbs the payload: reads
        // route to the tail, so a transfer that stopped at the head
        // would leave replicas answering `StaleMetadata` for the moved
        // ranges forever (and a later promotion would lose them). The
        // replay window ships alongside for the same reason: any
        // replica may be asked to answer a retry after a promotion.
        let my_addr = self.identity().map(|(_, addr)| addr);
        for replica in &target.chain {
            // Local-target fast path (same server): skip the transport.
            if my_addr.as_deref() == Some(replica.addr.as_str()) {
                self.import_payload(replica.block, payload, replay)?;
                continue;
            }
            let conn = self.fabric.connect(&replica.addr)?;
            // Server-to-server transfer: exempt from admission control.
            match conn.call(Envelope::DataReq {
                id: INTERNAL_RID,
                req: DataRequest::ImportPayload {
                    block: replica.block,
                    payload: payload.into(),
                    replay: replay.into(),
                },
                tenant: TenantId::ANONYMOUS,
            })? {
                Envelope::DataResp { resp: Ok(_), .. } => {}
                Envelope::DataResp { resp: Err(e), .. } => return Err(e),
                other => return Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
            }
        }
        Ok(())
    }

    fn import_payload(&self, block_id: BlockId, payload: &[u8], replay: &[u8]) -> Result<()> {
        let block = self.store.get(block_id)?;
        let event = {
            let mut guard = block.lock();
            guard.partition_mut()?.absorb(payload)?;
            guard.import_replay(replay)?;
            guard.check_thresholds()
        };
        if let Some(e) = event {
            let _ = self.event_tx.send((block_id, e));
        }
        self.stats.imports.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn replicate(
        &self,
        block_id: BlockId,
        op: &DsOp,
        downstream: &[jiffy_proto::Replica],
        rid: u64,
    ) -> Result<DsResult> {
        // Execute-or-replay under the block lock, recording the result
        // in the replay window so a retry after this replica is
        // promoted to head answers from the cache. A window hit still
        // falls through to the fan-down below: the first attempt may
        // have died mid-chain, so the retry must finish propagating the
        // write (downstream replicas dedupe via their own windows).
        let result = self.execute_op(block_id, op, rid, true)?;
        // Forward down the chain before acknowledging (chain
        // replication: a write is durable once the tail has it).
        if let Some((next, rest)) = downstream.split_first() {
            let conn = self.fabric.connect(&next.addr)?;
            // The chain-head already charged this op against the tenant;
            // forwarding anonymously keeps replication from multiplying
            // the charge (and from being throttled mid-chain, which
            // would leave replicas diverged). The originating request id
            // fans down explicitly — the envelope id is re-stamped by
            // the transport, so it cannot carry the rid.
            match conn.call(Envelope::DataReq {
                id: INTERNAL_RID,
                req: DataRequest::Replicate {
                    block: next.block,
                    op: op.clone(),
                    downstream: rest.to_vec(),
                    rid,
                },
                tenant: TenantId::ANONYMOUS,
            })? {
                Envelope::DataResp { resp: Ok(_), .. } => {}
                Envelope::DataResp { resp: Err(e), .. } => return Err(e),
                other => return Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
            }
        }
        Ok(result)
    }

    /// The batched replication path: executes the batch locally (with
    /// per-op replay-window dedup), then fans the successfully executed
    /// prefix down the chain. Only the `Ok` prefix propagates — under
    /// stop-at-first-error semantics the ops after a failure never
    /// executed here, so forwarding them would diverge the replicas.
    fn replicate_batch(
        &self,
        block_id: BlockId,
        ops: &[DsOp],
        downstream: &[jiffy_proto::Replica],
        rids: &[u64],
    ) -> Result<Vec<Result<DsResult>>> {
        let results = self.execute_batch(block_id, ops, rids, true)?;
        let ok_prefix = results.iter().take_while(|r| r.is_ok()).count();
        if ok_prefix > 0 {
            if let Some((next, rest)) = downstream.split_first() {
                let conn = self.fabric.connect(&next.addr)?;
                let fan_rids = if rids.is_empty() {
                    Vec::new()
                } else {
                    rids[..ok_prefix].to_vec()
                };
                match conn.call(Envelope::DataReq {
                    id: INTERNAL_RID,
                    req: DataRequest::ReplicateBatch {
                        block: next.block,
                        ops: ops[..ok_prefix].to_vec(),
                        downstream: rest.to_vec(),
                        rids: fan_rids,
                    },
                    tenant: TenantId::ANONYMOUS,
                })? {
                    Envelope::DataResp {
                        resp: Ok(DataResponse::Batch(down)),
                        ..
                    } => {
                        // The downstream replica saw exactly the ops we
                        // executed; anything but an all-`Ok` echo of
                        // that prefix means the chain diverged.
                        if down.len() != ok_prefix || down.iter().any(Result::is_err) {
                            return Err(JiffyError::Rpc(format!(
                                "replicated batch diverged downstream: \
                                 {ok_prefix} ops forwarded, reply {down:?}"
                            )));
                        }
                    }
                    Envelope::DataResp { resp: Err(e), .. } => return Err(e),
                    other => return Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
                }
            }
        }
        Ok(results)
    }

    /// The `(ops, ingress bytes)` cost admission control charges for a
    /// request, or `None` for requests exempt from throttling (reads of
    /// metadata, subscriptions, and controller/server-internal traffic).
    fn admission_cost(req: &DataRequest) -> Option<(u64, u64)> {
        match req {
            DataRequest::Op { op, .. } | DataRequest::Replicate { op, .. } => {
                Some((1, op.ingress_bytes()))
            }
            DataRequest::Batch { ops, .. } | DataRequest::ReplicateBatch { ops, .. } => {
                Some((ops.len() as u64, ops.iter().map(DsOp::ingress_bytes).sum()))
            }
            // Exempt: metadata reads, subscriptions, liveness, and the
            // block-lifecycle RPCs the controller/servers drive
            // (migration, split/merge, seal) — internal traffic must
            // never throttle, or repair stalls behind a hot tenant.
            DataRequest::Subscribe { .. }
            | DataRequest::Unsubscribe { .. }
            | DataRequest::Usage { .. }
            | DataRequest::ImportPayload { .. }
            | DataRequest::SplitBlock { .. }
            | DataRequest::MergeBlock { .. }
            | DataRequest::InitBlock { .. }
            | DataRequest::ResetBlock { .. }
            | DataRequest::ExportBlock { .. }
            | DataRequest::SealBlock { .. }
            | DataRequest::RetireBlock { .. }
            | DataRequest::Ping => None,
        }
    }

    /// Response payload bytes charged against the tenant's egress lane
    /// after execution (post-paid: a large dequeue drains the budget for
    /// subsequent ops rather than being rejected mid-flight).
    fn egress_cost(resp: &DataResponse) -> u64 {
        match resp {
            DataResponse::OpResult(r) => r.egress_bytes(),
            DataResponse::Batch(results) => results
                .iter()
                .map(|r| r.as_ref().map_or(0, DsResult::egress_bytes))
                .sum(),
            _ => 0,
        }
    }

    fn dispatch(
        &self,
        req: DataRequest,
        tenant: TenantId,
        session: &SessionHandle,
        rid: u64,
    ) -> Result<DataResponse> {
        // Admission control runs BEFORE any execution or replay-cache
        // registration: a `Throttled` answer is a server-definitive
        // "did not execute", so clients may freely re-send. Ops that
        // pass are charged immediately (ingress); their response bytes
        // are charged after execution (egress).
        if let Some((ops, bytes)) = Self::admission_cost(&req) {
            self.qos.admit(tenant, ops, bytes)?;
        }
        let resp = self.dispatch_inner(req, session, rid)?;
        let egress = Self::egress_cost(&resp);
        if egress > 0 {
            self.qos.charge_egress(tenant, egress);
        }
        Ok(resp)
    }

    fn dispatch_inner(
        &self,
        req: DataRequest,
        session: &SessionHandle,
        rid: u64,
    ) -> Result<DataResponse> {
        match req {
            DataRequest::Op { block, op } => {
                // The envelope id doubles as the request id on the plain
                // Op path (clients stamp both from one counter). Lookup
                // only — a single-replica block has nowhere to fail over
                // to, so the per-session dedup cache already covers the
                // lost-ack case; the block window answers retries that
                // re-route here after a promotion or migration.
                Ok(DataResponse::OpResult(
                    self.execute_op(block, &op, rid, false)?,
                ))
            }
            DataRequest::Subscribe { block, ops } => {
                // Validate the block exists so clients learn of typos.
                self.store.get(block)?;
                self.subs.subscribe(block, &ops, session);
                Ok(DataResponse::Ack)
            }
            DataRequest::Unsubscribe { block, ops } => {
                self.subs.unsubscribe(block, &ops, session);
                Ok(DataResponse::Ack)
            }
            DataRequest::Usage { block } => {
                let block = self.store.get(block)?;
                let guard = block.lock();
                Ok(DataResponse::Usage {
                    used: guard.used_bytes() as u64,
                    capacity: guard.capacity() as u64,
                })
            }
            DataRequest::ImportPayload {
                block,
                payload,
                replay,
            } => {
                self.import_payload(block, &payload, &replay)?;
                Ok(DataResponse::Ack)
            }
            DataRequest::Replicate {
                block,
                op,
                downstream,
                rid,
            } => Ok(DataResponse::OpResult(self.replicate(
                block,
                &op,
                &downstream,
                rid,
            )?)),
            DataRequest::ReplicateBatch {
                block,
                ops,
                downstream,
                rids,
            } => Ok(DataResponse::Batch(self.replicate_batch(
                block,
                &ops,
                &downstream,
                &rids,
            )?)),
            DataRequest::SplitBlock {
                block,
                spec,
                target,
            } => {
                self.split_block(block, &spec, target.as_ref())?;
                Ok(DataResponse::Ack)
            }
            DataRequest::MergeBlock {
                block,
                spec,
                target,
            } => {
                self.merge_block(block, &spec, target.as_ref())?;
                Ok(DataResponse::Ack)
            }
            DataRequest::InitBlock { block, ds, params } => {
                self.init_block(block, &ds, &params)?;
                Ok(DataResponse::Ack)
            }
            DataRequest::ResetBlock { block } => {
                let block = self.store.get(block)?;
                block.lock().reset();
                Ok(DataResponse::Ack)
            }
            DataRequest::ExportBlock { block } => {
                let block = self.store.get(block)?;
                let guard = block.lock();
                // Payload and replay window snapshot under ONE lock, so
                // the window is exactly as of the exported image (a
                // migration re-imports both at every destination
                // replica; flush drops the window — persisted images
                // predate any retry they could answer).
                let payload = guard.partition_ref()?.export()?;
                let replay = guard.export_replay()?;
                Ok(DataResponse::Exported {
                    payload: payload.into(),
                    replay: replay.into(),
                })
            }
            DataRequest::SealBlock { block, sealed } => {
                let block = self.store.get(block)?;
                block.lock().set_sealed(sealed);
                Ok(DataResponse::Ack)
            }
            DataRequest::RetireBlock { block, moved_to } => {
                let block = self.store.get(block)?;
                block.lock().retire(moved_to);
                Ok(DataResponse::Ack)
            }
            DataRequest::Ping => Ok(DataResponse::Pong),
            DataRequest::Batch { block, ops, rids } => Ok(DataResponse::Batch(
                self.execute_batch(block, &ops, &rids, false)?,
            )),
        }
    }

    /// Starts the periodic membership heartbeat to the controller
    /// (every `cfg.heartbeat_interval`). The worker holds only a weak
    /// reference, so it exits when the server is dropped; it also stops
    /// once the controller rejects the heartbeat with `UnknownServer`
    /// (this server was declared dead or deregistered — it would have
    /// to re-join, not heartbeat).
    pub fn start_heartbeats(self: &Arc<Self>) {
        let worker = Arc::downgrade(self);
        let interval = self.cfg.heartbeat_interval;
        #[allow(clippy::expect_used)] // invariant documented in the message
        std::thread::Builder::new()
            .name("jiffy-heartbeat".into())
            .spawn(move || loop {
                std::thread::sleep(interval);
                let Some(server) = worker.upgrade() else {
                    break;
                };
                if !server.send_heartbeat() {
                    break;
                }
            })
            .expect("invariant: thread spawn fails only on OS resource exhaustion");
    }

    /// Sends one heartbeat. Returns false only when heartbeating should
    /// stop for good (the controller no longer knows this server);
    /// transient transport failures and a not-yet-registered identity
    /// just wait for the next tick.
    fn send_heartbeat(&self) -> bool {
        let Some((server_id, _)) = self.identity() else {
            return true;
        };
        let used = self.store.allocated_count() as u32;
        let total = self.store.len() as u32;
        let req = ControlRequest::Heartbeat {
            server: server_id,
            used_blocks: used,
            free_blocks: total.saturating_sub(used),
            tenant_loads: self.qos.loads(),
        };
        let Ok(conn) = self.fabric.connect(&self.controller_addr) else {
            return true;
        };
        match conn.call(Envelope::ControlReq {
            id: 0,
            req,
            tenant: TenantId::ANONYMOUS,
        }) {
            Ok(Envelope::ControlResp {
                resp: Err(JiffyError::UnknownServer(_)),
                ..
            }) => false,
            Ok(Envelope::ControlResp {
                resp: Ok(ControlResponse::HeartbeatAck { limits }),
                ..
            }) => {
                // The heartbeat doubles as the QoS control loop: the
                // controller piggybacks the current tenant limit table
                // on the ack and we swap it into admission control.
                self.qos.install_limits(&limits);
                true
            }
            Ok(_) => true,
            Err(_) => {
                // The pooled connection may point at a crashed controller;
                // evict it so the next tick dials the restarted one.
                self.fabric.evict(&self.controller_addr);
                true
            }
        }
    }
}

impl Service for MemoryServer {
    fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
        match req {
            Envelope::DataReq { id, req, tenant } => Envelope::DataResp {
                id,
                resp: self.dispatch(req, tenant, session, id),
            },
            Envelope::ControlReq { id, .. } => Envelope::ControlResp {
                id,
                resp: Err(JiffyError::Rpc(
                    "control request sent to a memory server".into(),
                )),
                epoch: 0,
            },
            other => Envelope::DataResp {
                id: 0,
                resp: Err(JiffyError::Rpc(format!("unexpected envelope {other:?}"))),
            },
        }
    }

    fn on_disconnect(&self, session: &SessionHandle) {
        self.subs.drop_session(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::clock::SystemClock;
    use jiffy_controller::{Controller, RpcDataPlane};
    use jiffy_persistent::MemObjectStore;
    use jiffy_proto::DsType;

    /// Boots a single-process cluster: controller + `n` memory servers,
    /// all on the in-proc transport.
    fn cluster(n: usize, blocks_each: u32) -> (Fabric, String, Vec<Arc<MemoryServer>>) {
        let fabric = Fabric::new();
        let cfg = JiffyConfig::for_testing();
        let controller = Controller::new(
            cfg.clone(),
            SystemClock::shared(),
            Arc::new(RpcDataPlane::new(fabric.clone())),
            Arc::new(MemObjectStore::new()),
        )
        .unwrap();
        let controller_addr = fabric.hub().register(controller);
        let mut servers = Vec::new();
        for _ in 0..n {
            let server = MemoryServer::new(cfg.clone(), fabric.clone(), controller_addr.clone());
            let addr = fabric.hub().register(server.clone());
            server.register(&addr, blocks_each).unwrap();
            servers.push(server);
        }
        (fabric, controller_addr, servers)
    }

    fn control(fabric: &Fabric, addr: &str, req: ControlRequest) -> ControlResponse {
        let conn = fabric.connect(addr).unwrap();
        let env = Envelope::ControlReq {
            id: 0,
            req,
            tenant: TenantId::ANONYMOUS,
        };
        match conn.call(env).unwrap() {
            Envelope::ControlResp { resp, .. } => resp.unwrap(),
            other => panic!("{other:?}"),
        }
    }

    fn data(fabric: &Fabric, addr: &str, req: DataRequest) -> Result<DataResponse> {
        let conn = fabric.connect(addr).unwrap();
        let env = Envelope::DataReq {
            id: 0,
            req,
            tenant: TenantId::ANONYMOUS,
        };
        match conn.call(env).unwrap() {
            Envelope::DataResp { resp, .. } => resp,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn end_to_end_kv_put_get_through_real_planes() {
        let (fabric, ctrl_addr, _servers) = cluster(2, 4);
        let job = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::RegisterJob { name: "e2e".into() },
        ) {
            ControlResponse::JobRegistered { job } => job,
            other => panic!("{other:?}"),
        };
        control(
            &fabric,
            &ctrl_addr,
            ControlRequest::CreatePrefix {
                job,
                name: "kv".into(),
                parents: vec![],
                ds: Some(DsType::KvStore),
                initial_blocks: 1,
            },
        );
        let view = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            },
        ) {
            ControlResponse::Resolved(v) => v,
            other => panic!("{other:?}"),
        };
        let loc = view.partition.unwrap().blocks()[0].clone();
        let put = data(
            &fabric,
            &loc.head().addr,
            DataRequest::Op {
                block: loc.id(),
                op: DsOp::Put {
                    key: "k".into(),
                    value: "v".into(),
                },
            },
        )
        .unwrap();
        assert_eq!(put, DataResponse::OpResult(DsResult::Replaced(None)));
        let get = data(
            &fabric,
            &loc.head().addr,
            DataRequest::Op {
                block: loc.id(),
                op: DsOp::Get { key: "k".into() },
            },
        )
        .unwrap();
        assert_eq!(
            get,
            DataResponse::OpResult(DsResult::MaybeData(Some("v".into())))
        );
    }

    #[test]
    fn batch_executes_in_order_and_stops_at_first_error() {
        let (fabric, ctrl_addr, servers) = cluster(1, 4);
        let job = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::RegisterJob {
                name: "batch".into(),
            },
        ) {
            ControlResponse::JobRegistered { job } => job,
            other => panic!("{other:?}"),
        };
        control(
            &fabric,
            &ctrl_addr,
            ControlRequest::CreatePrefix {
                job,
                name: "kv".into(),
                parents: vec![],
                ds: Some(DsType::KvStore),
                initial_blocks: 1,
            },
        );
        let view = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            },
        ) {
            ControlResponse::Resolved(v) => v,
            other => panic!("{other:?}"),
        };
        let loc = view.partition.unwrap().blocks()[0].clone();
        let ops_before = servers[0].stats().ops;
        let resp = data(
            &fabric,
            &loc.head().addr,
            DataRequest::Batch {
                block: loc.id(),
                rids: vec![],
                ops: vec![
                    DsOp::Put {
                        key: "a".into(),
                        value: "1".into(),
                    },
                    DsOp::Put {
                        key: "b".into(),
                        value: "2".into(),
                    },
                    DsOp::Get { key: "a".into() },
                    // Wrong data structure: fails, and execution stops.
                    DsOp::Dequeue,
                    DsOp::Put {
                        key: "c".into(),
                        value: "3".into(),
                    },
                ],
            },
        )
        .unwrap();
        let results = match resp {
            DataResponse::Batch(r) => r,
            other => panic!("{other:?}"),
        };
        // A prefix of the request: three successes, then the failure;
        // the Put after the failure was never attempted.
        assert_eq!(results.len(), 4);
        assert_eq!(results[0], Ok(DsResult::Replaced(None)));
        assert_eq!(results[1], Ok(DsResult::Replaced(None)));
        assert_eq!(results[2], Ok(DsResult::MaybeData(Some("1".into()))));
        assert!(results[3].is_err(), "got {:?}", results[3]);
        assert_eq!(servers[0].stats().ops, ops_before + 3);
        let get_c = data(
            &fabric,
            &loc.head().addr,
            DataRequest::Op {
                block: loc.id(),
                op: DsOp::Get { key: "c".into() },
            },
        )
        .unwrap();
        assert_eq!(get_c, DataResponse::OpResult(DsResult::MaybeData(None)));
        // A batch against an unknown block fails as a whole.
        assert!(data(
            &fabric,
            &loc.head().addr,
            DataRequest::Batch {
                block: BlockId(9999),
                ops: vec![DsOp::KvCount],
                rids: vec![],
            },
        )
        .is_err());
    }

    #[test]
    fn overload_triggers_split_and_data_remains_reachable() {
        let (fabric, ctrl_addr, servers) = cluster(1, 4);
        let job = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::RegisterJob {
                name: "split".into(),
            },
        ) {
            ControlResponse::JobRegistered { job } => job,
            other => panic!("{other:?}"),
        };
        control(
            &fabric,
            &ctrl_addr,
            ControlRequest::CreatePrefix {
                job,
                name: "kv".into(),
                parents: vec![],
                ds: Some(DsType::KvStore),
                initial_blocks: 1,
            },
        );
        let view = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            },
        ) {
            ControlResponse::Resolved(v) => v,
            other => panic!("{other:?}"),
        };
        assert!(view.partition.is_some());
        // Fill past the high watermark (64 KB test blocks, 95 %): write
        // ~62 KB of values. The threshold report is asynchronous, so a
        // split can land mid-loop; route every put by slot from a fresh
        // resolve and retry on StaleMetadata, exactly as a real client
        // would.
        for i in 0..62 {
            let key = format!("key-{i}");
            let slot = jiffy_ds::kv_slot(key.as_bytes(), 1024);
            let mut done = false;
            for _ in 0..20 {
                let view = match control(
                    &fabric,
                    &ctrl_addr,
                    ControlRequest::ResolvePrefix {
                        job,
                        name: "kv".into(),
                    },
                ) {
                    ControlResponse::Resolved(v) => v,
                    other => panic!("{other:?}"),
                };
                let location = match &view.partition.unwrap() {
                    jiffy_proto::PartitionView::Kv { slots, .. } => slots
                        .iter()
                        .find(|s| s.contains(slot))
                        .unwrap_or_else(|| panic!("slot {slot} unowned"))
                        .location
                        .clone(),
                    other => panic!("{other:?}"),
                };
                match data(
                    &fabric,
                    &location.head().addr,
                    DataRequest::Op {
                        block: location.id(),
                        op: DsOp::Put {
                            key: key.as_str().into(),
                            value: vec![0u8; 1000].into(),
                        },
                    },
                ) {
                    Ok(_) => {
                        done = true;
                        break;
                    }
                    Err(JiffyError::StaleMetadata) => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(other) => panic!("put {key}: {other:?}"),
                }
            }
            assert!(done, "put {key} kept hitting stale metadata");
        }
        // The threshold report is asynchronous; wait for the split.
        for _ in 0..200 {
            if servers[0].stats().splits > 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(servers[0].stats().splits > 0, "split should have fired");
        // The view now has 2 blocks; every key must be readable from the
        // block its slot maps to.
        let view = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            },
        ) {
            ControlResponse::Resolved(v) => v,
            other => panic!("{other:?}"),
        };
        let partition = view.partition.unwrap();
        let slots = match &partition {
            jiffy_proto::PartitionView::Kv { slots, .. } => slots.clone(),
            other => panic!("{other:?}"),
        };
        assert!(slots.len() >= 2);
        for i in 0..62 {
            let key = format!("key-{i}");
            let slot = jiffy_ds::kv_slot(key.as_bytes(), 1024);
            let owner = slots
                .iter()
                .find(|s| s.contains(slot))
                .unwrap_or_else(|| panic!("slot {slot} unowned"));
            let got = data(
                &fabric,
                &owner.location.head().addr,
                DataRequest::Op {
                    block: owner.location.id(),
                    op: DsOp::Get {
                        key: key.as_str().into(),
                    },
                },
            )
            .unwrap();
            match got {
                DataResponse::OpResult(DsResult::MaybeData(Some(v))) => {
                    assert_eq!(v.len(), 1000);
                }
                other => panic!("key-{i}: {other:?}"),
            }
        }
    }

    #[test]
    fn notifications_fan_out_to_subscribers() {
        let (fabric, ctrl_addr, _servers) = cluster(1, 2);
        let job = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::RegisterJob {
                name: "notif".into(),
            },
        ) {
            ControlResponse::JobRegistered { job } => job,
            other => panic!("{other:?}"),
        };
        control(
            &fabric,
            &ctrl_addr,
            ControlRequest::CreatePrefix {
                job,
                name: "q".into(),
                parents: vec![],
                ds: Some(DsType::Queue),
                initial_blocks: 1,
            },
        );
        let view = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::ResolvePrefix {
                job,
                name: "q".into(),
            },
        ) {
            ControlResponse::Resolved(v) => v,
            other => panic!("{other:?}"),
        };
        let loc = view.partition.unwrap().blocks()[0].clone();
        // Dedicated (unpooled) connection for the subscriber.
        let sub_conn = fabric.dial(&loc.head().addr).unwrap();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        sub_conn.set_push_callback(Arc::new(move |n| {
            assert_eq!(n.op, jiffy_proto::OpKind::Enqueue);
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        sub_conn
            .call(Envelope::DataReq {
                id: 0,
                req: DataRequest::Subscribe {
                    block: loc.id(),
                    ops: vec![jiffy_proto::OpKind::Enqueue],
                },
                tenant: TenantId::ANONYMOUS,
            })
            .unwrap();
        for _ in 0..3 {
            data(
                &fabric,
                &loc.head().addr,
                DataRequest::Op {
                    block: loc.id(),
                    op: DsOp::Enqueue { item: "x".into() },
                },
            )
            .unwrap();
        }
        assert_eq!(seen.load(Ordering::SeqCst), 3);
        // Disconnect clears the subscription.
        sub_conn.close();
        data(
            &fabric,
            &loc.head().addr,
            DataRequest::Op {
                block: loc.id(),
                op: DsOp::Enqueue { item: "y".into() },
            },
        )
        .unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn replication_chain_forwards_writes() {
        // Two servers; write through a manual 2-replica chain.
        let (fabric, ctrl_addr, _servers) = cluster(2, 2);
        // Build the chain by hand: allocate two blocks via two prefixes
        // is awkward; instead drive InitBlock directly on both servers.
        let job = match control(
            &fabric,
            &ctrl_addr,
            ControlRequest::RegisterJob {
                name: "chain".into(),
            },
        ) {
            ControlResponse::JobRegistered { job } => job,
            other => panic!("{other:?}"),
        };
        let _ = job;
        // Server addresses from registration order: inproc ids are
        // opaque, so fetch via stats path — simpler: init block 0 on
        // server 0 and block 2 on server 1 (2 blocks per server).
        let servers = match control(&fabric, &ctrl_addr, ControlRequest::GetStats) {
            ControlResponse::Stats(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(servers.total_blocks, 4);
        let params = jiffy_proto::to_bytes(&jiffy_ds::KvParams {
            ranges: vec![(0, 1023)],
            num_slots: 1024,
        })
        .unwrap();
        // The first two block IDs live on the first server, the next two
        // on the second (registration order).
        let addr0 = "inproc:1"; // controller is inproc:0
        let addr1 = "inproc:2";
        for (addr, block) in [(addr0, BlockId(0)), (addr1, BlockId(2))] {
            data(
                &fabric,
                addr,
                DataRequest::InitBlock {
                    block,
                    ds: DsType::KvStore.to_string(),
                    params: params.clone().into(),
                },
            )
            .unwrap();
        }
        // Replicated write: head = server0/block0, tail = server1/block2.
        data(
            &fabric,
            addr0,
            DataRequest::Replicate {
                block: BlockId(0),
                op: DsOp::Put {
                    key: "k".into(),
                    value: "v".into(),
                },
                downstream: vec![jiffy_proto::Replica {
                    block: BlockId(2),
                    server: ServerId(1),
                    addr: addr1.to_string(),
                }],
                rid: CLIENT_RID_BASE + 1,
            },
        )
        .unwrap();
        // Read at the tail.
        let got = data(
            &fabric,
            addr1,
            DataRequest::Op {
                block: BlockId(2),
                op: DsOp::Get { key: "k".into() },
            },
        )
        .unwrap();
        assert_eq!(
            got,
            DataResponse::OpResult(DsResult::MaybeData(Some("v".into())))
        );
    }

    /// The tentpole invariant, driven deterministically: a replicated
    /// write executes on head and tail; the head then "dies" (we simply
    /// stop talking to it) and the client retries the same request id
    /// against the promoted tail. The retry is answered from the tail's
    /// replay window — byte-identical result, zero re-executions.
    #[test]
    fn promoted_replica_answers_retry_from_replay_window() {
        let (fabric, _ctrl_addr, servers) = cluster(2, 2);
        let params = jiffy_proto::to_bytes(&jiffy_ds::KvParams {
            ranges: vec![(0, 1023)],
            num_slots: 1024,
        })
        .unwrap();
        let addr0 = "inproc:1";
        let addr1 = "inproc:2";
        for (addr, block) in [(addr0, BlockId(0)), (addr1, BlockId(2))] {
            data(
                &fabric,
                addr,
                DataRequest::InitBlock {
                    block,
                    ds: DsType::KvStore.to_string(),
                    params: params.clone().into(),
                },
            )
            .unwrap();
        }
        let rid = CLIENT_RID_BASE + 42;
        let put = DsOp::Put {
            key: "k".into(),
            value: "v1".into(),
        };
        // First attempt: executes on both replicas. Put over an absent
        // key answers `Replaced(None)` — re-executing it would answer
        // `Replaced(Some("v1"))`, so the reply itself proves whether
        // the retry replayed or re-ran.
        let first = data(
            &fabric,
            addr0,
            DataRequest::Replicate {
                block: BlockId(0),
                op: put.clone(),
                downstream: vec![jiffy_proto::Replica {
                    block: BlockId(2),
                    server: ServerId(1),
                    addr: addr1.to_string(),
                }],
                rid,
            },
        )
        .unwrap();
        assert_eq!(first, DataResponse::OpResult(DsResult::Replaced(None)));
        let (ops0, ops1) = (servers[0].stats().ops, servers[1].stats().ops);
        // Head failover: the promoted tail serves the block alone, so
        // the retry arrives as a plain Op whose envelope id carries the
        // original request id.
        let conn = fabric.connect(addr1).unwrap();
        let retried = match conn
            .call(Envelope::DataReq {
                id: rid,
                req: DataRequest::Op {
                    block: BlockId(2),
                    op: put,
                },
                tenant: TenantId::ANONYMOUS,
            })
            .unwrap()
        {
            Envelope::DataResp { resp, .. } => resp.unwrap(),
            other => panic!("{other:?}"),
        };
        assert_eq!(
            retried,
            DataResponse::OpResult(DsResult::Replaced(None)),
            "retry must replay the original result, not re-execute"
        );
        assert_eq!(servers[0].stats().ops, ops0, "head saw no retry");
        assert_eq!(servers[1].stats().ops, ops1, "tail must not re-execute");
        assert_eq!(servers[1].stats().window_replays, 1);
        // A *different* rid for the same op is a new request and does
        // execute (second Put over the now-present key).
        let fresh = match conn
            .call(Envelope::DataReq {
                id: rid + 1,
                req: DataRequest::Op {
                    block: BlockId(2),
                    op: DsOp::Put {
                        key: "k".into(),
                        value: "v2".into(),
                    },
                },
                tenant: TenantId::ANONYMOUS,
            })
            .unwrap()
        {
            Envelope::DataResp { resp, .. } => resp.unwrap(),
            other => panic!("{other:?}"),
        };
        assert_eq!(
            fresh,
            DataResponse::OpResult(DsResult::Replaced(Some("v1".into())))
        );
    }

    /// Batched replication fans per-op request ids down the chain and
    /// replays per-op on retry, even when the retry regroups the ops.
    #[test]
    fn replicated_batch_retries_replay_per_op() {
        let (fabric, _ctrl_addr, servers) = cluster(2, 2);
        let addr0 = "inproc:1";
        let addr1 = "inproc:2";
        for (addr, block) in [(addr0, BlockId(0)), (addr1, BlockId(2))] {
            data(
                &fabric,
                addr,
                DataRequest::InitBlock {
                    block,
                    ds: DsType::Queue.to_string(),
                    params: vec![].into(),
                },
            )
            .unwrap();
        }
        let base = CLIENT_RID_BASE + 100;
        let ops: Vec<DsOp> = (0..4)
            .map(|i| DsOp::Enqueue {
                item: format!("item-{i}").into_bytes().into(),
            })
            .collect();
        let rids: Vec<u64> = (0..4).map(|i| base + i).collect();
        let downstream = vec![jiffy_proto::Replica {
            block: BlockId(2),
            server: ServerId(1),
            addr: addr1.to_string(),
        }];
        let resp = data(
            &fabric,
            addr0,
            DataRequest::ReplicateBatch {
                block: BlockId(0),
                ops: ops.clone(),
                downstream: downstream.clone(),
                rids: rids.clone(),
            },
        )
        .unwrap();
        match resp {
            DataResponse::Batch(r) => {
                assert_eq!(r.len(), 4);
                assert!(r.iter().all(Result::is_ok));
            }
            other => panic!("{other:?}"),
        }
        let (ops0, ops1) = (servers[0].stats().ops, servers[1].stats().ops);
        // Retry the SAME rids regrouped: the first two ops as one batch,
        // the last two as singles — all must replay, none re-execute.
        let resp = data(
            &fabric,
            addr0,
            DataRequest::ReplicateBatch {
                block: BlockId(0),
                ops: ops[..2].to_vec(),
                downstream: downstream.clone(),
                rids: rids[..2].to_vec(),
            },
        )
        .unwrap();
        match resp {
            DataResponse::Batch(r) => assert_eq!(r.len(), 2),
            other => panic!("{other:?}"),
        }
        for i in 2..4 {
            data(
                &fabric,
                addr0,
                DataRequest::Replicate {
                    block: BlockId(0),
                    op: ops[i].clone(),
                    downstream: downstream.clone(),
                    rid: rids[i],
                },
            )
            .unwrap();
        }
        assert_eq!(servers[0].stats().ops, ops0, "head re-executed a retry");
        assert_eq!(servers[1].stats().ops, ops1, "tail re-executed a retry");
        assert!(servers[0].stats().window_replays >= 4);
        assert!(servers[1].stats().window_replays >= 4);
        // Exactly-once proof: the queue on each replica holds exactly
        // the four items, in order.
        for (addr, block) in [(addr0, BlockId(0)), (addr1, BlockId(2))] {
            for i in 0..4 {
                let got = data(
                    &fabric,
                    addr,
                    DataRequest::Op {
                        block,
                        op: DsOp::Dequeue,
                    },
                )
                .unwrap();
                assert_eq!(
                    got,
                    DataResponse::OpResult(DsResult::MaybeData(Some(
                        format!("item-{i}").into_bytes().into()
                    )))
                );
            }
            let empty = data(
                &fabric,
                addr,
                DataRequest::Op {
                    block,
                    op: DsOp::Dequeue,
                },
            )
            .unwrap();
            assert_eq!(empty, DataResponse::OpResult(DsResult::MaybeData(None)));
        }
    }
}
