//! The unified error type for all Jiffy crates.

use std::fmt;
use std::io;

use serde::{Deserialize, Serialize};

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, JiffyError>;

/// Errors produced anywhere in the Jiffy control plane, data plane or
/// client library.
///
/// The type is (de)serializable so that errors raised on a remote memory
/// server or controller can be shipped back over the RPC layer verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JiffyError {
    /// An address prefix (or full block address) does not exist in the
    /// hierarchy of the addressed job.
    PathNotFound(String),
    /// Attempt to create an address prefix that already exists.
    PathExists(String),
    /// The job ID is not registered at the controller.
    UnknownJob(u64),
    /// The block ID is not hosted on the addressed memory server.
    UnknownBlock(u64),
    /// The memory server ID is not registered at the controller.
    UnknownServer(u64),
    /// The controller's free list is exhausted (all blocks allocated).
    OutOfBlocks,
    /// A data-structure operation was routed to a partition of the wrong
    /// type (e.g. a queue op sent to a file block).
    WrongDataStructure {
        /// Type the caller expected.
        expected: String,
        /// Type actually found.
        found: String,
    },
    /// A block-level storage operation would exceed the block capacity and
    /// the data structure could not split (e.g. single item larger than a
    /// block).
    BlockFull {
        /// Capacity of the block in bytes.
        capacity: usize,
        /// Bytes the operation attempted to add.
        requested: usize,
    },
    /// The lease on an address prefix has expired; its memory was
    /// reclaimed (data may be recoverable from the persistent tier).
    LeaseExpired(String),
    /// The caller lacks permission for the requested operation on a prefix.
    PermissionDenied(String),
    /// A queue bounded by `max_queue_length` is full.
    QueueFull,
    /// Read past the end of a file or from an empty queue.
    OutOfRange {
        /// Requested offset or position.
        offset: u64,
        /// Current length of the object.
        len: u64,
    },
    /// The client's cached partition metadata is stale; it must refresh
    /// from the controller and retry. Raised by a memory server when an
    /// op addresses a block the server no longer owns for that structure.
    StaleMetadata,
    /// The addressed block was migrated to another server; the redirect
    /// carries the new home so the client can retry there (and refresh
    /// its cached view lazily). Left behind as a tombstone on the source
    /// block until the block is reused.
    BlockMoved {
        /// The block's ID at its new home.
        block: u64,
        /// ID of the server now hosting the block.
        server: u64,
        /// Transport address of the new home.
        addr: String,
    },
    /// The persistent tier has no object under the given external path.
    PersistentObjectMissing(String),
    /// Failure in the RPC/transport layer (connection reset, codec error,
    /// unexpected response variant, ...).
    Rpc(String),
    /// An RPC did not complete within its deadline. The request may or
    /// may not have executed — callers must retry with the same request
    /// id so the server's replay cache can deduplicate.
    Timeout {
        /// The deadline that elapsed, in milliseconds.
        after_ms: u64,
    },
    /// The peer is unreachable (connection refused, network partition,
    /// injected fault). Transient by definition: retry after backoff.
    Unavailable(String),
    /// Wire-format decode failure.
    Codec(String),
    /// The cluster or a component was asked to do something while shutting
    /// down.
    ShuttingDown,
    /// Catch-all for internal invariant violations; carries a description.
    Internal(String),
    /// Per-tenant admission control rejected the request *before
    /// executing it* (token bucket empty, or a fairness denial under
    /// memory pressure). Definitive and retryable: the server did NOT
    /// apply the operation, so the caller should back off for roughly
    /// `retry_after_ms` and resend.
    Throttled {
        /// Suggested backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant's hard memory quota would be exceeded by this
    /// allocation. Fatal: retrying cannot succeed until the tenant
    /// frees memory or its quota is raised.
    QuotaExceeded {
        /// Raw id of the over-quota tenant.
        tenant: u64,
        /// The configured quota in bytes.
        quota_bytes: u64,
        /// Bytes the tenant would hold after the rejected allocation.
        requested_bytes: u64,
    },
}

impl JiffyError {
    /// A retryable outage of controller shard `idx` — its slot is dark
    /// between a crash and recovery. Minted here (not at the call site)
    /// because `Unavailable` drives `is_transport()` retry semantics and
    /// may only be constructed by the transport layer: a dark shard must
    /// look exactly like an unreachable peer to clients, so their
    /// existing retry/backoff path rides through the restart.
    pub fn shard_unavailable(idx: u32) -> Self {
        Self::Unavailable(format!("controller shard {idx}"))
    }
}

impl fmt::Display for JiffyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PathNotFound(p) => write!(f, "path not found: {p}"),
            Self::PathExists(p) => write!(f, "path already exists: {p}"),
            Self::UnknownJob(id) => write!(f, "unknown job: job-{id}"),
            Self::UnknownBlock(id) => write!(f, "unknown block: blk-{id}"),
            Self::UnknownServer(id) => write!(f, "unknown server: srv-{id}"),
            Self::OutOfBlocks => write!(f, "no free blocks available"),
            Self::WrongDataStructure { expected, found } => {
                write!(
                    f,
                    "wrong data structure: expected {expected}, found {found}"
                )
            }
            Self::BlockFull {
                capacity,
                requested,
            } => write!(
                f,
                "block full: capacity {capacity} bytes, requested {requested} more"
            ),
            Self::LeaseExpired(p) => write!(f, "lease expired for prefix: {p}"),
            Self::PermissionDenied(p) => write!(f, "permission denied on: {p}"),
            Self::QueueFull => write!(f, "queue is at max_queue_length"),
            Self::OutOfRange { offset, len } => {
                write!(f, "offset {offset} out of range (len {len})")
            }
            Self::StaleMetadata => write!(f, "stale partition metadata; refresh and retry"),
            Self::BlockMoved {
                block,
                server,
                addr,
            } => write!(f, "block moved: now blk-{block} on srv-{server} at {addr}"),
            Self::PersistentObjectMissing(p) => {
                write!(f, "persistent object missing: {p}")
            }
            Self::Rpc(msg) => write!(f, "rpc error: {msg}"),
            Self::Timeout { after_ms } => write!(f, "rpc timed out after {after_ms} ms"),
            Self::Unavailable(peer) => write!(f, "peer unavailable: {peer}"),
            Self::Codec(msg) => write!(f, "codec error: {msg}"),
            Self::ShuttingDown => write!(f, "component is shutting down"),
            Self::Internal(msg) => write!(f, "internal error: {msg}"),
            Self::Throttled { retry_after_ms } => {
                write!(
                    f,
                    "throttled by admission control; retry after {retry_after_ms} ms"
                )
            }
            Self::QuotaExceeded {
                tenant,
                quota_bytes,
                requested_bytes,
            } => write!(
                f,
                "tenant-{tenant} over memory quota: {requested_bytes} bytes requested, \
                 quota {quota_bytes}"
            ),
        }
    }
}

impl std::error::Error for JiffyError {}

impl From<io::Error> for JiffyError {
    fn from(e: io::Error) -> Self {
        Self::Rpc(e.to_string())
    }
}

/// Coarse classification of a [`JiffyError`]: whether retrying the same
/// operation can ever succeed without outside intervention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Transient: the operation may succeed if retried, possibly after a
    /// backoff and/or a metadata refresh.
    Retryable,
    /// Permanent: retrying the identical operation will keep failing.
    Fatal,
}

impl JiffyError {
    /// Returns `true` if the error is transient and the operation may
    /// succeed if retried (possibly after refreshing cached metadata).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::StaleMetadata
                | Self::BlockMoved { .. }
                | Self::QueueFull
                | Self::Rpc(_)
                | Self::Timeout { .. }
                | Self::Unavailable(_)
                | Self::Throttled { .. }
        )
    }

    /// Returns `true` for transport-level faults (the request may have
    /// executed even though no response arrived), as opposed to errors
    /// the *server* returned. Transport faults are safe to retry with
    /// the same request id: the server's replay cache deduplicates.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            Self::Rpc(_) | Self::Timeout { .. } | Self::Unavailable(_)
        )
    }

    /// Classifies the error as [`ErrorClass::Retryable`] or
    /// [`ErrorClass::Fatal`].
    pub fn class(&self) -> ErrorClass {
        if self.is_retryable() {
            ErrorClass::Retryable
        } else {
            ErrorClass::Fatal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = JiffyError::PathNotFound("t1.t2".into());
        assert!(e.to_string().contains("t1.t2"));
        let e = JiffyError::BlockFull {
            capacity: 100,
            requested: 50,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("50"));
    }

    #[test]
    fn io_errors_convert_to_rpc() {
        let io = io::Error::new(io::ErrorKind::ConnectionReset, "peer gone");
        let e: JiffyError = io.into();
        assert!(matches!(e, JiffyError::Rpc(_)));
        assert!(e.to_string().contains("peer gone"));
    }

    #[test]
    fn retryability_classification() {
        assert!(JiffyError::StaleMetadata.is_retryable());
        // A moved-block redirect is retryable (at the new home) but NOT a
        // transport fault: the server definitively rejected the op.
        let moved = JiffyError::BlockMoved {
            block: 7,
            server: 2,
            addr: "inproc:9".into(),
        };
        assert!(moved.is_retryable());
        assert!(!moved.is_transport());
        assert!(JiffyError::QueueFull.is_retryable());
        assert!(JiffyError::Rpc("reset".into()).is_retryable());
        assert!(JiffyError::Timeout { after_ms: 500 }.is_retryable());
        assert!(JiffyError::Unavailable("srv-3".into()).is_retryable());
        assert!(!JiffyError::OutOfBlocks.is_retryable());
        assert!(!JiffyError::PathNotFound("x".into()).is_retryable());
        // Throttled is retryable (the bucket refills) but a hard quota
        // rejection is not: only freeing memory or raising the quota can
        // make the identical allocation succeed.
        assert!(JiffyError::Throttled { retry_after_ms: 5 }.is_retryable());
        assert!(!JiffyError::QuotaExceeded {
            tenant: 1,
            quota_bytes: 10,
            requested_bytes: 20,
        }
        .is_retryable());
    }

    #[test]
    fn transport_vs_server_errors() {
        // Transport faults: the op may have executed; same-id retry is safe.
        assert!(JiffyError::Timeout { after_ms: 1 }.is_transport());
        assert!(JiffyError::Unavailable("x".into()).is_transport());
        assert!(JiffyError::Rpc("reset".into()).is_transport());
        // Server-returned errors are definitive: the op did NOT apply.
        assert!(!JiffyError::StaleMetadata.is_transport());
        assert!(!JiffyError::QueueFull.is_transport());
        assert!(!JiffyError::OutOfBlocks.is_transport());
        // Throttling happens BEFORE execution, so it is server-definitive
        // (never "maybe executed") — retrying cannot double-apply.
        assert!(!JiffyError::Throttled { retry_after_ms: 1 }.is_transport());
    }

    #[test]
    fn class_matches_retryability() {
        assert_eq!(
            JiffyError::Unavailable("x".into()).class(),
            ErrorClass::Retryable
        );
        assert_eq!(
            JiffyError::Timeout { after_ms: 9 }.class(),
            ErrorClass::Retryable
        );
        assert_eq!(
            JiffyError::PermissionDenied("p".into()).class(),
            ErrorClass::Fatal
        );
    }
}
