//! Byte-size constants and human-readable formatting.

/// One kibibyte (1024 bytes).
pub const KB: usize = 1024;
/// One mebibyte.
pub const MB: usize = 1024 * KB;
/// One gibibyte.
pub const GB: usize = 1024 * MB;

/// Formats a byte count with a binary-unit suffix, e.g. `128.0 MB`.
///
/// Chooses the largest unit that keeps the mantissa >= 1; values below
/// 1 KB are printed as exact byte counts.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [(&str, u64); 3] = [("GB", GB as u64), ("MB", MB as u64), ("KB", KB as u64)];
    for (suffix, unit) in UNITS {
        if bytes >= unit {
            return format!("{:.1} {}", bytes as f64 / unit as f64, suffix);
        }
    }
    format!("{bytes} B")
}

/// Parses strings like `"128MB"`, `"4 KB"`, `"17"` (bytes) into a byte
/// count. Returns `None` for malformed input.
pub fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let split = s.find(|c: char| !c.is_ascii_digit() && c != '.')?;
    let (num, unit) = if split == 0 {
        return None;
    } else {
        s.split_at(split)
    };
    let value: f64 = num.trim().parse().ok()?;
    let mult = match unit.trim().to_ascii_uppercase().as_str() {
        "B" | "" => 1.0,
        "KB" | "K" | "KIB" => KB as f64,
        "MB" | "M" | "MIB" => MB as f64,
        "GB" | "G" | "GIB" => GB as f64,
        _ => return None,
    };
    Some((value * mult) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_each_unit() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KB");
        assert_eq!(fmt_bytes(128 * MB as u64), "128.0 MB");
        assert_eq!(fmt_bytes((2.5 * GB as f64) as u64), "2.5 GB");
    }

    #[test]
    fn parses_units_case_insensitively() {
        assert_eq!(parse_bytes("128MB"), Some(128 * MB));
        assert_eq!(parse_bytes("4 kb"), Some(4 * KB));
        assert_eq!(parse_bytes("1GiB"), Some(GB));
        assert_eq!(parse_bytes("0.5MB"), Some(MB / 2));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_bytes("MB"), None);
        assert_eq!(parse_bytes("12XB"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn parse_bare_number_is_bytes() {
        // A bare number has no unit character, which the splitter treats
        // as malformed only when there is no digit at all.
        assert_eq!(parse_bytes("42B"), Some(42));
    }

    #[test]
    fn format_parse_round_trip_on_unit_boundaries() {
        for b in [KB, MB, GB, 128 * MB] {
            assert_eq!(parse_bytes(&fmt_bytes(b as u64)), Some(b));
        }
    }
}
