//! Time abstraction shared by the production system and the simulator.
//!
//! Every Jiffy component that observes time (the lease manager, metrics,
//! the repartition latency tracker) does so through the [`Clock`] trait.
//! Production deployments use [`SystemClock`]; the discrete-event
//! simulator and the test suite use [`ManualClock`], which only advances
//! when explicitly told to. This is what lets a 5-hour Snowflake trace
//! replay in milliseconds while exercising the very same lease-expiry and
//! allocation code paths.

use jiffy_sync::atomic::{AtomicU64, Ordering};
use jiffy_sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic source of time, measured as a [`Duration`] since an
/// arbitrary epoch chosen by the implementation.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Returns the current time as an offset from the clock's epoch.
    fn now(&self) -> Duration;

    /// Returns the current time in whole microseconds since the epoch.
    fn now_micros(&self) -> u64 {
        self.now().as_micros() as u64
    }
}

/// Shared handle to a clock. All Jiffy components store this alias so a
/// single clock can be swapped in for an entire cluster.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-clock time based on [`Instant`]; epoch is the moment of
/// construction.
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a system clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Creates a shared handle to a fresh system clock.
    pub fn shared() -> SharedClock {
        Arc::new(Self::new())
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A clock that only moves when [`ManualClock::advance`] or
/// [`ManualClock::set`] is called.
///
/// Internally stores microseconds in an atomic so it can be shared across
/// threads (e.g. a lease-expiry worker thread observing simulated time).
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// Creates a manual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a shared handle, returning both the concrete handle (for
    /// advancing) and the trait-object view (for injection).
    pub fn shared() -> (Arc<Self>, SharedClock) {
        let c = Arc::new(Self::new());
        let as_clock: SharedClock = c.clone();
        (c, as_clock)
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.micros
            .fetch_add(d.as_micros() as u64, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute offset from its epoch.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time: the clock is
    /// monotonic by contract.
    pub fn set(&self, t: Duration) {
        let new = t.as_micros() as u64;
        let old = self.micros.swap(new, Ordering::SeqCst);
        assert!(new >= old, "ManualClock must not move backwards");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_micros(self.micros.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_starts_at_zero_and_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(250));
        c.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_millis(1250));
    }

    #[test]
    fn manual_clock_set_jumps_forward() {
        let c = ManualClock::new();
        c.set(Duration::from_secs(5));
        assert_eq!(c.now(), Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "must not move backwards")]
    fn manual_clock_rejects_backwards_set() {
        let c = ManualClock::new();
        c.set(Duration::from_secs(5));
        c.set(Duration::from_secs(4));
    }

    #[test]
    fn shared_view_observes_advances() {
        let (concrete, shared) = ManualClock::shared();
        concrete.advance(Duration::from_micros(42));
        assert_eq!(shared.now_micros(), 42);
    }

    #[test]
    fn manual_clock_is_shared_across_threads() {
        let (concrete, shared) = ManualClock::shared();
        let t = std::thread::spawn(move || {
            for _ in 0..1000 {
                concrete.advance(Duration::from_micros(1));
            }
        });
        t.join().unwrap();
        assert_eq!(shared.now_micros(), 1000);
    }
}
