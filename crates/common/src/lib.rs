//! Shared foundation types for the Jiffy elastic far-memory system.
//!
//! This crate holds the vocabulary used by every other Jiffy crate:
//!
//! - [`id`] — strongly-typed identifiers (jobs, blocks, memory servers).
//! - [`error`] — the [`JiffyError`] error type and [`Result`] alias.
//! - [`clock`] — the [`Clock`] abstraction that lets the production system
//!   run on wall-clock time while the discrete-event simulator replays
//!   hours of trace in milliseconds of real time.
//! - [`config`] — system-wide tunables (block size, lease duration,
//!   repartition thresholds) with the paper's defaults.
//! - [`size`] — byte-size helpers (`KB`/`MB`/`GB` constants, formatting).
//!
//! [`JiffyError`]: error::JiffyError
//! [`Result`]: error::Result
//! [`Clock`]: clock::Clock

pub mod clock;
pub mod config;
pub mod error;
pub mod id;
pub mod size;

pub use clock::{Clock, ManualClock, SystemClock};
pub use config::{
    call_timeout, rpc_client_reactors, rpc_egress_cap, rpc_inbox_limit, rpc_workers,
    set_call_timeout, set_rpc_egress_cap, set_rpc_inbox_limit, set_rpc_workers, JiffyConfig,
    QosConfig, DEFAULT_CALL_TIMEOUT,
};
pub use error::{JiffyError, Result};
pub use id::{BlockId, JobId, ServerId, TenantId};
