//! Strongly-typed identifiers used across the control and data planes.
//!
//! Jiffy's controller tracks three kinds of entities: jobs (which own
//! address hierarchies), memory blocks (the allocation unit), and memory
//! servers (which host blocks). Using newtypes rather than bare integers
//! prevents an entire class of cross-plane mix-ups at compile time.

use jiffy_sync::atomic::{AtomicU64, Ordering};
use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric value of this identifier.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Uniquely identifies a registered job (and therefore one address
    /// hierarchy at the controller).
    JobId,
    "job-"
);

define_id!(
    /// Uniquely identifies a fixed-size memory block across the whole
    /// cluster. Block IDs are allocated by the controller and never reused
    /// within a controller's lifetime.
    BlockId,
    "blk-"
);

define_id!(
    /// Uniquely identifies a memory server at the data plane.
    ServerId,
    "srv-"
);

define_id!(
    /// Identifies the tenant on whose behalf a request is issued. Flows
    /// inside every RPC envelope so both planes can meter, quota and
    /// throttle per tenant (DESIGN.md §14).
    TenantId,
    "tenant-"
);

impl TenantId {
    /// The default tenant for unattributed traffic (internal RPCs,
    /// legacy clients). The anonymous tenant is exempt from admission
    /// control: chain replication and repartition transfers must never
    /// be throttled mid-flight.
    pub const ANONYMOUS: TenantId = TenantId(0);

    /// Whether this is the anonymous (unattributed) tenant.
    pub const fn is_anonymous(self) -> bool {
        self.0 == Self::ANONYMOUS.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        Self::ANONYMOUS
    }
}

/// A monotonically increasing generator for any of the ID newtypes.
///
/// The controller owns one generator per ID kind; IDs therefore never
/// collide within a controller's lifetime. A *strided* generator (see
/// [`IdGen::strided`]) issues only values in one residue class, so N
/// controller shards minting from disjoint classes never collide with
/// each other either — and `id % N` recovers the owning shard.
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
    /// Increment per issued id. Zero (the `Default`) behaves as one, so
    /// the derived default matches [`IdGen::new`].
    step: AtomicU64,
}

impl IdGen {
    /// Creates a generator whose first issued value is `0`.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
            step: AtomicU64::new(1),
        }
    }

    /// Creates a generator whose first issued value is `start`.
    pub const fn starting_at(start: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
            step: AtomicU64::new(1),
        }
    }

    /// Creates a generator issuing `start, start + step, start + 2·step,
    /// ...` — ids stay in the residue class `start mod step`, which is
    /// how controller shards partition one id space without
    /// coordination.
    pub const fn strided(start: u64, step: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
            step: AtomicU64::new(step),
        }
    }

    /// Issues the next raw ID value.
    pub fn next_raw(&self) -> u64 {
        let step = self.step.load(Ordering::Relaxed).max(1);
        self.next.fetch_add(step, Ordering::Relaxed)
    }

    /// Issues the next ID converted into the requested newtype.
    pub fn next_id<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }

    /// The value the next call to [`next_raw`](Self::next_raw) would
    /// issue. Used to checkpoint a generator into a snapshot.
    pub fn current(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Advances the generator so it never issues a value below `floor`.
    /// No-op if the generator is already past it.
    pub fn bump_to(&self, floor: u64) {
        self.next.fetch_max(floor, Ordering::Relaxed);
    }

    /// Converts this generator into a strided one issuing ids ≡ `index`
    /// (mod `count`), advancing the frontier to the smallest value of
    /// that class not below the current frontier. Installing the same
    /// stride on a generator recovered from a checkpoint is a no-op on
    /// the frontier (checkpointed frontiers are already in class).
    pub fn set_stride(&self, index: u64, count: u64) {
        let count = count.max(1);
        let cur = self.next.load(Ordering::Relaxed);
        let aligned = if cur % count <= index {
            cur - (cur % count) + index
        } else {
            cur - (cur % count) + index + count
        };
        self.next.fetch_max(aligned, Ordering::Relaxed);
        self.step.store(count, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(BlockId(0).to_string(), "blk-0");
        assert_eq!(ServerId(42).to_string(), "srv-42");
        assert_eq!(TenantId(3).to_string(), "tenant-3");
    }

    #[test]
    fn anonymous_tenant_is_the_default() {
        assert_eq!(TenantId::default(), TenantId::ANONYMOUS);
        assert!(TenantId::ANONYMOUS.is_anonymous());
        assert!(!TenantId(1).is_anonymous());
    }

    #[test]
    fn raw_round_trips() {
        let id = BlockId::from(123);
        assert_eq!(id.raw(), 123);
    }

    #[test]
    fn idgen_is_monotonic_and_unique() {
        let g = IdGen::new();
        let ids: Vec<u64> = (0..1000).map(|_| g.next_raw()).collect();
        let set: HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len());
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn idgen_starting_at_offsets_first_value() {
        let g = IdGen::starting_at(10);
        assert_eq!(g.next_raw(), 10);
        assert_eq!(g.next_raw(), 11);
    }

    #[test]
    fn idgen_is_thread_safe() {
        let g = jiffy_sync::Arc::new(IdGen::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..250).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let set: HashSet<u64> = all.iter().copied().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn strided_idgen_stays_in_residue_class() {
        let g = IdGen::strided(2, 4);
        let ids: Vec<u64> = (0..16).map(|_| g.next_raw()).collect();
        assert_eq!(ids[0], 2);
        assert!(ids.iter().all(|v| v % 4 == 2));
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 4));
    }

    #[test]
    fn set_stride_aligns_frontier_up_into_class() {
        // Frontier 6, class 1 mod 4 → next aligned value is 9.
        let g = IdGen::starting_at(6);
        g.set_stride(1, 4);
        assert_eq!(g.next_raw(), 9);
        assert_eq!(g.next_raw(), 13);
        // Frontier 4, class 1 mod 4 → rounds up within the block to 5.
        let g = IdGen::starting_at(4);
        g.set_stride(1, 4);
        assert_eq!(g.next_raw(), 5);
        // A frontier already in class is untouched (checkpoint resume).
        let g = IdGen::starting_at(13);
        g.set_stride(1, 4);
        assert_eq!(g.next_raw(), 13);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(BlockId(1) < BlockId(2));
        assert!(JobId(0) < JobId(u64::MAX));
    }
}
