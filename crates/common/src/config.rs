//! System-wide configuration with the paper's default parameters.

use std::time::Duration;

use jiffy_sync::atomic::{AtomicU64, Ordering};
use serde::{Deserialize, Serialize};

use crate::size::MB;

/// Default deadline for one RPC request/response round trip.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Cached call-timeout override in milliseconds; 0 means "not yet
/// resolved" (the first [`call_timeout`] reads the environment).
static CALL_TIMEOUT_MS: AtomicU64 = AtomicU64::new(0);

/// The RPC round-trip deadline: [`DEFAULT_CALL_TIMEOUT`] unless
/// overridden by the `JIFFY_CALL_TIMEOUT_MS` environment variable (read
/// once, then cached) or programmatically via [`set_call_timeout`].
///
/// Chaos and slow-CI runs lower this so dropped replies fail fast
/// instead of riding the edge of the 10 s default.
pub fn call_timeout() -> Duration {
    let cached = CALL_TIMEOUT_MS.load(Ordering::Relaxed);
    if cached != 0 {
        return Duration::from_millis(cached);
    }
    let ms = std::env::var("JIFFY_CALL_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_CALL_TIMEOUT.as_millis() as u64);
    CALL_TIMEOUT_MS.store(ms, Ordering::Relaxed);
    Duration::from_millis(ms)
}

/// Overrides the RPC call timeout process-wide. Preferred over setting
/// the environment variable from tests (`set_var` is racy once threads
/// exist); sub-millisecond durations round up to 1 ms.
pub fn set_call_timeout(timeout: Duration) {
    CALL_TIMEOUT_MS.store((timeout.as_millis() as u64).max(1), Ordering::Relaxed);
}

/// Resolves a cached `u64` knob: the atomic holds the value once known,
/// `0` meaning "not yet resolved" (first call reads `env_var`, falling
/// back to `default`). All the reactor knobs below share this shape with
/// [`call_timeout`].
fn cached_env_u64(cell: &AtomicU64, env_var: &str, default: u64) -> u64 {
    let cached = cell.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let v = std::env::var(env_var)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default);
    cell.store(v, Ordering::Relaxed);
    v
}

static RPC_WORKERS: AtomicU64 = AtomicU64::new(0);
static RPC_INBOX_LIMIT: AtomicU64 = AtomicU64::new(0);
static RPC_EGRESS_CAP: AtomicU64 = AtomicU64::new(0);
static RPC_CLIENT_REACTORS: AtomicU64 = AtomicU64::new(0);

/// Size of the fixed worker pool behind each TCP server's reactor
/// (request execution happens on these threads, never on the reactor
/// thread). Default: the machine's available parallelism clamped to
/// `[2, 8]`; override with `JIFFY_RPC_WORKERS` (read once, then cached)
/// or [`set_rpc_workers`].
pub fn rpc_workers() -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8) as u64;
    cached_env_u64(&RPC_WORKERS, "JIFFY_RPC_WORKERS", default) as usize
}

/// Overrides the server worker-pool size process-wide (existing servers
/// keep the pool they started with; new `serve_tcp` calls see the new
/// value). Values round up to 1.
pub fn set_rpc_workers(n: usize) {
    RPC_WORKERS.store((n as u64).max(1), Ordering::Relaxed);
}

/// Per-session ingress backlog: how many decoded-but-unexecuted request
/// frames one session may queue before the reactor stops reading its
/// socket (backpressure propagates to the peer through TCP flow
/// control). Default 256; override with `JIFFY_RPC_INBOX_LIMIT` or
/// [`set_rpc_inbox_limit`].
pub fn rpc_inbox_limit() -> usize {
    cached_env_u64(&RPC_INBOX_LIMIT, "JIFFY_RPC_INBOX_LIMIT", 256) as usize
}

/// Overrides the per-session ingress backlog process-wide. Values round
/// up to 1.
pub fn set_rpc_inbox_limit(n: usize) {
    RPC_INBOX_LIMIT.store((n as u64).max(1), Ordering::Relaxed);
}

/// Per-socket egress-queue cap in bytes: senders whose peer stops
/// draining block once this many encoded-but-unsent bytes are queued
/// (a single frame larger than the cap is always admitted into an empty
/// queue, so `MAX_FRAME_LEN` frames still pass). Default 8 MiB; override
/// with `JIFFY_RPC_EGRESS_CAP_BYTES` or [`set_rpc_egress_cap`].
pub fn rpc_egress_cap() -> usize {
    cached_env_u64(
        &RPC_EGRESS_CAP,
        "JIFFY_RPC_EGRESS_CAP_BYTES",
        8 * 1024 * 1024,
    ) as usize
}

/// Overrides the egress cap process-wide. Values round up to 1.
pub fn set_rpc_egress_cap(bytes: usize) {
    RPC_EGRESS_CAP.store((bytes as u64).max(1), Ordering::Relaxed);
}

/// Number of shared client-side reactor threads demultiplexing *all*
/// outbound TCP connections of this process (connections are assigned
/// round-robin at dial time). Default: available parallelism / 4 clamped
/// to `[1, 4]`; override with `JIFFY_CLIENT_REACTORS`. Read once at the
/// first dial — there is no setter, because resizing a live pool would
/// strand registered connections.
pub fn rpc_client_reactors() -> usize {
    let default = (std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        / 4)
    .clamp(1, 4) as u64;
    cached_env_u64(&RPC_CLIENT_REACTORS, "JIFFY_CLIENT_REACTORS", default) as usize
}

/// Tunable parameters of a Jiffy deployment.
///
/// Defaults follow §6 of the paper: 128 MB blocks, 1 s lease duration,
/// 5 % / 95 % low/high repartition thresholds. Tests and the simulator
/// shrink the block size so experiments fit on one machine; the
/// sensitivity harness (Fig. 14) sweeps each parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JiffyConfig {
    /// Capacity of every memory block in bytes (paper default: 128 MB).
    pub block_size: usize,
    /// How long a lease lives without renewal (paper default: 1 s).
    pub lease_duration: Duration,
    /// How often the expiry worker scans the address hierarchies.
    pub lease_scan_interval: Duration,
    /// Fraction of block capacity above which the block signals overload
    /// and triggers a split (paper default: 0.95).
    pub high_threshold: f64,
    /// Fraction of block capacity below which the block becomes a merge
    /// candidate (paper default: 0.05).
    pub low_threshold: f64,
    /// Number of hash slots in the KV-store keyspace (paper default: 1024).
    pub kv_hash_slots: u32,
    /// Replication chain length for blocks that request fault tolerance
    /// (1 = no replication).
    pub chain_length: usize,
    /// How often each memory server heartbeats the controller.
    pub heartbeat_interval: Duration,
    /// The controller's failure detector marks a server dead once this
    /// much time passes without a heartbeat from it.
    pub heartbeat_timeout: Duration,
    /// How often the controller's elasticity worker runs the failure
    /// detector and the autoscaler.
    pub elasticity_interval: Duration,
    /// Low free-block watermark: when the fraction of free blocks across
    /// alive servers drops below this, the autoscaler requests a new
    /// server from the pluggable `ServerProvider`.
    pub scale_up_free_fraction: f64,
    /// High free-block watermark: when the fraction of free blocks rises
    /// above this (and the pool is above its minimum size), the
    /// autoscaler drains the emptiest server and releases it.
    pub scale_down_free_fraction: f64,
    /// The controller writes a metadata snapshot (and truncates the
    /// journal) after this many journal records. 0 disables snapshots:
    /// recovery then replays the whole journal.
    pub meta_snapshot_every: u64,
    /// Multi-tenant QoS: quotas, weighted-fair allocation and data-plane
    /// admission control (DESIGN.md §14). Disabled by default so
    /// single-tenant deployments behave exactly as before.
    pub qos: QosConfig,
}

/// Multi-tenant QoS parameters (DESIGN.md §14). The `default_*` fields
/// apply to every tenant without an explicit override (set at runtime
/// through `SetTenantShare` / `JiffyCluster::set_tenant_share`).
///
/// A rate or quota of `0` means "unlimited" for that dimension. The
/// anonymous tenant (internal RPCs, replication fan-down) is always
/// exempt from admission control.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosConfig {
    /// Master switch. When false, all tenant traffic is treated
    /// identically (the pre-QoS behavior).
    pub enabled: bool,
    /// Weighted-fair share for tenants without an override (relative
    /// weight; must be >= 1 when QoS is enabled).
    pub default_share: u32,
    /// Hard memory cap in bytes for tenants without an override
    /// (enforced at block allocation); 0 = unlimited.
    pub default_quota_bytes: u64,
    /// Data-plane op-rate limit for tenants without an override; 0 =
    /// unlimited.
    pub default_ops_per_sec: u64,
    /// Data-plane byte-rate limit (request payload plus response/egress
    /// bytes) for tenants without an override; 0 = unlimited.
    pub default_bytes_per_sec: u64,
    /// Token-bucket burst capacity as a multiple of the per-second rate
    /// (a bucket holds `rate * burst_factor` tokens when full).
    pub burst_factor: f64,
    /// Weighted-fair arbitration of block allocations kicks in once the
    /// cluster's free-block fraction drops below this watermark; above
    /// it, any under-quota allocation is granted first-come-first-served.
    pub pressure_free_fraction: f64,
}

impl Default for QosConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            default_share: 1,
            default_quota_bytes: 0,
            default_ops_per_sec: 0,
            default_bytes_per_sec: 0,
            burst_factor: 2.0,
            pressure_free_fraction: 0.25,
        }
    }
}

impl QosConfig {
    /// An enabled config with the given default per-tenant rate limits
    /// (0 = unlimited for either dimension).
    pub fn enabled_with_rates(ops_per_sec: u64, bytes_per_sec: u64) -> Self {
        Self {
            enabled: true,
            default_ops_per_sec: ops_per_sec,
            default_bytes_per_sec: bytes_per_sec,
            ..Self::default()
        }
    }

    /// Builder-style override of the default hard memory quota.
    pub fn with_quota_bytes(mut self, bytes: u64) -> Self {
        self.default_quota_bytes = bytes;
        self
    }

    /// Builder-style override of the fairness pressure watermark.
    pub fn with_pressure_free_fraction(mut self, f: f64) -> Self {
        self.pressure_free_fraction = f;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> crate::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.default_share == 0 {
            return Err(crate::JiffyError::Internal(
                "qos.default_share must be >= 1 when QoS is enabled".into(),
            ));
        }
        if !self.burst_factor.is_finite() || self.burst_factor < 1.0 {
            return Err(crate::JiffyError::Internal(format!(
                "qos.burst_factor must be finite and >= 1.0, got {}",
                self.burst_factor
            )));
        }
        if !(0.0..=1.0).contains(&self.pressure_free_fraction) {
            return Err(crate::JiffyError::Internal(format!(
                "qos.pressure_free_fraction must be in [0, 1], got {}",
                self.pressure_free_fraction
            )));
        }
        Ok(())
    }
}

impl Default for JiffyConfig {
    fn default() -> Self {
        Self {
            block_size: 128 * MB,
            lease_duration: Duration::from_secs(1),
            lease_scan_interval: Duration::from_millis(100),
            high_threshold: 0.95,
            low_threshold: 0.05,
            kv_hash_slots: 1024,
            chain_length: 1,
            heartbeat_interval: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_secs(5),
            elasticity_interval: Duration::from_secs(1),
            scale_up_free_fraction: 0.1,
            scale_down_free_fraction: 0.6,
            meta_snapshot_every: 256,
            qos: QosConfig::default(),
        }
    }
}

impl JiffyConfig {
    /// A configuration with small (64 KB) blocks suitable for unit and
    /// integration tests on a single machine.
    pub fn for_testing() -> Self {
        Self {
            block_size: 64 * 1024,
            lease_duration: Duration::from_secs(1),
            lease_scan_interval: Duration::from_millis(20),
            heartbeat_interval: Duration::from_millis(20),
            heartbeat_timeout: Duration::from_millis(100),
            elasticity_interval: Duration::from_millis(20),
            meta_snapshot_every: 32,
            ..Self::default()
        }
    }

    /// Builder-style override of the journal-records-per-snapshot
    /// threshold (0 disables snapshots).
    pub fn with_meta_snapshot_every(mut self, records: u64) -> Self {
        self.meta_snapshot_every = records;
        self
    }

    /// Builder-style override of the heartbeat interval and the failure
    /// detector's timeout.
    pub fn with_heartbeats(mut self, interval: Duration, timeout: Duration) -> Self {
        self.heartbeat_interval = interval;
        self.heartbeat_timeout = timeout;
        self
    }

    /// Builder-style override of the autoscaler's free-block watermarks:
    /// scale up when the free fraction drops below `up_below`, scale
    /// down when it rises above `down_above`.
    pub fn with_scale_watermarks(mut self, up_below: f64, down_above: f64) -> Self {
        self.scale_up_free_fraction = up_below;
        self.scale_down_free_fraction = down_above;
        self
    }

    /// Builder-style override of the block size.
    pub fn with_block_size(mut self, bytes: usize) -> Self {
        self.block_size = bytes;
        self
    }

    /// Builder-style override of the lease duration.
    pub fn with_lease_duration(mut self, d: Duration) -> Self {
        self.lease_duration = d;
        self
    }

    /// Builder-style override of the repartition thresholds.
    pub fn with_thresholds(mut self, low: f64, high: f64) -> Self {
        self.low_threshold = low;
        self.high_threshold = high;
        self
    }

    /// Builder-style override of the replication chain length.
    pub fn with_chain_length(mut self, n: usize) -> Self {
        self.chain_length = n;
        self
    }

    /// Builder-style override of the multi-tenant QoS section.
    pub fn with_qos(mut self, qos: QosConfig) -> Self {
        self.qos = qos;
        self
    }

    /// Validates internal consistency (thresholds ordered and in `[0, 1]`,
    /// non-zero block size, chain length at least 1).
    pub fn validate(&self) -> crate::Result<()> {
        if self.block_size == 0 {
            return Err(crate::JiffyError::Internal("block_size must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.low_threshold)
            || !(0.0..=1.0).contains(&self.high_threshold)
            || self.low_threshold >= self.high_threshold
        {
            return Err(crate::JiffyError::Internal(format!(
                "invalid thresholds: low={} high={}",
                self.low_threshold, self.high_threshold
            )));
        }
        if self.chain_length == 0 {
            return Err(crate::JiffyError::Internal(
                "chain_length must be >= 1".into(),
            ));
        }
        if self.kv_hash_slots == 0 {
            return Err(crate::JiffyError::Internal(
                "kv_hash_slots must be >= 1".into(),
            ));
        }
        if self.heartbeat_timeout <= self.heartbeat_interval {
            return Err(crate::JiffyError::Internal(format!(
                "heartbeat_timeout ({:?}) must exceed heartbeat_interval ({:?})",
                self.heartbeat_timeout, self.heartbeat_interval
            )));
        }
        if !(0.0..=1.0).contains(&self.scale_up_free_fraction)
            || !(0.0..=1.0).contains(&self.scale_down_free_fraction)
            || self.scale_up_free_fraction >= self.scale_down_free_fraction
        {
            return Err(crate::JiffyError::Internal(format!(
                "invalid scale watermarks: up_below={} down_above={}",
                self.scale_up_free_fraction, self.scale_down_free_fraction
            )));
        }
        self.qos.validate()?;
        Ok(())
    }

    /// Bytes above which a block is considered overloaded.
    pub fn high_watermark(&self) -> usize {
        (self.block_size as f64 * self.high_threshold) as usize
    }

    /// Bytes below which a block is considered underloaded.
    pub fn low_watermark(&self) -> usize {
        (self.block_size as f64 * self.low_threshold) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = JiffyConfig::default();
        assert_eq!(c.block_size, 128 * MB);
        assert_eq!(c.lease_duration, Duration::from_secs(1));
        assert_eq!(c.high_threshold, 0.95);
        assert_eq!(c.low_threshold, 0.05);
        assert_eq!(c.kv_hash_slots, 1024);
        c.validate().unwrap();
    }

    #[test]
    fn watermarks_scale_with_block_size() {
        let c = JiffyConfig::default().with_block_size(1000);
        assert_eq!(c.high_watermark(), 950);
        assert_eq!(c.low_watermark(), 50);
    }

    #[test]
    fn validate_rejects_inverted_thresholds() {
        let c = JiffyConfig::default().with_thresholds(0.9, 0.1);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_block() {
        let c = JiffyConfig::default().with_block_size(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_chain() {
        let c = JiffyConfig::default().with_chain_length(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_heartbeats_and_watermarks() {
        let c =
            JiffyConfig::default().with_heartbeats(Duration::from_secs(5), Duration::from_secs(1));
        assert!(c.validate().is_err());
        let c = JiffyConfig::default().with_scale_watermarks(0.7, 0.2);
        assert!(c.validate().is_err());
        let c = JiffyConfig::for_testing()
            .with_heartbeats(Duration::from_millis(10), Duration::from_millis(50))
            .with_scale_watermarks(0.2, 0.8);
        c.validate().unwrap();
    }

    #[test]
    fn call_timeout_defaults_and_overrides() {
        // First read resolves from the environment and caches the
        // default; the programmatic override wins afterwards.
        if std::env::var("JIFFY_CALL_TIMEOUT_MS").is_err() {
            assert_eq!(call_timeout(), DEFAULT_CALL_TIMEOUT);
        }
        set_call_timeout(Duration::from_millis(250));
        assert_eq!(call_timeout(), Duration::from_millis(250));
        set_call_timeout(Duration::from_micros(10));
        assert_eq!(call_timeout(), Duration::from_millis(1));
        set_call_timeout(DEFAULT_CALL_TIMEOUT);
    }

    #[test]
    fn qos_defaults_off_and_validates() {
        let c = JiffyConfig::default();
        assert!(!c.qos.enabled);
        c.validate().unwrap();
        let c = c.with_qos(QosConfig::enabled_with_rates(100, 0).with_quota_bytes(1 << 20));
        assert!(c.qos.enabled);
        assert_eq!(c.qos.default_ops_per_sec, 100);
        c.validate().unwrap();
        // Enabled configs reject nonsense parameters.
        let mut bad = QosConfig::enabled_with_rates(10, 10);
        bad.default_share = 0;
        assert!(JiffyConfig::default().with_qos(bad).validate().is_err());
        let mut bad = QosConfig::enabled_with_rates(10, 10);
        bad.burst_factor = 0.5;
        assert!(JiffyConfig::default().with_qos(bad).validate().is_err());
        let bad = QosConfig::enabled_with_rates(10, 10).with_pressure_free_fraction(1.5);
        assert!(JiffyConfig::default().with_qos(bad).validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = JiffyConfig::for_testing()
            .with_lease_duration(Duration::from_millis(100))
            .with_thresholds(0.1, 0.8)
            .with_chain_length(3);
        assert_eq!(c.lease_duration, Duration::from_millis(100));
        assert_eq!(c.low_threshold, 0.1);
        assert_eq!(c.chain_length, 3);
        c.validate().unwrap();
    }
}
