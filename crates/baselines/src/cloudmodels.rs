//! Latency/throughput models for the six systems of Fig. 10.
//!
//! These are calibrated to the paper's own Fig. 10 curves (measured from
//! an AWS Lambda client with pipelining disabled), reusing the tier
//! models in [`jiffy_persistent::tiers`]. Jiffy itself is *measured*
//! (in-process data path + modeled datacenter RTT) by the
//! `fig10_sixsystems` harness; its model here provides the comparison
//! line and a cross-check.

use std::time::Duration;

use jiffy_persistent::tiers;
use jiffy_persistent::CostModel;

/// One compared system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// Amazon S3 (persistent object store).
    S3,
    /// DynamoDB (persistent KV; 128 KB object cap in the paper's runs).
    DynamoDb,
    /// Apache Crail (in-memory, RDMA-oriented).
    Crail,
    /// Amazon ElastiCache (in-memory Redis).
    Elasticache,
    /// Pocket's DRAM tier.
    Pocket,
    /// Jiffy.
    Jiffy,
}

impl System {
    /// All six, in the paper's legend order.
    pub const ALL: [System; 6] = [
        System::S3,
        System::DynamoDb,
        System::Crail,
        System::Elasticache,
        System::Pocket,
        System::Jiffy,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::S3 => "S3",
            Self::DynamoDb => "DynamoDB",
            Self::Crail => "Apache Crail",
            Self::Elasticache => "ElastiCache",
            Self::Pocket => "Pocket",
            Self::Jiffy => "Jiffy",
        }
    }

    /// Read-path cost model.
    pub fn read_model(&self) -> CostModel {
        match self {
            Self::S3 => tiers::s3_read(),
            Self::DynamoDb => tiers::dynamodb_read(),
            // In-memory systems differ mainly in RPC overhead: Crail's
            // is the leanest; Redis adds protocol parsing; Pocket sits
            // between; Jiffy's optimized framed RPC matches Crail's
            // ballpark (paper: "Jiffy matches state-of-the-art stores").
            Self::Crail => CostModel::new(Duration::from_micros(130), 1150.0),
            Self::Elasticache => CostModel::new(Duration::from_micros(230), 1000.0),
            Self::Pocket => CostModel::new(Duration::from_micros(180), 1100.0),
            Self::Jiffy => CostModel::new(Duration::from_micros(140), 1150.0),
        }
    }

    /// Write-path cost model.
    pub fn write_model(&self) -> CostModel {
        match self {
            Self::S3 => tiers::s3_write(),
            Self::DynamoDb => tiers::dynamodb_write(),
            Self::Crail => CostModel::new(Duration::from_micros(140), 1100.0),
            Self::Elasticache => CostModel::new(Duration::from_micros(240), 950.0),
            Self::Pocket => CostModel::new(Duration::from_micros(190), 1050.0),
            Self::Jiffy => CostModel::new(Duration::from_micros(150), 1100.0),
        }
    }

    /// Largest object the system accepts (Fig. 10 stops DynamoDB's
    /// curve at 128 KB).
    pub fn max_object(&self) -> Option<u64> {
        match self {
            Self::DynamoDb => Some(tiers::DYNAMODB_MAX_OBJECT),
            _ => None,
        }
    }

    /// Whether the system serves from DRAM (sub-millisecond band in
    /// Fig. 10a).
    pub fn is_in_memory(&self) -> bool {
        matches!(
            self,
            Self::Crail | Self::Elasticache | Self::Pocket | Self::Jiffy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_small_object_bands() {
        // Paper Fig. 10(a): in-memory stores sub-ms, persistent stores
        // ≥ millisecond for 8 B objects.
        for sys in System::ALL {
            let lat = sys.read_model().cost(8);
            if sys.is_in_memory() {
                assert!(lat < Duration::from_millis(1), "{}: {lat:?}", sys.name());
            } else {
                assert!(lat >= Duration::from_millis(1), "{}: {lat:?}", sys.name());
            }
        }
    }

    #[test]
    fn fig10_ordering_matches_the_paper() {
        // Jiffy ≲ Crail < Pocket < ElastiCache ≪ DynamoDB < S3 for
        // small-object reads.
        let lat = |s: System| s.read_model().cost(128);
        assert!(lat(System::Jiffy) <= lat(System::Pocket));
        assert!(lat(System::Pocket) < lat(System::Elasticache));
        assert!(lat(System::Elasticache) < lat(System::DynamoDb));
        assert!(lat(System::DynamoDb) < lat(System::S3));
    }

    #[test]
    fn large_objects_converge_on_bandwidth() {
        // Fig. 10(b): at 128 MB all in-memory systems reach ~1 GB/s-
        // class throughput (tens of MBPS on the paper's per-op plot is
        // single-threaded without pipelining; our model reports the
        // effective single-stream rate).
        for sys in [System::Jiffy, System::Pocket, System::Crail] {
            let mbps = sys.read_model().effective_mbps(128 << 20);
            assert!(mbps > 800.0, "{}: {mbps}", sys.name());
        }
        let s3 = System::S3.read_model().effective_mbps(128 << 20);
        assert!(s3 < 100.0);
    }

    #[test]
    fn dynamodb_caps_object_size() {
        assert_eq!(System::DynamoDb.max_object(), Some(128 * 1024));
        assert_eq!(System::Jiffy.max_object(), None);
    }
}
