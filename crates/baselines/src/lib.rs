//! Comparator systems for the Jiffy evaluation.
//!
//! Fig. 9 compares three *allocation policies* over identical hardware:
//! ElastiCache-style static provisioning, Pocket-style job-granularity
//! reservation, and Jiffy's block-granularity multiplexing. The paper
//! runs the real systems; we reimplement each policy as a deterministic
//! state machine over virtual time ([`policy`]) and let the
//! discrete-event simulator drive all three with the same trace.
//!
//! Fig. 10 compares service latencies of six storage systems from a
//! Lambda client. Five of them are cloud services we cannot call from
//! this environment; [`cloudmodels`] provides latency/throughput models
//! calibrated to the paper's own measurements (and Jiffy is measured
//! for real by the benchmark harness, with the model kept alongside for
//! cross-checking).

pub mod cloudmodels;
pub mod policy;

pub use policy::{AllocationPolicy, ElasticachePolicy, JiffyPolicy, Placement, PocketPolicy, Tier};
