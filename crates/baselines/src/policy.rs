//! Allocation policies compared in Fig. 9, as deterministic state
//! machines over virtual time.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Where intermediate bytes landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The far-memory DRAM pool.
    Dram,
    /// The flash spill tier (Pocket, Jiffy overflow).
    Ssd,
    /// S3 (ElastiCache overflow, lease-expiry flush target).
    S3,
}

/// How an acquisition was satisfied: `dram` bytes in memory, `spill`
/// bytes on the policy's spill tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Placement {
    /// Bytes granted in DRAM.
    pub dram: u64,
    /// Bytes that overflowed to the spill tier.
    pub spill: u64,
    /// Blocks backing the DRAM grant (Jiffy only; 0 elsewhere). Echoed
    /// back on release so block accounting stays exact under partial
    /// block occupancy.
    pub blocks: u64,
}

impl Placement {
    /// Total bytes covered.
    pub fn total(&self) -> u64 {
        self.dram + self.spill
    }
}

/// An intermediate-data allocation policy (one per compared system).
///
/// The simulator calls these with monotonically non-decreasing `now`
/// values; policies may use time for deferred reclamation (Jiffy's
/// leases).
pub trait AllocationPolicy: Send {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// A job registers; `declared_peak` is the demand the job states at
    /// submission (used only by reservation-based policies), and
    /// `tenant` identifies the owning tenant (used only by statically
    /// partitioned policies).
    fn job_arrives(&mut self, now: Duration, job: u64, tenant: u32, declared_peak: u64);

    /// The job needs `bytes` more live intermediate storage.
    fn acquire(&mut self, now: Duration, job: u64, bytes: u64) -> Placement;

    /// The job no longer needs a previously acquired placement.
    fn release(&mut self, now: Duration, job: u64, placement: Placement);

    /// The job deregisters; all of its holdings return.
    fn job_departs(&mut self, now: Duration, job: u64);

    /// Bytes of intermediate data currently resident in DRAM.
    fn dram_used(&self, now: Duration) -> u64;

    /// DRAM bytes currently *held* (reserved or allocated) and thus
    /// unavailable to other jobs — the denominator of the utilization
    /// metric.
    fn dram_held(&self, now: Duration) -> u64;

    /// The tier overflow goes to.
    fn spill_tier(&self) -> Tier;
}

// ---------------------------------------------------------------------------
// Jiffy
// ---------------------------------------------------------------------------

/// Jiffy's policy: a shared pool carved into fixed-size blocks,
/// allocated on demand and reclaimed one lease period after release
/// (§3). Overflow beyond pool capacity spills to flash, as in the
/// paper's constrained-capacity runs.
pub struct JiffyPolicy {
    capacity: u64,
    block_size: u64,
    lease: Duration,
    /// Per job: (live DRAM bytes, blocks backing them).
    live: HashMap<u64, (u64, u64)>,
    /// Blocks held per job, including lease-lagged ones.
    held_blocks: u64,
    /// Blocks pending reclamation: expiry time → blocks.
    pending_free: BTreeMap<Duration, u64>,
    used: u64,
}

impl JiffyPolicy {
    /// Creates the policy with the paper's defaults scaled to
    /// `capacity`.
    pub fn new(capacity: u64, block_size: u64, lease: Duration) -> Self {
        Self {
            capacity,
            block_size,
            lease,
            live: HashMap::new(),
            held_blocks: 0,
            pending_free: BTreeMap::new(),
            used: 0,
        }
    }

    fn expire(&mut self, now: Duration) {
        let due: Vec<Duration> = self.pending_free.range(..=now).map(|(t, _)| *t).collect();
        for t in due {
            let blocks = self.pending_free.remove(&t).expect("present");
            self.held_blocks -= blocks;
        }
    }

    fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size)
    }
}

impl AllocationPolicy for JiffyPolicy {
    fn name(&self) -> &'static str {
        "jiffy"
    }

    fn job_arrives(&mut self, now: Duration, job: u64, _tenant: u32, _declared_peak: u64) {
        self.expire(now);
        self.live.insert(job, (0, 0));
    }

    fn acquire(&mut self, now: Duration, job: u64, bytes: u64) -> Placement {
        self.expire(now);
        let free_blocks = (self.capacity / self.block_size).saturating_sub(self.held_blocks);
        let need_blocks = self.blocks_for(bytes);
        let granted_blocks = need_blocks.min(free_blocks);
        let dram = (granted_blocks * self.block_size).min(bytes);
        let spill = bytes - dram;
        self.held_blocks += granted_blocks;
        self.used += dram;
        let entry = self.live.entry(job).or_insert((0, 0));
        entry.0 += dram;
        entry.1 += granted_blocks;
        Placement {
            dram,
            spill,
            blocks: granted_blocks,
        }
    }

    fn release(&mut self, now: Duration, job: u64, placement: Placement) {
        self.expire(now);
        let entry = self.live.entry(job).or_insert((0, 0));
        let dram = placement.dram.min(entry.0);
        let blocks = placement.blocks.min(entry.1);
        entry.0 -= dram;
        entry.1 -= blocks;
        self.used -= dram;
        // Blocks stay held until the lease lapses (the job stopped
        // renewing this prefix when it released the data).
        if blocks > 0 {
            *self.pending_free.entry(now + self.lease).or_insert(0) += blocks;
        }
    }

    fn job_departs(&mut self, now: Duration, job: u64) {
        self.expire(now);
        if let Some((live, blocks)) = self.live.remove(&job) {
            self.used -= live;
            if blocks > 0 {
                *self.pending_free.entry(now + self.lease).or_insert(0) += blocks;
            }
        }
    }

    fn dram_used(&self, _now: Duration) -> u64 {
        self.used
    }

    fn dram_held(&self, _now: Duration) -> u64 {
        (self.held_blocks * self.block_size).min(self.capacity)
    }

    fn spill_tier(&self) -> Tier {
        Tier::Ssd
    }
}

// ---------------------------------------------------------------------------
// Pocket
// ---------------------------------------------------------------------------

/// Pocket's policy: at registration a job reserves DRAM equal to its
/// declared demand (its peak — Fig. 1 in the Pocket paper) for its
/// whole lifetime; the reservation is capped by what is currently free.
/// Data beyond the job's DRAM reservation spills to flash.
pub struct PocketPolicy {
    capacity: u64,
    /// job → (reservation, live bytes in DRAM).
    jobs: HashMap<u64, (u64, u64)>,
    reserved: u64,
    used: u64,
}

impl PocketPolicy {
    /// Creates the policy over `capacity` bytes of DRAM.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            jobs: HashMap::new(),
            reserved: 0,
            used: 0,
        }
    }
}

impl AllocationPolicy for PocketPolicy {
    fn name(&self) -> &'static str {
        "pocket"
    }

    fn job_arrives(&mut self, _now: Duration, job: u64, _tenant: u32, declared_peak: u64) {
        let free = self.capacity - self.reserved;
        let reservation = declared_peak.min(free);
        self.reserved += reservation;
        self.jobs.insert(job, (reservation, 0));
    }

    fn acquire(&mut self, _now: Duration, job: u64, bytes: u64) -> Placement {
        let (reservation, live) = self.jobs.get_mut(&job).copied().map_or((0, 0), |v| v);
        let headroom = reservation.saturating_sub(live);
        let dram = bytes.min(headroom);
        let spill = bytes - dram;
        if let Some(entry) = self.jobs.get_mut(&job) {
            entry.1 += dram;
        }
        self.used += dram;
        Placement {
            dram,
            spill,
            blocks: 0,
        }
    }

    fn release(&mut self, _now: Duration, job: u64, placement: Placement) {
        if let Some(entry) = self.jobs.get_mut(&job) {
            let dram = placement.dram.min(entry.1);
            entry.1 -= dram;
            self.used -= dram;
        }
        // The reservation itself is NOT returned: Pocket holds it until
        // the job deregisters — exactly the waste Fig. 9(b) shows.
    }

    fn job_departs(&mut self, _now: Duration, job: u64) {
        if let Some((reservation, live)) = self.jobs.remove(&job) {
            self.reserved -= reservation;
            self.used -= live;
        }
    }

    fn dram_used(&self, _now: Duration) -> u64 {
        self.used
    }

    fn dram_held(&self, _now: Duration) -> u64 {
        self.reserved
    }

    fn spill_tier(&self) -> Tier {
        Tier::Ssd
    }
}

// ---------------------------------------------------------------------------
// ElastiCache
// ---------------------------------------------------------------------------

/// ElastiCache-style static provisioning: the cluster's capacity is
/// provisioned up front and partitioned across tenants (the paper's
/// "systems that provision resources for all jobs"; ElastiCache has no
/// multi-tenant elasticity and no secondary tier). A tenant's jobs
/// share its static slice; overflow goes to S3.
pub struct ElasticachePolicy {
    capacity: u64,
    tenants: u32,
    /// Optional per-tenant capacity weights (normalized); `None` means
    /// equal slices.
    weights: Option<Vec<f64>>,
    /// tenant → live bytes in its slice.
    tenant_live: HashMap<u32, u64>,
    job_tenant: HashMap<u64, u32>,
    used: u64,
}

impl ElasticachePolicy {
    /// Creates the policy with `capacity` split evenly over `tenants`.
    pub fn new(capacity: u64, tenants: u32) -> Self {
        Self {
            capacity,
            tenants: tenants.max(1),
            weights: None,
            tenant_live: HashMap::new(),
            job_tenant: HashMap::new(),
            used: 0,
        }
    }

    /// Provisions slices proportional to `weights` (e.g. each tenant's
    /// historical peak — how a capacity planner would size dedicated
    /// clusters). Weights are normalized internally.
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            self.weights = Some(weights.into_iter().map(|w| w / total).collect());
        }
        self
    }

    fn slice(&self, tenant: u32) -> u64 {
        match &self.weights {
            Some(w) => {
                let frac = w.get(tenant as usize).copied().unwrap_or(0.0);
                (self.capacity as f64 * frac) as u64
            }
            None => self.capacity / u64::from(self.tenants),
        }
    }
}

impl AllocationPolicy for ElasticachePolicy {
    fn name(&self) -> &'static str {
        "elasticache"
    }

    fn job_arrives(&mut self, _now: Duration, job: u64, tenant: u32, _declared_peak: u64) {
        self.job_tenant.insert(job, tenant);
        self.tenant_live.entry(tenant).or_insert(0);
    }

    fn acquire(&mut self, _now: Duration, job: u64, bytes: u64) -> Placement {
        let tenant = self.job_tenant.get(&job).copied().unwrap_or(0);
        let slice = self.slice(tenant);
        let live = self.tenant_live.entry(tenant).or_insert(0);
        let headroom = slice.saturating_sub(*live);
        let dram = bytes.min(headroom);
        let spill = bytes - dram;
        *live += dram;
        self.used += dram;
        Placement {
            dram,
            spill,
            blocks: 0,
        }
    }

    fn release(&mut self, _now: Duration, job: u64, placement: Placement) {
        let tenant = self.job_tenant.get(&job).copied().unwrap_or(0);
        if let Some(live) = self.tenant_live.get_mut(&tenant) {
            let dram = placement.dram.min(*live);
            *live -= dram;
            self.used -= dram;
        }
    }

    fn job_departs(&mut self, _now: Duration, job: u64) {
        self.job_tenant.remove(&job);
    }

    fn dram_used(&self, _now: Duration) -> u64 {
        self.used
    }

    fn dram_held(&self, _now: Duration) -> u64 {
        // The whole cluster is provisioned regardless of demand.
        self.capacity
    }

    fn spill_tier(&self) -> Tier {
        Tier::S3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn t(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    #[test]
    fn jiffy_multiplexes_the_pool_across_jobs() {
        let mut p = JiffyPolicy::new(100 * MB, MB, Duration::from_secs(1));
        p.job_arrives(t(0), 1, 0, u64::MAX);
        p.job_arrives(t(0), 2, 0, u64::MAX);
        // Job 1 takes 80 MB, releases it; after the lease, job 2 can
        // take 80 MB too.
        let a = p.acquire(t(0), 1, 80 * MB);
        assert_eq!((a.dram, a.spill), (80 * MB, 0));
        p.release(t(1), 1, a);
        // Within the lease window the blocks are still held.
        assert!(p.dram_held(t(1)) >= 80 * MB);
        let b = p.acquire(t(3), 2, 80 * MB);
        assert_eq!(b.spill, 0, "lease expired, blocks recycled");
        assert_eq!(p.dram_used(t(3)), 80 * MB);
    }

    #[test]
    fn jiffy_spills_only_beyond_capacity() {
        let mut p = JiffyPolicy::new(10 * MB, MB, Duration::from_secs(1));
        p.job_arrives(t(0), 1, 0, u64::MAX);
        let a = p.acquire(t(0), 1, 15 * MB);
        assert_eq!(a.dram, 10 * MB);
        assert_eq!(a.spill, 5 * MB);
    }

    #[test]
    fn jiffy_rounds_to_blocks() {
        let mut p = JiffyPolicy::new(10 * MB, MB, Duration::from_secs(1));
        p.job_arrives(t(0), 1, 0, 0);
        p.acquire(t(0), 1, MB / 2);
        // Half a block used, one block held.
        assert_eq!(p.dram_used(t(0)), MB / 2);
        assert_eq!(p.dram_held(t(0)), MB);
    }

    #[test]
    fn pocket_reserves_at_registration_and_wastes_idle_reservation() {
        let mut p = PocketPolicy::new(100 * MB);
        p.job_arrives(t(0), 1, 0, 70 * MB);
        // Nothing used yet, but 70 MB are gone from the pool.
        assert_eq!(p.dram_used(t(0)), 0);
        assert_eq!(p.dram_held(t(0)), 70 * MB);
        // A second job can only reserve the remainder.
        p.job_arrives(t(0), 2, 0, 70 * MB);
        assert_eq!(p.dram_held(t(0)), 100 * MB);
        let b = p.acquire(t(0), 2, 70 * MB);
        assert_eq!(b.dram, 30 * MB, "only the leftover reservation");
        assert_eq!(b.spill, 40 * MB);
        // Job 1's departure frees its reservation.
        p.job_departs(t(1), 1);
        assert_eq!(p.dram_held(t(1)), 30 * MB);
    }

    #[test]
    fn pocket_release_returns_headroom_to_the_same_job_only() {
        let mut p = PocketPolicy::new(100 * MB);
        p.job_arrives(t(0), 1, 0, 50 * MB);
        let a = p.acquire(t(0), 1, 50 * MB);
        assert_eq!(a.spill, 0);
        p.release(t(1), 1, a);
        assert_eq!(p.dram_used(t(1)), 0);
        // Reservation still held.
        assert_eq!(p.dram_held(t(1)), 50 * MB);
        // The same job can reuse its reservation.
        let b = p.acquire(t(2), 1, 50 * MB);
        assert_eq!(b.spill, 0);
    }

    #[test]
    fn elasticache_partitions_capacity_per_tenant() {
        let mut p = ElasticachePolicy::new(100 * MB, 4);
        p.job_arrives(t(0), 1, 0, 0);
        p.job_arrives(t(0), 2, 1, 0);
        // Tenant 0's slice is 25 MB; beyond that goes to S3 even though
        // other slices are idle.
        let a = p.acquire(t(0), 1, 40 * MB);
        assert_eq!(a.dram, 25 * MB);
        assert_eq!(a.spill, 15 * MB);
        // Tenant 1 has its own slice.
        let b = p.acquire(t(0), 2, 20 * MB);
        assert_eq!(b.spill, 0);
        // The whole cluster counts as held.
        assert_eq!(p.dram_held(t(0)), 100 * MB);
        assert_eq!(p.spill_tier(), Tier::S3);
    }

    #[test]
    fn accounting_balances_over_a_random_walk() {
        let mut policies: Vec<Box<dyn AllocationPolicy>> = vec![
            Box::new(JiffyPolicy::new(64 * MB, MB, Duration::from_millis(100))),
            Box::new(PocketPolicy::new(64 * MB)),
            Box::new(ElasticachePolicy::new(64 * MB, 4)),
        ];
        for p in &mut policies {
            let mut placements: Vec<(u64, Placement)> = Vec::new();
            let mut state = 0xDEADBEEFu64;
            for step in 0..1000u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let now = Duration::from_millis(step * 10);
                let job = (state >> 50) % 8;
                match state % 4 {
                    0 => p.job_arrives(now, job, (job % 3) as u32, 8 * MB),
                    1 => {
                        let pl = p.acquire(now, job, (state >> 33) % (4 * MB));
                        placements.push((job, pl));
                    }
                    2 => {
                        if let Some((j, pl)) = placements.pop() {
                            p.release(now, j, pl);
                        }
                    }
                    _ => p.job_departs(now, job),
                }
                // Invariants: used <= held <= ... (EC holds capacity).
                assert!(p.dram_used(now) <= p.dram_held(now).max(64 * MB));
            }
        }
    }
}
