//! Jiffy client library — the user-facing API of paper Table 1.
//!
//! ```text
//! connect(jiffyAddress)                 -> JiffyClient::connect
//! createAddrPrefix(addr, parent, opts)  -> JobClient::create_addr_prefix
//! createHierarchy(dag, opts)            -> JobClient::create_hierarchy
//! flushAddrPrefix / loadAddrPrefix      -> JobClient::{flush,load}
//! getLeaseDuration / renewLease         -> JobClient::{lease_duration,renew_lease}
//! initDataStructure(addr, type)         -> JobClient::{open_file,open_queue,open_kv}
//! ds.subscribe(op) / listener.get(t)    -> handles' subscribe() -> Listener::get
//! ```
//!
//! Every data-structure handle caches the controller's partition
//! metadata ([`jiffy_proto::PartitionView`]) and implements the
//! `getBlock` routing of paper Fig. 6 client-side: file offsets to chunk
//! blocks, queue ends to head/tail segments, key hashes to slot owners.
//! When a memory server answers [`jiffy_common::JiffyError::StaleMetadata`]
//! (the layout changed under the client), the handle refreshes its view
//! from the controller and retries — the client-visible face of Jiffy's
//! asynchronous repartitioning.
//!
//! Resolutions are additionally cached in a lease-guarded
//! [`MetadataCache`] shared by every handle of a [`JiffyClient`], so
//! steady-state data operations never touch the controller at all
//! (DESIGN.md §15).

pub mod cache;
pub mod ds;
pub mod job;
pub mod lease;
pub mod listener;
pub mod rid;
mod throttle;

pub use cache::{CacheStats, MetadataCache};
pub use ds::{FileClient, KvClient, QueueClient};
pub use job::{JiffyClient, JobClient};
pub use lease::LeaseRenewer;
pub use listener::Listener;
