//! Connection and job-scope handles.

use jiffy_sync::Arc;
use std::time::Duration;

use jiffy_common::{JiffyError, JobId, Result, TenantId};
use jiffy_proto::{
    ControlRequest, ControlResponse, DagNodeSpec, DsType, Envelope, PrefixView, TenantStatsEntry,
};
use jiffy_rpc::{Fabric, RetryPolicy};

use crate::cache::MetadataCache;
use crate::ds::{FileClient, KvClient, QueueClient};
use crate::lease::LeaseRenewer;
use crate::rid::next_request_id;
use crate::throttle::with_throttle_backoff;

/// A connection to a Jiffy cluster's controller.
#[derive(Clone)]
pub struct JiffyClient {
    fabric: Fabric,
    controller_addr: String,
    retry: RetryPolicy,
    tenant: TenantId,
    /// Lease-guarded metadata cache, shared by every handle cloned from
    /// this connection (DESIGN.md §15).
    cache: Arc<MetadataCache>,
}

impl JiffyClient {
    /// Connects to the controller at `jiffy_address` (paper `connect`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn connect(fabric: Fabric, jiffy_address: &str) -> Result<Self> {
        // Dial eagerly so an unreachable controller fails here, not on
        // the first request; the connection stays pooled in the fabric.
        fabric.connect(jiffy_address)?;
        Ok(Self {
            fabric,
            controller_addr: jiffy_address.to_string(),
            retry: RetryPolicy::default(),
            tenant: TenantId::ANONYMOUS,
            cache: Arc::new(MetadataCache::new()),
        })
    }

    /// Replaces the transport retry policy (e.g. `RetryPolicy::no_retries()`
    /// to surface every transport fault to the caller).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Scopes this connection to a tenant: jobs it registers are
    /// accounted against the tenant's memory quota, and its data-plane
    /// ops flow through the tenant's rate lane (DESIGN.md §14). The
    /// default [`TenantId::ANONYMOUS`] is exempt from QoS.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The tenant every request from this connection is stamped with.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The fabric used for data-plane connections.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The controller address.
    pub fn controller_addr(&self) -> &str {
        &self.controller_addr
    }

    /// The transport retry policy applied to control and data requests.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The lease-guarded metadata cache behind [`JobClient::resolve`].
    pub fn metadata_cache(&self) -> &Arc<MetadataCache> {
        &self.cache
    }

    /// Issues one control request.
    ///
    /// The request is stamped with a process-unique id and transport
    /// faults (timeout / unavailable / broken connection) are retried
    /// with exponential backoff, reusing the id so the controller's
    /// replay cache suppresses re-execution. Controller-side errors are
    /// returned as-is.
    ///
    /// # Errors
    ///
    /// Transport failures (after retries) or controller-side errors.
    pub fn control(&self, req: ControlRequest) -> Result<ControlResponse> {
        self.control_with_epoch(req).map(|(resp, _)| resp)
    }

    /// [`Self::control`], additionally returning the view epoch the
    /// controller stamped on the response envelope. Every response's
    /// epoch is folded into the metadata cache here, so any control
    /// traffic (above all the lease renewals a live job sends anyway)
    /// doubles as the cache-invalidation channel.
    ///
    /// # Errors
    ///
    /// Transport failures (after retries) or controller-side errors.
    pub fn control_with_epoch(&self, req: ControlRequest) -> Result<(ControlResponse, u64)> {
        // A `Throttled` answer means the controller deferred the request
        // before executing it (fair-share arbitration under memory
        // pressure) and throttled responses bypass the replay cache, so
        // backoff retries reuse the same id safely.
        let id = next_request_id();
        with_throttle_backoff(|| {
            self.retry.run(
                |_| {
                    let conn = self.fabric.connect(&self.controller_addr)?;
                    match conn.call(Envelope::ControlReq {
                        id,
                        req: req.clone(),
                        tenant: self.tenant,
                    })? {
                        Envelope::ControlResp { resp, epoch, .. } => {
                            // Replayed (deduplicated) responses may carry
                            // an older epoch; observe_epoch is monotonic.
                            self.cache.observe_epoch(epoch);
                            resp.map(|r| (r, epoch))
                        }
                        other => Err(JiffyError::Rpc(format!(
                            "unexpected controller reply: {other:?}"
                        ))),
                    }
                },
                |_e| {
                    // Re-dial on every transport-level fault (broken
                    // connection, timeout, unavailable): a controller restart
                    // leaves the pooled connection pointing at a dead
                    // endpoint, and only a fresh dial reaches the recovered
                    // controller. The request id is reused across attempts, so
                    // the replay cache still suppresses duplicate execution
                    // when the old controller actually processed the call.
                    self.fabric.evict(&self.controller_addr);
                },
            )
        })
    }

    /// Registers a job, returning its scoped handle.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn register_job(&self, name: &str) -> Result<JobClient> {
        match self.control(ControlRequest::RegisterJob {
            name: name.to_string(),
        })? {
            ControlResponse::JobRegistered { job } => Ok(JobClient {
                client: self.clone(),
                job,
            }),
            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Cluster statistics (free blocks, jobs, splits, ...).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&self) -> Result<jiffy_proto::ControllerStats> {
        match self.control(ControlRequest::GetStats)? {
            ControlResponse::Stats(s) => Ok(s),
            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Per-tenant QoS statistics: configured limits, allocated memory,
    /// and data-plane admission counters aggregated across servers.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn tenant_stats(&self) -> Result<Vec<TenantStatsEntry>> {
        match self.control(ControlRequest::TenantStats)? {
            ControlResponse::TenantStatsReport(entries) => Ok(entries),
            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Configures a tenant's weighted-fair share, memory quota, and
    /// data-plane rate limits (zeros mean unlimited). Servers pick up
    /// the new limits within one heartbeat interval.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn set_tenant_share(
        &self,
        tenant: TenantId,
        share: u32,
        quota_bytes: u64,
        ops_per_sec: u64,
        bytes_per_sec: u64,
    ) -> Result<()> {
        self.control(ControlRequest::SetTenantShare {
            tenant,
            share,
            quota_bytes,
            ops_per_sec,
            bytes_per_sec,
        })?;
        Ok(())
    }
}

impl std::fmt::Debug for JiffyClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JiffyClient({})", self.controller_addr)
    }
}

/// Job-scoped API: everything in paper Table 1 below `connect`.
#[derive(Debug, Clone)]
pub struct JobClient {
    client: JiffyClient,
    job: JobId,
}

impl JobClient {
    /// Wraps an existing job ID (e.g. one shared with serverless tasks
    /// out-of-band, which is how tasks of one job attach to its
    /// hierarchy).
    pub fn attach(client: JiffyClient, job: JobId) -> Self {
        Self { client, job }
    }

    /// The job ID (shared with the job's serverless tasks).
    pub fn id(&self) -> JobId {
        self.job
    }

    /// The underlying cluster connection.
    pub fn client(&self) -> &JiffyClient {
        &self.client
    }

    /// Creates an address prefix (paper `createAddrPrefix`). `parents`
    /// name existing prefixes; empty hangs the node off the job root.
    ///
    /// # Errors
    ///
    /// Controller-side validation (duplicate name, missing parent).
    pub fn create_addr_prefix(&self, name: &str, parents: &[&str]) -> Result<()> {
        self.client.control(ControlRequest::CreatePrefix {
            job: self.job,
            name: name.to_string(),
            parents: parents.iter().map(|s| s.to_string()).collect(),
            ds: None,
            initial_blocks: 0,
        })?;
        Ok(())
    }

    /// Creates the whole address hierarchy from an execution DAG (paper
    /// `createHierarchy`).
    ///
    /// # Errors
    ///
    /// Controller-side validation; nodes must be topologically ordered.
    ///
    /// Against a sharded control plane the DAG's root groups may hash to
    /// different shards; the router then answers
    /// [`ControlResponse::CrossShard`] and this method orchestrates the
    /// creation client-side, re-issuing each spec individually in
    /// topological order (each lands on its own root's shard).
    /// Non-atomic: a failure mid-way leaves earlier nodes created, like
    /// a partially-executed sequence of `create_addr_prefix` calls.
    pub fn create_hierarchy(&self, nodes: Vec<DagNodeSpec>) -> Result<()> {
        match self.client.control(ControlRequest::CreateHierarchy {
            job: self.job,
            nodes: nodes.clone(),
        })? {
            ControlResponse::CrossShard { .. } => {
                for spec in nodes {
                    self.client.control(ControlRequest::CreatePrefix {
                        job: self.job,
                        name: spec.name,
                        parents: spec.parents,
                        ds: spec.ds,
                        initial_blocks: spec.initial_blocks,
                    })?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Adds an extra parent edge, giving a prefix an additional address.
    ///
    /// # Errors
    ///
    /// Controller-side validation (cycles, duplicates).
    pub fn add_parent(&self, name: &str, parent: &str) -> Result<()> {
        self.client.control(ControlRequest::AddParent {
            job: self.job,
            name: name.to_string(),
            parent: parent.to_string(),
        })?;
        Ok(())
    }

    /// Removes a prefix, reclaiming its memory immediately.
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] for unknown prefixes.
    pub fn remove_addr_prefix(&self, name: &str) -> Result<()> {
        self.client.control(ControlRequest::RemovePrefix {
            job: self.job,
            name: name.to_string(),
        })?;
        self.client
            .metadata_cache()
            .invalidate(self.job.raw(), name);
        Ok(())
    }

    /// Resolves a prefix (by name or dotted path) to its current view.
    ///
    /// Served from the lease-guarded metadata cache when a fresh entry
    /// exists — the steady-state path never touches the controller.
    /// Misses coalesce (single-flight) and fill the cache with a TTL of
    /// the prefix's lease duration; the entry also dies if the control
    /// plane's view epoch advances (splits, merges, migrations,
    /// reclaims anywhere bump it).
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] for unknown paths.
    pub fn resolve(&self, path: &str) -> Result<PrefixView> {
        let cache = self.client.metadata_cache();
        if let Some(view) = cache.lookup(self.job.raw(), path) {
            return Ok(view);
        }
        cache.resolve_coalesced(self.job.raw(), path, || self.resolve_rpc(path))
    }

    /// Drops any cached view of `path` and re-resolves from the
    /// controller. The data-structure handles call this when a memory
    /// server disproves the cached layout (`StaleMetadata`,
    /// `BlockMoved`, `UnknownBlock`): exactly one refresh RPC per
    /// stale entry, then the operation retries against the new chain.
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] for unknown paths.
    pub fn resolve_fresh(&self, path: &str) -> Result<PrefixView> {
        let cache = self.client.metadata_cache();
        cache.invalidate(self.job.raw(), path);
        cache.resolve_coalesced(self.job.raw(), path, || self.resolve_rpc(path))
    }

    fn resolve_rpc(&self, path: &str) -> Result<(PrefixView, u64)> {
        match self
            .client
            .control_with_epoch(ControlRequest::ResolvePrefix {
                job: self.job,
                name: path.to_string(),
            })? {
            (ControlResponse::Resolved(v), epoch) => Ok((v, epoch)),
            (other, _) => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Renews the lease on a prefix (and, per §3.2, its direct parents
    /// and all descendants). Returns the renewed prefix names.
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] for unknown paths.
    pub fn renew_lease(&self, path: &str) -> Result<Vec<String>> {
        match self.client.control(ControlRequest::RenewLease {
            job: self.job,
            name: path.to_string(),
        })? {
            ControlResponse::LeaseRenewed { renewed, .. } => Ok(renewed),
            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    /// The lease duration configured for a prefix (paper
    /// `getLeaseDuration`).
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] for unknown paths.
    pub fn lease_duration(&self, path: &str) -> Result<Duration> {
        match self.client.control(ControlRequest::GetLeaseDuration {
            job: self.job,
            name: path.to_string(),
        })? {
            ControlResponse::LeaseDuration { micros } => Ok(Duration::from_micros(micros)),
            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Starts a background lease renewer for the given prefixes (the
    /// "master process" role in the paper's programming models).
    pub fn start_lease_renewer(&self, prefixes: Vec<String>, interval: Duration) -> LeaseRenewer {
        LeaseRenewer::start(self.clone(), prefixes, interval)
    }

    /// Flushes a prefix's data to the persistent tier (paper
    /// `flushAddrPrefix`). Returns bytes written.
    ///
    /// # Errors
    ///
    /// Path or persistent-tier failures.
    pub fn flush(&self, path: &str, external_path: &str) -> Result<u64> {
        match self.client.control(ControlRequest::FlushPrefix {
            job: self.job,
            name: path.to_string(),
            external_path: external_path.to_string(),
        })? {
            ControlResponse::Persisted { bytes } => Ok(bytes),
            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    /// Loads a prefix's data back from the persistent tier (paper
    /// `loadAddrPrefix`). Returns bytes read.
    ///
    /// # Errors
    ///
    /// Path or persistent-tier failures; the prefix must not currently
    /// hold a live structure.
    pub fn load(&self, path: &str, external_path: &str) -> Result<u64> {
        match self.client.control(ControlRequest::LoadPrefix {
            job: self.job,
            name: path.to_string(),
            external_path: external_path.to_string(),
        })? {
            ControlResponse::Persisted { bytes } => Ok(bytes),
            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
        }
    }

    fn init_ds(&self, name: &str, parents: &[&str], ds: DsType, initial_blocks: u32) -> Result<()> {
        match self.client.control(ControlRequest::CreatePrefix {
            job: self.job,
            name: name.to_string(),
            parents: parents.iter().map(|s| s.to_string()).collect(),
            ds: Some(ds),
            initial_blocks,
        }) {
            Ok(_) => Ok(()),
            // initDataStructure on an existing prefix opens it instead.
            Err(JiffyError::PathExists(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Creates (or opens) a file under `name` (paper
    /// `initDataStructure(addr, File)`).
    ///
    /// # Errors
    ///
    /// Allocation or controller failures.
    pub fn open_file(&self, name: &str, parents: &[&str]) -> Result<FileClient> {
        self.init_ds(name, parents, DsType::File, 1)?;
        FileClient::open(Arc::new(self.clone()), name)
    }

    /// Creates (or opens) a FIFO queue under `name`.
    ///
    /// # Errors
    ///
    /// Allocation or controller failures.
    pub fn open_queue(&self, name: &str, parents: &[&str]) -> Result<QueueClient> {
        self.init_ds(name, parents, DsType::Queue, 1)?;
        QueueClient::open(Arc::new(self.clone()), name)
    }

    /// Creates (or opens) a KV-store under `name`, pre-partitioned over
    /// `initial_blocks` blocks.
    ///
    /// # Errors
    ///
    /// Allocation or controller failures.
    pub fn open_kv(&self, name: &str, parents: &[&str], initial_blocks: u32) -> Result<KvClient> {
        self.init_ds(name, parents, DsType::KvStore, initial_blocks.max(1))?;
        KvClient::open(Arc::new(self.clone()), name)
    }

    /// Deregisters the job, releasing all its memory.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownJob`] if already deregistered.
    pub fn deregister(&self) -> Result<()> {
        self.client
            .control(ControlRequest::DeregisterJob { job: self.job })?;
        self.client.metadata_cache().invalidate_job(self.job.raw());
        Ok(())
    }
}
