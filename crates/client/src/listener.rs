//! Notification listeners (paper Table 1: `ds.subscribe(op)` /
//! `listener.get(timeout)`).

use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver};
use jiffy_common::Result;
use jiffy_proto::{DataRequest, Envelope, Notification, OpKind, PartitionView, INTERNAL_RID};
use jiffy_rpc::{ClientConn, Fabric};

/// Receives asynchronous notifications for subscribed operations.
///
/// A listener holds one dedicated connection per block it subscribed on
/// (pushes arrive per-connection). Blocks added to the structure *after*
/// subscription are not covered until [`Listener::resubscribe`] is
/// called with a fresh view — the same refresh-on-scale discipline the
/// data path uses.
pub struct Listener {
    rx: Receiver<Notification>,
    tx: crossbeam::channel::Sender<Notification>,
    fabric: Fabric,
    ops: Vec<OpKind>,
    conns: Vec<ClientConn>,
    covered: Vec<jiffy_common::BlockId>,
}

impl Listener {
    /// Subscribes to `ops` on every block of `view`.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(fabric: Fabric, view: &PartitionView, ops: &[OpKind]) -> Result<Self> {
        let (tx, rx) = unbounded();
        let mut listener = Self {
            rx,
            tx,
            fabric,
            ops: ops.to_vec(),
            conns: Vec::new(),
            covered: Vec::new(),
        };
        listener.resubscribe(view)?;
        Ok(listener)
    }

    /// Extends the subscription to any blocks in `view` not yet covered.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn resubscribe(&mut self, view: &PartitionView) -> Result<()> {
        for loc in view.blocks() {
            let tail = loc.tail();
            if self.covered.contains(&tail.block) {
                continue;
            }
            // Dedicated connection: pushes are per-connection.
            let conn = self.fabric.dial(&tail.addr)?;
            let tx = self.tx.clone();
            conn.set_push_callback(jiffy_sync::Arc::new(move |n| {
                let _ = tx.send(n);
            }));
            // Subscriptions are control-ish and exempt from admission
            // control; they carry the anonymous tenant.
            conn.call(Envelope::DataReq {
                id: INTERNAL_RID,
                req: DataRequest::Subscribe {
                    block: tail.block,
                    ops: self.ops.clone(),
                },
                tenant: jiffy_common::TenantId::ANONYMOUS,
            })?;
            self.conns.push(conn);
            self.covered.push(tail.block);
        }
        Ok(())
    }

    /// Waits up to `timeout` for the next notification (paper
    /// `listener.get(timeout)`); `None` on timeout.
    pub fn get(&self, timeout: Duration) -> Option<Notification> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Returns a notification if one is already queued.
    pub fn try_get(&self) -> Option<Notification> {
        self.rx.try_recv().ok()
    }

    /// Number of blocks currently subscribed.
    pub fn coverage(&self) -> usize {
        self.covered.len()
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        for c in &self.conns {
            c.close();
        }
    }
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Listener({} blocks, {:?})", self.covered.len(), self.ops)
    }
}
