//! Client-side backoff for data-plane admission control.
//!
//! A [`JiffyError::Throttled`] answer is *server-definitive*: the op was
//! rejected before execution, so resending it (under the same or a fresh
//! request id) can never double-apply. The server tells the client how
//! long the token deficit takes to drain; the client honors that hint,
//! clamped to keep tail latency bounded, and gives up after a total wait
//! budget so a misconfigured (or zero-rate) tenant sees a clean error
//! instead of an unbounded stall.

use std::time::Duration;

use jiffy_common::{JiffyError, Result};

/// Per-attempt sleep clamp: honor small server hints exactly, cap large
/// ones so one retry never sleeps longer than a routing retry round.
const MAX_SLEEP: Duration = Duration::from_millis(250);

/// Total time one logical call may spend sleeping on throttle hints
/// before the `Throttled` error is surfaced to the caller.
const WAIT_BUDGET: Duration = Duration::from_secs(30);

/// Runs `attempt`, sleeping and retrying on [`JiffyError::Throttled`]
/// until it succeeds, fails differently, or the wait budget is spent.
pub(crate) fn with_throttle_backoff<T>(mut attempt: impl FnMut() -> Result<T>) -> Result<T> {
    let mut waited = Duration::ZERO;
    loop {
        match attempt() {
            Err(JiffyError::Throttled { retry_after_ms }) if waited < WAIT_BUDGET => {
                let sleep = Duration::from_millis(retry_after_ms.max(1)).min(MAX_SLEEP);
                std::thread::sleep(sleep);
                waited += sleep;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_success_through() {
        let v: Result<u32> = with_throttle_backoff(|| Ok(7));
        assert_eq!(v.unwrap(), 7);
    }

    #[test]
    fn passes_other_errors_through() {
        let mut calls = 0;
        let r: Result<()> = with_throttle_backoff(|| {
            calls += 1;
            Err(JiffyError::StaleMetadata)
        });
        assert!(matches!(r, Err(JiffyError::StaleMetadata)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_throttle_clears() {
        let mut calls = 0;
        let r: Result<u32> = with_throttle_backoff(|| {
            calls += 1;
            if calls < 3 {
                Err(JiffyError::Throttled { retry_after_ms: 1 })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.unwrap(), 3);
    }
}
