//! Client-side request-id allocation.
//!
//! Every control and data request carries a non-zero correlation id. Ids
//! must stay unique across *retries of different requests* on the same
//! connection, because the server's replay cache (see
//! [`jiffy_rpc::Deduplicated`]) treats a repeated id as "same request —
//! replay the cached response". A process-wide counter guarantees that; a
//! retry of one request deliberately reuses its id.
//!
//! The counter starts at [`jiffy_proto::CLIENT_RID_BASE`] so
//! client-stamped ids can never collide with the per-connection
//! auto-ids that [`jiffy_rpc::tcp`] assigns to unstamped
//! ([`jiffy_proto::INTERNAL_RID`]) requests, which count up from 1.
//! Servers use the same threshold to decide whether an id identifies a
//! client request whose result belongs in the per-block replay window.

use jiffy_proto::CLIENT_RID_BASE;
use jiffy_sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(CLIENT_RID_BASE);

/// Returns a fresh process-unique request id.
pub fn next_request_id() -> u64 {
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_above_the_connection_range() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        assert!(a >= 1 << 32);
        assert!(b >= 1 << 32);
    }
}
