//! Lease-guarded client-side metadata cache (DESIGN.md §15).
//!
//! Steady-state data-path operations must not touch the controller: a
//! resolved `(job, path) → PrefixView` is cached here and considered
//! fresh while (a) the prefix's lease could not have expired yet — the
//! entry's TTL is the lease duration reported at resolve time — and
//! (b) the control plane's *view epoch* has not advanced past the epoch
//! observed when the entry was filled. Every control response envelope
//! piggybacks the current epoch, so any control traffic (lease renewals
//! above all — a live job renews leases anyway) doubles as an
//! invalidation channel with zero extra RPCs.
//!
//! Entries are dropped eagerly when a memory server's answer proves
//! them wrong (`StaleMetadata` / `BlockMoved` / `UnknownBlock` ride the
//! data-structure handles' refresh path into
//! [`resolve_fresh`](crate::JobClient::resolve_fresh)) and lazily when
//! a response carries a newer epoch. Concurrent misses for one path
//! coalesce onto a single in-flight resolve (single-flight), so a
//! thundering herd of serverless tasks attaching to the same prefix
//! costs one controller round-trip, not N.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use jiffy_common::Result;
use jiffy_proto::PrefixView;
use jiffy_sync::atomic::{AtomicU64, Ordering};
use jiffy_sync::{Arc, Mutex, RwLock};

/// Monotonic cache counters (benchmarks and tests read these; the hit
/// ratio is the paper-facing number for how rarely steady-state data
/// ops touch the controller).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    resolves: AtomicU64,
}

impl CacheStats {
    /// Lookups served from a fresh cached entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found no fresh entry.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resolve RPCs actually issued (followers of a coalesced miss do
    /// not count — only the single-flight leader pays the round-trip).
    pub fn resolves(&self) -> u64 {
        self.resolves.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 with no traffic.
    pub fn hit_ratio(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

struct Entry {
    view: PrefixView,
    /// View epoch observed on the resolve response that filled this
    /// entry; the entry dies once a newer epoch is observed anywhere.
    epoch: u64,
    /// Lease-guard expiry: the controller cannot have reclaimed or
    /// repartitioned the prefix behind our back before this instant
    /// without bumping the epoch.
    expires: Instant,
}

/// Cache key: `(job id, resolved path)`.
type Key = (u64, String);

/// The cache itself; one per [`crate::JiffyClient`], shared by every
/// job handle and data-structure handle cloned from it.
pub struct MetadataCache {
    entries: RwLock<HashMap<Key, Entry>>,
    /// Highest view epoch observed on any control response.
    epoch: AtomicU64,
    /// Per-key single-flight leader locks for coalesced misses.
    inflight: Mutex<HashMap<Key, Arc<Mutex<()>>>>,
    stats: CacheStats,
}

impl Default for MetadataCache {
    fn default() -> Self {
        Self::new()
    }
}

impl MetadataCache {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        Self {
            entries: RwLock::new(HashMap::new()),
            epoch: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            stats: CacheStats::default(),
        }
    }

    /// Folds an epoch piggybacked on a control response into the cache.
    /// Monotonic: replayed (deduplicated) responses carrying an older
    /// epoch never roll freshness back.
    pub fn observe_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::SeqCst);
    }

    /// The newest view epoch observed so far.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Counter access.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// A fresh cached view of `(job, path)`, if any. Counts a hit or a
    /// miss.
    pub fn lookup(&self, job: u64, path: &str) -> Option<PrefixView> {
        let view = self.peek(job, path);
        if view.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        view
    }

    /// [`Self::lookup`] without touching the counters (single-flight
    /// followers re-check through this so a coalesced miss is counted
    /// once, not once per waiter).
    fn peek(&self, job: u64, path: &str) -> Option<PrefixView> {
        let cur = self.current_epoch();
        let now = Instant::now();
        let entries = self.entries.read();
        match entries.get(&(job, path.to_string())) {
            Some(e) if e.epoch >= cur && now < e.expires => Some(e.view.clone()),
            _ => None,
        }
    }

    /// Drops the entry for `(job, path)`, if any.
    pub fn invalidate(&self, job: u64, path: &str) {
        self.entries.write().remove(&(job, path.to_string()));
    }

    /// Drops every entry of `job` (deregistration).
    pub fn invalidate_job(&self, job: u64) {
        self.entries.write().retain(|(j, _), _| *j != job);
    }

    /// Fills `(job, path)` through `resolve`, coalescing concurrent
    /// misses: one leader issues the RPC while every other caller waits
    /// on the per-key lock and then reads the entry the leader wrote.
    ///
    /// # Errors
    ///
    /// Whatever `resolve` returns; a failed fill is not cached, so the
    /// next caller retries.
    pub fn resolve_coalesced(
        &self,
        job: u64,
        path: &str,
        resolve: impl FnOnce() -> Result<(PrefixView, u64)>,
    ) -> Result<PrefixView> {
        let key = (job, path.to_string());
        let leader = self
            .inflight
            .lock()
            .entry(key.clone())
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone();
        // xtask-allow(no-guard-across-rpc): the single-flight leader deliberately
        // holds the per-key lock across its resolve RPC — that hold IS the
        // coalescing: concurrent misses for the same path park here and read the
        // leader's entry instead of issuing their own RPC. The lock is per-path
        // and taken only on a miss, so no data-path operation serializes on it.
        let _flight = leader.lock();
        // A follower that waited out the leader's fill: serve its entry.
        if let Some(view) = self.peek(job, path) {
            return Ok(view);
        }
        self.stats.resolves.fetch_add(1, Ordering::Relaxed);
        let out = resolve().map(|(view, epoch)| {
            let ttl = Duration::from_micros(view.lease_duration_micros.max(1));
            self.entries.write().insert(
                key.clone(),
                Entry {
                    view: view.clone(),
                    epoch,
                    expires: Instant::now() + ttl,
                },
            );
            view
        });
        // The flight is over either way; forget the leader lock (waiters
        // holding a clone still drain through it, then it drops). On the
        // error path nothing was cached, so the next caller leads a new
        // flight and retries.
        self.inflight.lock().remove(&key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(name: &str, lease_micros: u64, version: u64) -> PrefixView {
        PrefixView {
            name: name.to_string(),
            ds: None,
            partition: None,
            lease_duration_micros: lease_micros,
            parents: vec![],
            children: vec![],
            version,
        }
    }

    fn fill(cache: &MetadataCache, job: u64, path: &str, v: PrefixView, epoch: u64) {
        cache
            .resolve_coalesced(job, path, || Ok((v, epoch)))
            .unwrap();
    }

    #[test]
    fn hit_within_lease_and_epoch() {
        let c = MetadataCache::new();
        fill(&c, 1, "t0", view("t0", 60_000_000, 1), 0);
        assert_eq!(c.lookup(1, "t0").unwrap().name, "t0");
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().resolves(), 1);
    }

    #[test]
    fn lease_expiry_misses() {
        let c = MetadataCache::new();
        fill(&c, 1, "t0", view("t0", 1, 1), 0);
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.lookup(1, "t0").is_none());
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn epoch_bump_invalidates_lazily() {
        let c = MetadataCache::new();
        fill(&c, 1, "t0", view("t0", 60_000_000, 1), 0);
        assert!(c.lookup(1, "t0").is_some());
        c.observe_epoch(1);
        assert!(c.lookup(1, "t0").is_none(), "older-epoch entry must die");
        // Older epochs never roll the clock back.
        c.observe_epoch(0);
        assert!(c.lookup(1, "t0").is_none());
    }

    #[test]
    fn explicit_invalidation_and_job_teardown() {
        let c = MetadataCache::new();
        fill(&c, 1, "t0", view("t0", 60_000_000, 1), 0);
        fill(&c, 1, "t1", view("t1", 60_000_000, 1), 0);
        fill(&c, 2, "t0", view("t0", 60_000_000, 1), 0);
        c.invalidate(1, "t0");
        assert!(c.lookup(1, "t0").is_none());
        assert!(c.lookup(1, "t1").is_some());
        c.invalidate_job(1);
        assert!(c.lookup(1, "t1").is_none());
        assert!(c.lookup(2, "t0").is_some());
    }

    #[test]
    fn failed_fill_is_not_cached() {
        let c = MetadataCache::new();
        let err: Result<(PrefixView, u64)> =
            Err(jiffy_common::JiffyError::PathNotFound("t0".into()));
        assert!(c.resolve_coalesced(1, "t0", || err).is_err());
        assert!(c.lookup(1, "t0").is_none());
        assert!(c.inflight.lock().is_empty(), "flight cleaned up on error");
        // A later fill leads a fresh flight and succeeds.
        fill(&c, 1, "t0", view("t0", 60_000_000, 1), 0);
        assert!(c.lookup(1, "t0").is_some());
    }
}
