//! Typed data-structure handles with client-side `getBlock` routing.

use jiffy_sync::Arc;
use std::time::Duration;

use jiffy_common::{JiffyError, Result};
use jiffy_proto::{
    Blob, BlockLocation, ControlRequest, DataRequest, DataResponse, DsOp, DsResult, Envelope,
    OpKind, PartitionView,
};
use jiffy_sync::RwLock;

use crate::job::JobClient;
use crate::listener::Listener;
use crate::rid::next_request_id;
use crate::throttle::with_throttle_backoff;

/// Retries before a routing problem is reported to the caller. Splits
/// complete in milliseconds; 100 retries with backoff spans seconds.
const MAX_ROUTING_RETRIES: usize = 100;

/// Backoff between routing retries.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Shared plumbing for the three handles: the cached partition view and
/// the refresh/retry discipline.
struct DsCore {
    job: Arc<JobClient>,
    name: String,
    view: RwLock<PartitionView>,
}

impl DsCore {
    fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        let view = Self::fetch_view(&job, name)?;
        Ok(Self {
            job,
            name: name.to_string(),
            view: RwLock::new(view),
        })
    }

    fn fetch_view(job: &JobClient, name: &str) -> Result<PartitionView> {
        let prefix = job.resolve(name)?;
        prefix
            .partition
            .ok_or_else(|| JiffyError::WrongDataStructure {
                expected: "a bound data structure".into(),
                found: "bare prefix".into(),
            })
    }

    /// Called when a memory server disproves our routing view
    /// (`StaleMetadata` / `BlockMoved` / `UnknownBlock`): the cached
    /// resolution is wrong by construction, so bypass the metadata
    /// cache and force one fresh resolve, refilling it for everyone.
    fn refresh(&self) -> Result<()> {
        let prefix = self.job.resolve_fresh(&self.name)?;
        let view = prefix
            .partition
            .ok_or_else(|| JiffyError::WrongDataStructure {
                expected: "a bound data structure".into(),
                found: "bare prefix".into(),
            })?;
        *self.view.write() = view;
        Ok(())
    }

    fn view(&self) -> PartitionView {
        self.view.read().clone()
    }

    /// Executes a data-plane op against a block, routing writes to the
    /// chain head (with replication fan-down) and reads to the tail.
    ///
    /// `rid` is the request id minted once per *logical operation* by
    /// the caller: transport retries, throttle retries, AND
    /// routing-level retries (a promoted replica after a head failure,
    /// a migrated block's new home) all resend under the same id, so a
    /// server that already executed the op — or inherited its result
    /// via the replicated replay window — answers from cache instead of
    /// applying it twice. The id rides in the envelope (the plain `Op`
    /// path) and, for replicated writes, explicitly in the `Replicate`
    /// body so it survives the fan-down re-stamping.
    fn data_op(&self, loc: &BlockLocation, op: DsOp, is_write: bool, rid: u64) -> Result<DsResult> {
        let fabric = self.job.client().fabric();
        let req = if is_write && loc.chain.len() > 1 {
            let head = loc.head();
            DataRequest::Replicate {
                block: head.block,
                op,
                downstream: loc.chain[1..].to_vec(),
                rid,
            }
        } else {
            let replica = if is_write { loc.head() } else { loc.tail() };
            DataRequest::Op {
                block: replica.block,
                op,
            }
        };
        let addr = if is_write {
            &loc.head().addr
        } else {
            &loc.tail().addr
        };
        let tenant = self.job.client().tenant();
        with_throttle_backoff(|| {
            self.job.client().retry_policy().run(
                |_| {
                    let conn = fabric.connect(addr)?;
                    match conn.call(Envelope::DataReq {
                        id: rid,
                        req: req.clone(),
                        tenant,
                    })? {
                        Envelope::DataResp { resp, .. } => match resp? {
                            DataResponse::OpResult(r) => Ok(r),
                            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
                        },
                        other => Err(JiffyError::Rpc(format!("unexpected envelope: {other:?}"))),
                    }
                },
                |e| {
                    // Evict only when the connection itself broke: a timeout
                    // or injected unavailability leaves the session (and the
                    // server's per-session replay cache) intact, and retrying
                    // on the same session is what makes same-id dedup work.
                    if matches!(e, JiffyError::Rpc(_)) {
                        fabric.evict(addr);
                    }
                },
            )
        })
    }

    /// Issues one [`DataRequest::Batch`] (or, on a replicated chain,
    /// [`DataRequest::ReplicateBatch`]) against a block, routing like
    /// [`Self::data_op`] (writes to the chain head, reads to the tail).
    /// Returns the server's per-op results: a *prefix* of `ops` — the
    /// server stops at the first failing op, so every entry before the
    /// last is `Ok` and ops past the returned length were never
    /// attempted.
    ///
    /// `rids` carries one request id per op for writes (empty for
    /// reads): ids stay attached to their ops across rounds even when a
    /// retry regroups the pending ops into different batches, so every
    /// replica's replay window dedups per op, not per batch.
    fn batch_rpc(
        &self,
        loc: &BlockLocation,
        ops: &[DsOp],
        rids: &[u64],
        is_write: bool,
    ) -> Result<Vec<Result<DsResult>>> {
        let fabric = self.job.client().fabric();
        let req = if is_write && loc.chain.len() > 1 {
            let head = loc.head();
            DataRequest::ReplicateBatch {
                block: head.block,
                ops: ops.to_vec(),
                downstream: loc.chain[1..].to_vec(),
                rids: rids.to_vec(),
            }
        } else {
            let replica = if is_write { loc.head() } else { loc.tail() };
            DataRequest::Batch {
                block: replica.block,
                ops: ops.to_vec(),
                rids: rids.to_vec(),
            }
        };
        let addr = if is_write {
            &loc.head().addr
        } else {
            &loc.tail().addr
        };
        let tenant = self.job.client().tenant();
        let expected = ops.len();
        // One envelope id for the whole batch keeps the per-session
        // replay cache answering lost-reply transport retries as a
        // unit; the per-op `rids` inside the body are what survive
        // regrouping and failover.
        let id = next_request_id();
        with_throttle_backoff(|| {
            self.job.client().retry_policy().run(
                |_| {
                    let conn = fabric.connect(addr)?;
                    match conn.call(Envelope::DataReq {
                        id,
                        req: req.clone(),
                        tenant,
                    })? {
                        Envelope::DataResp { resp, .. } => match resp? {
                            DataResponse::Batch(results) if results.len() <= expected => {
                                Ok(results)
                            }
                            DataResponse::Batch(results) => Err(JiffyError::Rpc(format!(
                                "batch reply has {} results for {expected} ops",
                                results.len()
                            ))),
                            other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
                        },
                        other => Err(JiffyError::Rpc(format!("unexpected envelope: {other:?}"))),
                    }
                },
                |e| {
                    if matches!(e, JiffyError::Rpc(_)) {
                        fabric.evict(addr);
                    }
                },
            )
        })
    }

    /// Classifies an error hit by a batched op (or a whole batch RPC):
    /// `Ok(true)` means routing-level — refresh and retry the
    /// unfinished ops; `Ok(false)` means definitive — fail the call.
    /// Mirrors [`Self::with_routing_retries`] plus the `BlockFull`
    /// grow-then-retry discipline the single-op write paths apply.
    fn note_batch_err(&self, e: &JiffyError, loc: Option<&BlockLocation>) -> Result<bool> {
        match e {
            JiffyError::StaleMetadata
            | JiffyError::UnknownBlock(_)
            | JiffyError::BlockMoved { .. } => Ok(true),
            // An op bigger than a whole block can never fit; growing the
            // structure won't help.
            JiffyError::BlockFull {
                capacity,
                requested,
            } if requested > capacity => Ok(false),
            JiffyError::BlockFull { .. } => match loc {
                Some(loc) => {
                    self.request_split(loc.id())?;
                    Ok(true)
                }
                None => Ok(false),
            },
            JiffyError::Unavailable(_) => {
                let before = self.view();
                self.refresh()?;
                Ok(self.view() != before)
            }
            // Admission control rejected the batch before executing it;
            // honor the hint and retry the unfinished ops.
            JiffyError::Throttled { retry_after_ms } => {
                std::thread::sleep(Duration::from_millis((*retry_after_ms).clamp(1, 250)));
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Drives `total` ops to completion through block-grouped batch
    /// RPCs. Each round resolves the owner of every unfinished op,
    /// groups them by owner block preserving input order, issues one
    /// [`DataRequest::Batch`] (or [`DataRequest::ReplicateBatch`]) per
    /// block, and applies the refresh-retry discipline per sub-batch.
    /// `on_ok(i, result)` fires exactly once per op, when op `i`
    /// succeeds.
    ///
    /// Exactly-once: every write op gets a request id minted ONCE, up
    /// front, and keeps it for its whole life — across rounds, across
    /// regrouping after a split re-routes some ops, and across a
    /// chain-head failover. A retried op that already executed
    /// somewhere is answered from that replica's replay window instead
    /// of re-applying; a per-op `Err` entry is a definitive "did not
    /// execute" (errors are never window-cached), so retrying it is
    /// safe too.
    fn run_batches(
        &self,
        total: usize,
        is_write: bool,
        mut owner: impl FnMut(usize) -> Result<BlockLocation>,
        mut make_op: impl FnMut(usize) -> DsOp,
        mut on_ok: impl FnMut(usize, DsResult) -> Result<()>,
    ) -> Result<()> {
        let rids: Vec<u64> = if is_write {
            (0..total).map(|_| next_request_id()).collect()
        } else {
            Vec::new()
        };
        let mut pending: Vec<usize> = (0..total).collect();
        let mut last = None;
        for round in 0..MAX_ROUTING_RETRIES {
            if pending.is_empty() {
                return Ok(());
            }
            if round > 0 {
                self.refresh()?;
                if round > 2 {
                    std::thread::sleep(RETRY_BACKOFF);
                }
            }
            let mut groups: Vec<(BlockLocation, Vec<usize>)> = Vec::new();
            let mut next_pending: Vec<usize> = Vec::new();
            for &i in &pending {
                match owner(i) {
                    Ok(loc) => match groups.iter_mut().find(|(l, _)| l.id() == loc.id()) {
                        Some((_, idxs)) => idxs.push(i),
                        None => groups.push((loc, vec![i])),
                    },
                    Err(e) => {
                        if self.note_batch_err(&e, None)? {
                            next_pending.push(i);
                            last = Some(e);
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
            for (loc, idxs) in groups {
                let ops: Vec<DsOp> = idxs.iter().map(|&i| make_op(i)).collect();
                let group_rids: Vec<u64> = if is_write {
                    idxs.iter().map(|&i| rids[i]).collect()
                } else {
                    Vec::new()
                };
                match self.batch_rpc(&loc, &ops, &group_rids, is_write) {
                    Ok(results) => {
                        let mut done = 0;
                        let mut failed = None;
                        for r in results {
                            match r {
                                Ok(v) => {
                                    on_ok(idxs[done], v)?;
                                    done += 1;
                                }
                                Err(e) => {
                                    failed = Some(e);
                                    break;
                                }
                            }
                        }
                        if done < idxs.len() {
                            if let Some(e) = failed {
                                if self.note_batch_err(&e, Some(&loc))? {
                                    last = Some(e);
                                } else {
                                    return Err(e);
                                }
                            }
                            next_pending.extend_from_slice(&idxs[done..]);
                        }
                    }
                    Err(e) => {
                        if self.note_batch_err(&e, Some(&loc))? {
                            next_pending.extend_from_slice(&idxs);
                            last = Some(e);
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
            // Groups may complete out of input order; retried ops must
            // not (FIFO structures rely on it).
            next_pending.sort_unstable();
            pending = next_pending;
        }
        Err(last.unwrap_or(JiffyError::StaleMetadata))
    }

    /// Asks the controller to grow the structure at `block` (the
    /// demand-driven face of the overload path: a client that outran the
    /// asynchronous threshold signal forces the split synchronously).
    fn request_split(&self, block: jiffy_common::BlockId) -> Result<()> {
        self.job
            .client()
            .control(ControlRequest::ReportOverload { block, used: 0 })?;
        Ok(())
    }

    /// Runs `attempt` with the standard refresh-on-stale retry loop.
    /// Besides stale-partition signals, this also self-heals around
    /// cluster elasticity: `BlockMoved` (the block migrated — a refresh
    /// resolves the new home) always retries, while `Unavailable` (the
    /// server stopped answering) retries only when the refreshed layout
    /// actually changed — a promoted replica or a migrated/reloaded
    /// copy is worth another attempt, but data whose only home is gone
    /// surfaces as a fast, clean `Unavailable`, never a hang.
    ///
    /// One request id is minted for the WHOLE loop and passed to every
    /// attempt: after an abrupt head failure the refreshed view routes
    /// the retry to the promoted replica, and only the original id lets
    /// that replica find the request in its replicated replay window —
    /// a fresh id would re-execute an already-applied write. Reuse is
    /// safe on every path that reaches a retry: routing errors and
    /// `Unavailable` are never window-cached (servers cache only `Ok`
    /// results), so a stale error cannot be replayed after healing.
    fn with_routing_retries<T>(&self, mut attempt: impl FnMut(u64) -> Result<T>) -> Result<T> {
        let rid = next_request_id();
        let mut last = None;
        for i in 0..MAX_ROUTING_RETRIES {
            match attempt(rid) {
                Ok(v) => return Ok(v),
                Err(
                    e @ (JiffyError::StaleMetadata
                    | JiffyError::UnknownBlock(_)
                    | JiffyError::BlockMoved { .. }),
                ) => {
                    self.refresh()?;
                    last = Some(e);
                    if i > 2 {
                        std::thread::sleep(RETRY_BACKOFF);
                    }
                }
                Err(e @ JiffyError::Unavailable(_)) => {
                    let before = self.view();
                    self.refresh()?;
                    if self.view() == before {
                        return Err(e);
                    }
                    last = Some(e);
                    if i > 2 {
                        std::thread::sleep(RETRY_BACKOFF);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(last.unwrap_or(JiffyError::StaleMetadata))
    }

    fn listener(&self, ops: &[OpKind]) -> Result<Listener> {
        Listener::subscribe(self.job.client().fabric().clone(), &self.view(), ops)
    }
}

impl std::fmt::Debug for DsCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DsCore({})", self.name)
    }
}

// ---------------------------------------------------------------------------
// File
// ---------------------------------------------------------------------------

/// Handle to a Jiffy file (§5.1): a chunked append log.
///
/// `append` serializes on the tail chunk, so concurrent appenders from
/// many tasks interleave whole records (the shuffle-file mode).
/// Chunk-addressed reads are exact; a chunk may end short of its
/// capacity when an append did not fit, so `read_all` (which walks chunk
/// sizes) is the faithful way to scan a file written with `append`.
#[derive(Debug)]
pub struct FileClient {
    core: DsCore,
}

impl FileClient {
    pub(crate) fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        Ok(Self {
            core: DsCore::open(job, name)?,
        })
    }

    /// The prefix this file lives under.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    fn file_view(&self) -> Result<(u64, Vec<BlockLocation>)> {
        match self.core.view() {
            PartitionView::File { chunk_size, blocks } => Ok((chunk_size, blocks)),
            other => Err(JiffyError::WrongDataStructure {
                expected: "file".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Appends a record to the file's tail chunk, growing the file with
    /// a fresh chunk when the tail is full.
    ///
    /// # Errors
    ///
    /// [`JiffyError::BlockFull`] if the record exceeds a whole chunk;
    /// routing failures after exhausting retries.
    pub fn append(&self, data: &[u8]) -> Result<()> {
        let (chunk_size, _) = self.file_view()?;
        if data.len() as u64 > chunk_size {
            return Err(JiffyError::BlockFull {
                capacity: chunk_size as usize,
                requested: data.len(),
            });
        }
        self.core.with_routing_retries(|rid| {
            let (_, blocks) = self.file_view()?;
            let tail = blocks.last().ok_or(JiffyError::StaleMetadata)?.clone();
            match self.core.data_op(
                &tail,
                DsOp::FileAppend {
                    data: Blob::new(data.to_vec()),
                },
                true,
                rid,
            ) {
                Ok(_) => Ok(()),
                Err(JiffyError::BlockFull { .. }) => {
                    // Tail chunk full: force growth and retry through the
                    // refresh path.
                    self.core.request_split(tail.id())?;
                    Err(JiffyError::StaleMetadata)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Writes at an absolute offset (must not leave holes within the
    /// addressed chunk). Grows the file with fresh chunks as needed.
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfRange`] for holes; routing failures.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let (chunk_size, _) = self.file_view()?;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let abs = offset + cursor as u64;
            let chunk_idx = (abs / chunk_size) as usize;
            let chunk_off = abs % chunk_size;
            let take = ((chunk_size - chunk_off) as usize).min(data.len() - cursor);
            let slice = &data[cursor..cursor + take];
            self.core.with_routing_retries(|rid| {
                let (_, blocks) = self.file_view()?;
                match blocks.get(chunk_idx) {
                    Some(loc) => self
                        .core
                        .data_op(
                            loc,
                            DsOp::FileWrite {
                                offset: chunk_off,
                                data: Blob::new(slice.to_vec()),
                            },
                            true,
                            rid,
                        )
                        .map(|_| ()),
                    None => {
                        // Need more chunks: ask for growth at the current
                        // tail and retry.
                        let tail = blocks.last().ok_or(JiffyError::StaleMetadata)?;
                        self.core.request_split(tail.id())?;
                        Err(JiffyError::StaleMetadata)
                    }
                }
            })?;
            cursor += take;
        }
        Ok(())
    }

    /// Writes a gather list of buffers at an absolute offset as if they
    /// were concatenated, splitting the data on chunk boundaries and
    /// issuing one batched RPC per chunk — many small buffers cost one
    /// round trip per chunk touched instead of one per buffer.
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfRange`] for holes; routing failures. On error,
    /// a subset of the chunks may already hold their new bytes.
    pub fn write_vectored(&self, offset: u64, bufs: &[&[u8]]) -> Result<()> {
        let (chunk_size, _) = self.file_view()?;
        // Flatten the gather list into one contiguous piece per chunk.
        let mut pieces: Vec<(usize, u64, Vec<u8>)> = Vec::new();
        let mut abs = offset;
        for buf in bufs {
            let mut cursor = 0usize;
            while cursor < buf.len() {
                let chunk_idx = (abs / chunk_size) as usize;
                let chunk_off = abs % chunk_size;
                let take = ((chunk_size - chunk_off) as usize).min(buf.len() - cursor);
                match pieces.last_mut() {
                    Some((idx, off, bytes))
                        if *idx == chunk_idx && *off + bytes.len() as u64 == chunk_off =>
                    {
                        bytes.extend_from_slice(&buf[cursor..cursor + take]);
                    }
                    _ => pieces.push((chunk_idx, chunk_off, buf[cursor..cursor + take].to_vec())),
                }
                abs += take as u64;
                cursor += take;
            }
        }
        self.core.run_batches(
            pieces.len(),
            true,
            |i| {
                let (_, blocks) = self.file_view()?;
                match blocks.get(pieces[i].0) {
                    Some(loc) => Ok(loc.clone()),
                    None => {
                        // Need more chunks: grow at the tail and retry.
                        let tail = blocks.last().ok_or(JiffyError::StaleMetadata)?;
                        self.core.request_split(tail.id())?;
                        Err(JiffyError::StaleMetadata)
                    }
                }
            },
            |i| DsOp::FileWrite {
                offset: pieces[i].1,
                data: Blob::new(pieces[i].2.clone()),
            },
            |_, _| Ok(()),
        )
    }

    /// Reads up to `len` bytes at an absolute offset (paper `seek` +
    /// read). Returns fewer bytes at end-of-data.
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfRange`] when `offset` is beyond the chunk's
    /// data; routing failures.
    pub fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let (chunk_size, _) = self.file_view()?;
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        let mut abs = offset;
        while remaining > 0 {
            let chunk_idx = (abs / chunk_size) as usize;
            let chunk_off = abs % chunk_size;
            let take = (chunk_size - chunk_off).min(remaining);
            let piece = self.core.with_routing_retries(|rid| {
                let (_, blocks) = self.file_view()?;
                let Some(loc) = blocks.get(chunk_idx) else {
                    return Ok(Vec::new()); // Past the last chunk: EOF.
                };
                match self.core.data_op(
                    loc,
                    DsOp::FileRead {
                        offset: chunk_off,
                        len: take,
                    },
                    false,
                    rid,
                )? {
                    DsResult::Data(b) => Ok(b.into_inner()),
                    other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                }
            })?;
            let got = piece.len() as u64;
            out.extend_from_slice(&piece);
            if got < take {
                break; // Chunk ended short: end of data.
            }
            abs += got;
            remaining -= got;
        }
        Ok(out)
    }

    /// Reads the whole file by walking its chunks.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn read_all(&self) -> Result<Vec<u8>> {
        'restart: for _ in 0..MAX_ROUTING_RETRIES {
            self.core.refresh()?;
            let (_, blocks) = self.file_view()?;
            let mut out = Vec::new();
            for loc in &blocks {
                let size = match self.chunk_op(loc, DsOp::FileSize)? {
                    Some(DsResult::Size(s)) => s,
                    Some(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    // Chunk migrated mid-scan: rescan the new layout.
                    None => continue 'restart,
                };
                if size == 0 {
                    continue;
                }
                match self.chunk_op(
                    loc,
                    DsOp::FileRead {
                        offset: 0,
                        len: size,
                    },
                )? {
                    Some(DsResult::Data(b)) => out.extend_from_slice(&b),
                    Some(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    None => continue 'restart,
                }
            }
            return Ok(out);
        }
        Err(JiffyError::StaleMetadata)
    }

    /// One read-side chunk op; `Ok(None)` means the chunk moved (or its
    /// server went away but the layout changed), i.e. the caller should
    /// refresh and rescan.
    fn chunk_op(&self, loc: &BlockLocation, op: DsOp) -> Result<Option<DsResult>> {
        match self.core.data_op(loc, op, false, next_request_id()) {
            Ok(r) => Ok(Some(r)),
            Err(JiffyError::BlockMoved { .. }) => Ok(None),
            Err(e @ JiffyError::Unavailable(_)) => {
                let before = self.core.view();
                self.core.refresh()?;
                if self.core.view() == before {
                    Err(e)
                } else {
                    Ok(None)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Total bytes stored across chunks.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn size(&self) -> Result<u64> {
        'restart: for _ in 0..MAX_ROUTING_RETRIES {
            self.core.refresh()?;
            let (_, blocks) = self.file_view()?;
            let mut total = 0;
            for loc in &blocks {
                match self.chunk_op(loc, DsOp::FileSize)? {
                    Some(DsResult::Size(s)) => total += s,
                    Some(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    None => continue 'restart,
                }
            }
            return Ok(total);
        }
        Err(JiffyError::StaleMetadata)
    }

    /// Subscribes to write notifications on the file's current blocks.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(&self, ops: &[OpKind]) -> Result<Listener> {
        self.core.listener(ops)
    }
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

/// Handle to a Jiffy FIFO queue (§5.2).
#[derive(Debug)]
pub struct QueueClient {
    core: DsCore,
    /// Local dequeue cursor into the cached segment list; advances when
    /// a sealed segment drains (`StaleMetadata` from the server).
    head_cursor: jiffy_sync::Mutex<usize>,
    /// Client-side bound on queue length in items (paper
    /// `maxQueueLength`); `None` = unbounded.
    max_len: Option<u64>,
}

impl QueueClient {
    pub(crate) fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        Ok(Self {
            core: DsCore::open(job, name)?,
            head_cursor: jiffy_sync::Mutex::new(0),
            max_len: None,
        })
    }

    /// Sets the client-enforced maximum queue length (approximate under
    /// concurrent producers, as in the paper's client-cached design).
    pub fn with_max_len(mut self, max_len: u64) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// The prefix this queue lives under.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    fn segments(&self) -> Result<Vec<BlockLocation>> {
        match self.core.view() {
            PartitionView::Queue { segments, .. } => Ok(segments),
            other => Err(JiffyError::WrongDataStructure {
                expected: "queue".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Enqueues an item at the tail segment, linking a new segment when
    /// the tail fills.
    ///
    /// # Errors
    ///
    /// [`JiffyError::QueueFull`] when `max_len` is reached;
    /// [`JiffyError::BlockFull`] if the item exceeds a whole segment.
    pub fn enqueue(&self, item: &[u8]) -> Result<()> {
        if let Some(max) = self.max_len {
            if self.len()? >= max {
                return Err(JiffyError::QueueFull);
            }
        }
        self.core.with_routing_retries(|rid| {
            let segments = self.segments()?;
            let tail = segments.last().ok_or(JiffyError::StaleMetadata)?.clone();
            match self.core.data_op(
                &tail,
                DsOp::Enqueue {
                    item: Blob::new(item.to_vec()),
                },
                true,
                rid,
            ) {
                Ok(_) => Ok(()),
                Err(JiffyError::BlockFull {
                    capacity,
                    requested,
                }) if requested > capacity => Err(JiffyError::BlockFull {
                    capacity,
                    requested,
                }),
                Err(JiffyError::BlockFull { .. }) => {
                    self.core.request_split(tail.id())?;
                    Err(JiffyError::StaleMetadata)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Enqueues a run of items in FIFO order with one batched RPC per
    /// tail segment instead of one round trip per item. The server
    /// applies a batch in order and stops at the first failure, so a
    /// segment filling mid-batch retries only the unenqueued suffix —
    /// FIFO order is preserved end to end.
    ///
    /// # Errors
    ///
    /// [`JiffyError::QueueFull`] when `max_len` would be exceeded;
    /// [`JiffyError::BlockFull`] if an item exceeds a whole segment;
    /// routing failures. On error, a prefix of the items may already be
    /// enqueued.
    pub fn enqueue_batch<I: AsRef<[u8]>>(&self, items: &[I]) -> Result<()> {
        if let Some(max) = self.max_len {
            if self.len()? + items.len() as u64 > max {
                return Err(JiffyError::QueueFull);
            }
        }
        self.core.run_batches(
            items.len(),
            true,
            |_| {
                let segments = self.segments()?;
                segments.last().cloned().ok_or(JiffyError::StaleMetadata)
            },
            |i| DsOp::Enqueue {
                item: Blob::new(items[i].as_ref().to_vec()),
            },
            |_, _| Ok(()),
        )
    }

    /// Dequeues the oldest item; `None` when the queue is currently
    /// empty.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn dequeue(&self) -> Result<Option<Vec<u8>>> {
        self.fetch_front(true)
    }

    /// Reads the oldest item without removing it.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn peek(&self) -> Result<Option<Vec<u8>>> {
        self.fetch_front(false)
    }

    fn fetch_front(&self, remove: bool) -> Result<Option<Vec<u8>>> {
        let op = if remove { DsOp::Dequeue } else { DsOp::Peek };
        let mut refreshes = 0;
        // One request id per *target segment*: refreshes that re-route
        // the same logical dequeue (a dead or migrated segment server)
        // keep the id, so a dequeue that executed before the ack was
        // lost replays from the new home's window instead of removing a
        // second item. Advancing the cursor re-mints — the next segment
        // is a genuinely new request, and reusing the id there could
        // collide with a stale entry if the drained segment's window
        // was merged into its successor.
        let mut rid = next_request_id();
        loop {
            let segments = self.segments()?;
            let cursor = *self.head_cursor.lock();
            let Some(loc) = segments.get(cursor) else {
                // Cursor ran off the cached list: refresh and restart
                // from the new head.
                if refreshes >= MAX_ROUTING_RETRIES {
                    return Err(JiffyError::StaleMetadata);
                }
                refreshes += 1;
                self.core.refresh()?;
                *self.head_cursor.lock() = 0;
                rid = next_request_id();
                continue;
            };
            match self.core.data_op(loc, op.clone(), remove, rid) {
                Ok(DsResult::MaybeData(d)) => return Ok(d.map(Blob::into_inner)),
                Ok(other) => return Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                // Sealed + drained: advance to the next segment.
                Err(JiffyError::StaleMetadata) => {
                    let mut c = self.head_cursor.lock();
                    if *c == cursor {
                        *c += 1;
                    }
                    rid = next_request_id();
                }
                // Segment was unlinked and reset, or migrated to another
                // server: refresh the list and restart from the head.
                Err(JiffyError::UnknownBlock(_) | JiffyError::BlockMoved { .. }) => {
                    if refreshes >= MAX_ROUTING_RETRIES {
                        return Err(JiffyError::StaleMetadata);
                    }
                    refreshes += 1;
                    self.core.refresh()?;
                    *self.head_cursor.lock() = 0;
                }
                // The segment's server stopped answering. Retry only if
                // the layout moved on (drain/failover re-homed it);
                // data whose only home is gone fails fast, not forever.
                Err(e @ JiffyError::Unavailable(_)) => {
                    if refreshes >= MAX_ROUTING_RETRIES {
                        return Err(e);
                    }
                    let before = self.core.view();
                    self.core.refresh()?;
                    if self.core.view() == before {
                        return Err(e);
                    }
                    refreshes += 1;
                    *self.head_cursor.lock() = 0;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Items currently resident across segments.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn len(&self) -> Result<u64> {
        'restart: for _ in 0..MAX_ROUTING_RETRIES {
            self.core.refresh()?;
            let mut total = 0;
            for loc in self.segments()? {
                match self
                    .core
                    .data_op(&loc, DsOp::QueueLen, false, next_request_id())
                {
                    Ok(DsResult::Size(s)) => total += s,
                    Ok(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    // Unlinked while counting: skip it.
                    Err(JiffyError::UnknownBlock(_)) => continue,
                    // Migrated mid-count: recount against the new layout.
                    Err(JiffyError::BlockMoved { .. }) => continue 'restart,
                    Err(e @ JiffyError::Unavailable(_)) => {
                        let before = self.core.view();
                        self.core.refresh()?;
                        if self.core.view() == before {
                            return Err(e);
                        }
                        continue 'restart;
                    }
                    Err(e) => return Err(e),
                }
            }
            return Ok(total);
        }
        Err(JiffyError::StaleMetadata)
    }

    /// Whether the queue currently holds no items.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Subscribes to notifications (e.g. [`OpKind::Enqueue`] to learn
    /// when data is available) on the queue's current segments.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(&self, ops: &[OpKind]) -> Result<Listener> {
        self.core.listener(ops)
    }
}

// ---------------------------------------------------------------------------
// KV store
// ---------------------------------------------------------------------------

/// Handle to a Jiffy KV-store (§5.3).
#[derive(Debug)]
pub struct KvClient {
    core: DsCore,
}

impl KvClient {
    pub(crate) fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        Ok(Self {
            core: DsCore::open(job, name)?,
        })
    }

    /// The prefix this store lives under.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    fn owner_of(&self, key: &[u8]) -> Result<BlockLocation> {
        match self.core.view() {
            PartitionView::Kv { num_slots, slots } => {
                let slot = jiffy_ds::kv_slot(key, num_slots);
                slots
                    .iter()
                    .find(|s| s.contains(slot))
                    .map(|s| s.location.clone())
                    .ok_or(JiffyError::StaleMetadata)
            }
            other => Err(JiffyError::WrongDataStructure {
                expected: "kv_store".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Stores a pair, returning the previous value for the key.
    ///
    /// # Errors
    ///
    /// Capacity exhaustion after retries; routing failures.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.with_routing_retries(|rid| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Put {
                    key: Blob::new(key.to_vec()),
                    value: Blob::new(value.to_vec()),
                },
                true,
                rid,
            ) {
                Ok(DsResult::Replaced(prev)) => Ok(prev.map(Blob::into_inner)),
                Ok(other) => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                Err(JiffyError::BlockFull { .. }) => {
                    // The owner filled before the async threshold signal
                    // landed: force the split, then retry.
                    self.core.request_split(loc.id())?;
                    Err(JiffyError::StaleMetadata)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Stores many pairs with one batched RPC per owner block, returning
    /// the previous value for each key in input order. Pairs are grouped
    /// by resolved owner; a split landing mid-batch retries only the
    /// unapplied ops against the refreshed layout.
    ///
    /// # Errors
    ///
    /// Capacity exhaustion after retries; routing failures. On error, a
    /// subset of the puts may already be applied.
    pub fn multi_put<K, V>(&self, pairs: &[(K, V)]) -> Result<Vec<Option<Vec<u8>>>>
    where
        K: AsRef<[u8]>,
        V: AsRef<[u8]>,
    {
        let mut out: Vec<Option<Vec<u8>>> = vec![None; pairs.len()];
        self.core.run_batches(
            pairs.len(),
            true,
            |i| self.owner_of(pairs[i].0.as_ref()),
            |i| DsOp::Put {
                key: Blob::new(pairs[i].0.as_ref().to_vec()),
                value: Blob::new(pairs[i].1.as_ref().to_vec()),
            },
            |i, r| match r {
                DsResult::Replaced(prev) => {
                    out[i] = prev.map(Blob::into_inner);
                    Ok(())
                }
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            },
        )?;
        Ok(out)
    }

    /// Looks up many keys with one batched RPC per owner block; results
    /// come back in input order.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn multi_get<K: AsRef<[u8]>>(&self, keys: &[K]) -> Result<Vec<Option<Vec<u8>>>> {
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        self.core.run_batches(
            keys.len(),
            false,
            |i| self.owner_of(keys[i].as_ref()),
            |i| DsOp::Get {
                key: Blob::new(keys[i].as_ref().to_vec()),
            },
            |i, r| match r {
                DsResult::MaybeData(v) => {
                    out[i] = v.map(Blob::into_inner);
                    Ok(())
                }
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            },
        )?;
        Ok(out)
    }

    /// Looks up a key.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.with_routing_retries(|rid| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Get {
                    key: Blob::new(key.to_vec()),
                },
                false,
                rid,
            )? {
                DsResult::MaybeData(v) => Ok(v.map(Blob::into_inner)),
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            }
        })
    }

    /// Deletes a key, returning its previous value.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn delete(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.with_routing_retries(|rid| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Delete {
                    key: Blob::new(key.to_vec()),
                },
                true,
                rid,
            )? {
                DsResult::MaybeData(v) => Ok(v.map(Blob::into_inner)),
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            }
        })
    }

    /// Whether the key exists.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.core.with_routing_retries(|rid| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Exists {
                    key: Blob::new(key.to_vec()),
                },
                false,
                rid,
            )? {
                DsResult::Bool(b) => Ok(b),
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            }
        })
    }

    /// Number of pairs across all partition blocks.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn count(&self) -> Result<u64> {
        self.core.refresh()?;
        let view = self.core.view();
        let mut total = 0;
        for loc in view.blocks() {
            match self
                .core
                .data_op(loc, DsOp::KvCount, false, next_request_id())
            {
                Ok(DsResult::Size(s)) => total += s,
                Ok(other) => return Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                Err(JiffyError::UnknownBlock(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// Subscribes to notifications on the store's current blocks.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(&self, ops: &[OpKind]) -> Result<Listener> {
        self.core.listener(ops)
    }
}
