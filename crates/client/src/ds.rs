//! Typed data-structure handles with client-side `getBlock` routing.

use jiffy_sync::Arc;
use std::time::Duration;

use jiffy_common::{JiffyError, Result};
use jiffy_proto::{
    Blob, BlockLocation, ControlRequest, DataRequest, DataResponse, DsOp, DsResult, Envelope,
    OpKind, PartitionView,
};
use jiffy_sync::RwLock;

use crate::job::JobClient;
use crate::listener::Listener;
use crate::rid::next_request_id;

/// Retries before a routing problem is reported to the caller. Splits
/// complete in milliseconds; 100 retries with backoff spans seconds.
const MAX_ROUTING_RETRIES: usize = 100;

/// Backoff between routing retries.
const RETRY_BACKOFF: Duration = Duration::from_millis(2);

/// Shared plumbing for the three handles: the cached partition view and
/// the refresh/retry discipline.
struct DsCore {
    job: Arc<JobClient>,
    name: String,
    view: RwLock<PartitionView>,
}

impl DsCore {
    fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        let view = Self::fetch_view(&job, name)?;
        Ok(Self {
            job,
            name: name.to_string(),
            view: RwLock::new(view),
        })
    }

    fn fetch_view(job: &JobClient, name: &str) -> Result<PartitionView> {
        let prefix = job.resolve(name)?;
        prefix
            .partition
            .ok_or_else(|| JiffyError::WrongDataStructure {
                expected: "a bound data structure".into(),
                found: "bare prefix".into(),
            })
    }

    fn refresh(&self) -> Result<()> {
        let view = Self::fetch_view(&self.job, &self.name)?;
        *self.view.write() = view;
        Ok(())
    }

    fn view(&self) -> PartitionView {
        self.view.read().clone()
    }

    /// Executes a data-plane op against a block, routing writes to the
    /// chain head (with replication fan-down) and reads to the tail.
    fn data_op(&self, loc: &BlockLocation, op: DsOp, is_write: bool) -> Result<DsResult> {
        let fabric = self.job.client().fabric();
        let req = if is_write && loc.chain.len() > 1 {
            let head = loc.head();
            DataRequest::Replicate {
                block: head.block,
                op,
                downstream: loc.chain[1..].to_vec(),
            }
        } else {
            let replica = if is_write { loc.head() } else { loc.tail() };
            DataRequest::Op {
                block: replica.block,
                op,
            }
        };
        let addr = if is_write {
            &loc.head().addr
        } else {
            &loc.tail().addr
        };
        // One id for the whole operation: transport-level retries resend
        // the identical envelope, so a server that already executed it
        // (lost reply) answers from its replay cache instead of applying
        // the op twice.
        let id = next_request_id();
        self.job.client().retry_policy().run(
            |_| {
                let conn = fabric.connect(addr)?;
                match conn.call(Envelope::DataReq {
                    id,
                    req: req.clone(),
                })? {
                    Envelope::DataResp { resp, .. } => match resp? {
                        DataResponse::OpResult(r) => Ok(r),
                        other => Err(JiffyError::Rpc(format!("unexpected reply: {other:?}"))),
                    },
                    other => Err(JiffyError::Rpc(format!("unexpected envelope: {other:?}"))),
                }
            },
            |e| {
                // Evict only when the connection itself broke: a timeout
                // or injected unavailability leaves the session (and the
                // server's per-session replay cache) intact, and retrying
                // on the same session is what makes same-id dedup work.
                if matches!(e, JiffyError::Rpc(_)) {
                    fabric.evict(addr);
                }
            },
        )
    }

    /// Asks the controller to grow the structure at `block` (the
    /// demand-driven face of the overload path: a client that outran the
    /// asynchronous threshold signal forces the split synchronously).
    fn request_split(&self, block: jiffy_common::BlockId) -> Result<()> {
        self.job
            .client()
            .control(ControlRequest::ReportOverload { block, used: 0 })?;
        Ok(())
    }

    /// Runs `attempt` with the standard refresh-on-stale retry loop.
    /// Besides stale-partition signals, this also self-heals around
    /// cluster elasticity: `BlockMoved` (the block migrated — a refresh
    /// resolves the new home) always retries, while `Unavailable` (the
    /// server stopped answering) retries only when the refreshed layout
    /// actually changed — a promoted replica or a migrated/reloaded
    /// copy is worth another attempt, but data whose only home is gone
    /// surfaces as a fast, clean `Unavailable`, never a hang.
    fn with_routing_retries<T>(&self, mut attempt: impl FnMut() -> Result<T>) -> Result<T> {
        let mut last = None;
        for i in 0..MAX_ROUTING_RETRIES {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(
                    e @ (JiffyError::StaleMetadata
                    | JiffyError::UnknownBlock(_)
                    | JiffyError::BlockMoved { .. }),
                ) => {
                    self.refresh()?;
                    last = Some(e);
                    if i > 2 {
                        std::thread::sleep(RETRY_BACKOFF);
                    }
                }
                Err(e @ JiffyError::Unavailable(_)) => {
                    let before = self.view();
                    self.refresh()?;
                    if self.view() == before {
                        return Err(e);
                    }
                    last = Some(e);
                    if i > 2 {
                        std::thread::sleep(RETRY_BACKOFF);
                    }
                }
                Err(other) => return Err(other),
            }
        }
        Err(last.unwrap_or(JiffyError::StaleMetadata))
    }

    fn listener(&self, ops: &[OpKind]) -> Result<Listener> {
        Listener::subscribe(self.job.client().fabric().clone(), &self.view(), ops)
    }
}

impl std::fmt::Debug for DsCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DsCore({})", self.name)
    }
}

// ---------------------------------------------------------------------------
// File
// ---------------------------------------------------------------------------

/// Handle to a Jiffy file (§5.1): a chunked append log.
///
/// `append` serializes on the tail chunk, so concurrent appenders from
/// many tasks interleave whole records (the shuffle-file mode).
/// Chunk-addressed reads are exact; a chunk may end short of its
/// capacity when an append did not fit, so `read_all` (which walks chunk
/// sizes) is the faithful way to scan a file written with `append`.
#[derive(Debug)]
pub struct FileClient {
    core: DsCore,
}

impl FileClient {
    pub(crate) fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        Ok(Self {
            core: DsCore::open(job, name)?,
        })
    }

    /// The prefix this file lives under.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    fn file_view(&self) -> Result<(u64, Vec<BlockLocation>)> {
        match self.core.view() {
            PartitionView::File { chunk_size, blocks } => Ok((chunk_size, blocks)),
            other => Err(JiffyError::WrongDataStructure {
                expected: "file".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Appends a record to the file's tail chunk, growing the file with
    /// a fresh chunk when the tail is full.
    ///
    /// # Errors
    ///
    /// [`JiffyError::BlockFull`] if the record exceeds a whole chunk;
    /// routing failures after exhausting retries.
    pub fn append(&self, data: &[u8]) -> Result<()> {
        let (chunk_size, _) = self.file_view()?;
        if data.len() as u64 > chunk_size {
            return Err(JiffyError::BlockFull {
                capacity: chunk_size as usize,
                requested: data.len(),
            });
        }
        self.core.with_routing_retries(|| {
            let (_, blocks) = self.file_view()?;
            let tail = blocks.last().ok_or(JiffyError::StaleMetadata)?.clone();
            match self.core.data_op(
                &tail,
                DsOp::FileAppend {
                    data: Blob::new(data.to_vec()),
                },
                true,
            ) {
                Ok(_) => Ok(()),
                Err(JiffyError::BlockFull { .. }) => {
                    // Tail chunk full: force growth and retry through the
                    // refresh path.
                    self.core.request_split(tail.id())?;
                    Err(JiffyError::StaleMetadata)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Writes at an absolute offset (must not leave holes within the
    /// addressed chunk). Grows the file with fresh chunks as needed.
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfRange`] for holes; routing failures.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let (chunk_size, _) = self.file_view()?;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let abs = offset + cursor as u64;
            let chunk_idx = (abs / chunk_size) as usize;
            let chunk_off = abs % chunk_size;
            let take = ((chunk_size - chunk_off) as usize).min(data.len() - cursor);
            let slice = &data[cursor..cursor + take];
            self.core.with_routing_retries(|| {
                let (_, blocks) = self.file_view()?;
                match blocks.get(chunk_idx) {
                    Some(loc) => self
                        .core
                        .data_op(
                            loc,
                            DsOp::FileWrite {
                                offset: chunk_off,
                                data: Blob::new(slice.to_vec()),
                            },
                            true,
                        )
                        .map(|_| ()),
                    None => {
                        // Need more chunks: ask for growth at the current
                        // tail and retry.
                        let tail = blocks.last().ok_or(JiffyError::StaleMetadata)?;
                        self.core.request_split(tail.id())?;
                        Err(JiffyError::StaleMetadata)
                    }
                }
            })?;
            cursor += take;
        }
        Ok(())
    }

    /// Reads up to `len` bytes at an absolute offset (paper `seek` +
    /// read). Returns fewer bytes at end-of-data.
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfRange`] when `offset` is beyond the chunk's
    /// data; routing failures.
    pub fn read_at(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        let (chunk_size, _) = self.file_view()?;
        let mut out = Vec::with_capacity(len as usize);
        let mut remaining = len;
        let mut abs = offset;
        while remaining > 0 {
            let chunk_idx = (abs / chunk_size) as usize;
            let chunk_off = abs % chunk_size;
            let take = (chunk_size - chunk_off).min(remaining);
            let piece = self.core.with_routing_retries(|| {
                let (_, blocks) = self.file_view()?;
                let Some(loc) = blocks.get(chunk_idx) else {
                    return Ok(Vec::new()); // Past the last chunk: EOF.
                };
                match self.core.data_op(
                    loc,
                    DsOp::FileRead {
                        offset: chunk_off,
                        len: take,
                    },
                    false,
                )? {
                    DsResult::Data(b) => Ok(b.into_inner()),
                    other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                }
            })?;
            let got = piece.len() as u64;
            out.extend_from_slice(&piece);
            if got < take {
                break; // Chunk ended short: end of data.
            }
            abs += got;
            remaining -= got;
        }
        Ok(out)
    }

    /// Reads the whole file by walking its chunks.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn read_all(&self) -> Result<Vec<u8>> {
        'restart: for _ in 0..MAX_ROUTING_RETRIES {
            self.core.refresh()?;
            let (_, blocks) = self.file_view()?;
            let mut out = Vec::new();
            for loc in &blocks {
                let size = match self.chunk_op(loc, DsOp::FileSize)? {
                    Some(DsResult::Size(s)) => s,
                    Some(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    // Chunk migrated mid-scan: rescan the new layout.
                    None => continue 'restart,
                };
                if size == 0 {
                    continue;
                }
                match self.chunk_op(
                    loc,
                    DsOp::FileRead {
                        offset: 0,
                        len: size,
                    },
                )? {
                    Some(DsResult::Data(b)) => out.extend_from_slice(&b),
                    Some(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    None => continue 'restart,
                }
            }
            return Ok(out);
        }
        Err(JiffyError::StaleMetadata)
    }

    /// One read-side chunk op; `Ok(None)` means the chunk moved (or its
    /// server went away but the layout changed), i.e. the caller should
    /// refresh and rescan.
    fn chunk_op(&self, loc: &BlockLocation, op: DsOp) -> Result<Option<DsResult>> {
        match self.core.data_op(loc, op, false) {
            Ok(r) => Ok(Some(r)),
            Err(JiffyError::BlockMoved { .. }) => Ok(None),
            Err(e @ JiffyError::Unavailable(_)) => {
                let before = self.core.view();
                self.core.refresh()?;
                if self.core.view() == before {
                    Err(e)
                } else {
                    Ok(None)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Total bytes stored across chunks.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn size(&self) -> Result<u64> {
        'restart: for _ in 0..MAX_ROUTING_RETRIES {
            self.core.refresh()?;
            let (_, blocks) = self.file_view()?;
            let mut total = 0;
            for loc in &blocks {
                match self.chunk_op(loc, DsOp::FileSize)? {
                    Some(DsResult::Size(s)) => total += s,
                    Some(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    None => continue 'restart,
                }
            }
            return Ok(total);
        }
        Err(JiffyError::StaleMetadata)
    }

    /// Subscribes to write notifications on the file's current blocks.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(&self, ops: &[OpKind]) -> Result<Listener> {
        self.core.listener(ops)
    }
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

/// Handle to a Jiffy FIFO queue (§5.2).
#[derive(Debug)]
pub struct QueueClient {
    core: DsCore,
    /// Local dequeue cursor into the cached segment list; advances when
    /// a sealed segment drains (`StaleMetadata` from the server).
    head_cursor: jiffy_sync::Mutex<usize>,
    /// Client-side bound on queue length in items (paper
    /// `maxQueueLength`); `None` = unbounded.
    max_len: Option<u64>,
}

impl QueueClient {
    pub(crate) fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        Ok(Self {
            core: DsCore::open(job, name)?,
            head_cursor: jiffy_sync::Mutex::new(0),
            max_len: None,
        })
    }

    /// Sets the client-enforced maximum queue length (approximate under
    /// concurrent producers, as in the paper's client-cached design).
    pub fn with_max_len(mut self, max_len: u64) -> Self {
        self.max_len = Some(max_len);
        self
    }

    /// The prefix this queue lives under.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    fn segments(&self) -> Result<Vec<BlockLocation>> {
        match self.core.view() {
            PartitionView::Queue { segments, .. } => Ok(segments),
            other => Err(JiffyError::WrongDataStructure {
                expected: "queue".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Enqueues an item at the tail segment, linking a new segment when
    /// the tail fills.
    ///
    /// # Errors
    ///
    /// [`JiffyError::QueueFull`] when `max_len` is reached;
    /// [`JiffyError::BlockFull`] if the item exceeds a whole segment.
    pub fn enqueue(&self, item: &[u8]) -> Result<()> {
        if let Some(max) = self.max_len {
            if self.len()? >= max {
                return Err(JiffyError::QueueFull);
            }
        }
        self.core.with_routing_retries(|| {
            let segments = self.segments()?;
            let tail = segments.last().ok_or(JiffyError::StaleMetadata)?.clone();
            match self.core.data_op(
                &tail,
                DsOp::Enqueue {
                    item: Blob::new(item.to_vec()),
                },
                true,
            ) {
                Ok(_) => Ok(()),
                Err(JiffyError::BlockFull {
                    capacity,
                    requested,
                }) if requested > capacity => Err(JiffyError::BlockFull {
                    capacity,
                    requested,
                }),
                Err(JiffyError::BlockFull { .. }) => {
                    self.core.request_split(tail.id())?;
                    Err(JiffyError::StaleMetadata)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Dequeues the oldest item; `None` when the queue is currently
    /// empty.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn dequeue(&self) -> Result<Option<Vec<u8>>> {
        self.fetch_front(true)
    }

    /// Reads the oldest item without removing it.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn peek(&self) -> Result<Option<Vec<u8>>> {
        self.fetch_front(false)
    }

    fn fetch_front(&self, remove: bool) -> Result<Option<Vec<u8>>> {
        let op = if remove { DsOp::Dequeue } else { DsOp::Peek };
        let mut refreshes = 0;
        loop {
            let segments = self.segments()?;
            let cursor = *self.head_cursor.lock();
            let Some(loc) = segments.get(cursor) else {
                // Cursor ran off the cached list: refresh and restart
                // from the new head.
                if refreshes >= MAX_ROUTING_RETRIES {
                    return Err(JiffyError::StaleMetadata);
                }
                refreshes += 1;
                self.core.refresh()?;
                *self.head_cursor.lock() = 0;
                continue;
            };
            match self.core.data_op(loc, op.clone(), remove) {
                Ok(DsResult::MaybeData(d)) => return Ok(d.map(Blob::into_inner)),
                Ok(other) => return Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                // Sealed + drained: advance to the next segment.
                Err(JiffyError::StaleMetadata) => {
                    let mut c = self.head_cursor.lock();
                    if *c == cursor {
                        *c += 1;
                    }
                }
                // Segment was unlinked and reset, or migrated to another
                // server: refresh the list and restart from the head.
                Err(JiffyError::UnknownBlock(_) | JiffyError::BlockMoved { .. }) => {
                    if refreshes >= MAX_ROUTING_RETRIES {
                        return Err(JiffyError::StaleMetadata);
                    }
                    refreshes += 1;
                    self.core.refresh()?;
                    *self.head_cursor.lock() = 0;
                }
                // The segment's server stopped answering. Retry only if
                // the layout moved on (drain/failover re-homed it);
                // data whose only home is gone fails fast, not forever.
                Err(e @ JiffyError::Unavailable(_)) => {
                    if refreshes >= MAX_ROUTING_RETRIES {
                        return Err(e);
                    }
                    let before = self.core.view();
                    self.core.refresh()?;
                    if self.core.view() == before {
                        return Err(e);
                    }
                    refreshes += 1;
                    *self.head_cursor.lock() = 0;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Items currently resident across segments.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn len(&self) -> Result<u64> {
        'restart: for _ in 0..MAX_ROUTING_RETRIES {
            self.core.refresh()?;
            let mut total = 0;
            for loc in self.segments()? {
                match self.core.data_op(&loc, DsOp::QueueLen, false) {
                    Ok(DsResult::Size(s)) => total += s,
                    Ok(other) => {
                        return Err(JiffyError::Rpc(format!("unexpected result {other:?}")))
                    }
                    // Unlinked while counting: skip it.
                    Err(JiffyError::UnknownBlock(_)) => continue,
                    // Migrated mid-count: recount against the new layout.
                    Err(JiffyError::BlockMoved { .. }) => continue 'restart,
                    Err(e @ JiffyError::Unavailable(_)) => {
                        let before = self.core.view();
                        self.core.refresh()?;
                        if self.core.view() == before {
                            return Err(e);
                        }
                        continue 'restart;
                    }
                    Err(e) => return Err(e),
                }
            }
            return Ok(total);
        }
        Err(JiffyError::StaleMetadata)
    }

    /// Whether the queue currently holds no items.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Subscribes to notifications (e.g. [`OpKind::Enqueue`] to learn
    /// when data is available) on the queue's current segments.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(&self, ops: &[OpKind]) -> Result<Listener> {
        self.core.listener(ops)
    }
}

// ---------------------------------------------------------------------------
// KV store
// ---------------------------------------------------------------------------

/// Handle to a Jiffy KV-store (§5.3).
#[derive(Debug)]
pub struct KvClient {
    core: DsCore,
}

impl KvClient {
    pub(crate) fn open(job: Arc<JobClient>, name: &str) -> Result<Self> {
        Ok(Self {
            core: DsCore::open(job, name)?,
        })
    }

    /// The prefix this store lives under.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    fn owner_of(&self, key: &[u8]) -> Result<BlockLocation> {
        match self.core.view() {
            PartitionView::Kv { num_slots, slots } => {
                let slot = jiffy_ds::kv_slot(key, num_slots);
                slots
                    .iter()
                    .find(|s| s.contains(slot))
                    .map(|s| s.location.clone())
                    .ok_or(JiffyError::StaleMetadata)
            }
            other => Err(JiffyError::WrongDataStructure {
                expected: "kv_store".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    /// Stores a pair, returning the previous value for the key.
    ///
    /// # Errors
    ///
    /// Capacity exhaustion after retries; routing failures.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.with_routing_retries(|| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Put {
                    key: Blob::new(key.to_vec()),
                    value: Blob::new(value.to_vec()),
                },
                true,
            ) {
                Ok(DsResult::Replaced(prev)) => Ok(prev.map(Blob::into_inner)),
                Ok(other) => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                Err(JiffyError::BlockFull { .. }) => {
                    // The owner filled before the async threshold signal
                    // landed: force the split, then retry.
                    self.core.request_split(loc.id())?;
                    Err(JiffyError::StaleMetadata)
                }
                Err(e) => Err(e),
            }
        })
    }

    /// Looks up a key.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.with_routing_retries(|| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Get {
                    key: Blob::new(key.to_vec()),
                },
                false,
            )? {
                DsResult::MaybeData(v) => Ok(v.map(Blob::into_inner)),
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            }
        })
    }

    /// Deletes a key, returning its previous value.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn delete(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.with_routing_retries(|| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Delete {
                    key: Blob::new(key.to_vec()),
                },
                true,
            )? {
                DsResult::MaybeData(v) => Ok(v.map(Blob::into_inner)),
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            }
        })
    }

    /// Whether the key exists.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn exists(&self, key: &[u8]) -> Result<bool> {
        self.core.with_routing_retries(|| {
            let loc = self.owner_of(key)?;
            match self.core.data_op(
                &loc,
                DsOp::Exists {
                    key: Blob::new(key.to_vec()),
                },
                false,
            )? {
                DsResult::Bool(b) => Ok(b),
                other => Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
            }
        })
    }

    /// Number of pairs across all partition blocks.
    ///
    /// # Errors
    ///
    /// Routing failures.
    pub fn count(&self) -> Result<u64> {
        self.core.refresh()?;
        let view = self.core.view();
        let mut total = 0;
        for loc in view.blocks() {
            match self.core.data_op(loc, DsOp::KvCount, false) {
                Ok(DsResult::Size(s)) => total += s,
                Ok(other) => return Err(JiffyError::Rpc(format!("unexpected result {other:?}"))),
                Err(JiffyError::UnknownBlock(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    /// Subscribes to notifications on the store's current blocks.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn subscribe(&self, ops: &[OpKind]) -> Result<Listener> {
        self.core.listener(ops)
    }
}
