//! Background lease renewal.
//!
//! In the paper's programming models a master process renews leases for
//! the prefixes of currently running tasks (§5). [`LeaseRenewer`] is
//! that loop: it renews each registered prefix every `interval` until
//! stopped or dropped. Thanks to DAG propagation (§3.2) one renewal per
//! running task suffices to keep its inputs and consumers alive.

use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::Arc;
use std::time::Duration;

use jiffy_sync::Mutex;

use crate::job::JobClient;

/// Periodically renews leases for a set of prefixes.
pub struct LeaseRenewer {
    prefixes: Arc<Mutex<Vec<String>>>,
    stop: Arc<AtomicBool>,
    renewals: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl LeaseRenewer {
    /// Starts the renewal loop.
    pub fn start(job: JobClient, prefixes: Vec<String>, interval: Duration) -> Self {
        let prefixes = Arc::new(Mutex::new(prefixes));
        let stop = Arc::new(AtomicBool::new(false));
        let renewals = Arc::new(AtomicU64::new(0));
        let (p2, s2, r2) = (prefixes.clone(), stop.clone(), renewals.clone());
        let thread = std::thread::Builder::new()
            .name("jiffy-lease-renewer".into())
            .spawn(move || {
                while !s2.load(Ordering::SeqCst) {
                    let current: Vec<String> = p2.lock().clone();
                    for p in &current {
                        if job.renew_lease(p).is_ok() {
                            r2.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn lease renewer");
        Self {
            prefixes,
            stop,
            renewals,
            thread: Some(thread),
        }
    }

    /// Adds a prefix to the renewal set (a task started).
    pub fn track(&self, prefix: impl Into<String>) {
        let p = prefix.into();
        let mut list = self.prefixes.lock();
        if !list.contains(&p) {
            list.push(p);
        }
    }

    /// Removes a prefix from the renewal set (a task finished; its data
    /// stays alive only while dependents renew — §3.2).
    pub fn untrack(&self, prefix: &str) {
        self.prefixes.lock().retain(|p| p != prefix);
    }

    /// Total successful renewal calls issued so far.
    pub fn renewals(&self) -> u64 {
        self.renewals.load(Ordering::Relaxed)
    }

    /// Stops the loop and waits for the thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for LeaseRenewer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for LeaseRenewer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LeaseRenewer({} prefixes)", self.prefixes.lock().len())
    }
}
