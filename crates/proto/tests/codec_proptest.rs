//! Property-based tests: the wire codec round-trips arbitrary values and
//! never panics on arbitrary input bytes, and the frame layer survives
//! truncation and corruption with clean errors.

use std::io::Cursor;

use jiffy_common::{BlockId, TenantId};
use jiffy_proto::frame::{read_frame, write_frame};
use jiffy_proto::wire::{from_bytes, to_bytes};
use jiffy_proto::{Blob, ControlRequest, DataRequest, DataResponse, DsOp, DsResult, Envelope};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TreeOp {
    Leaf(u64),
    Pair(String, Vec<u8>),
    Rec {
        children: Vec<TreeOp>,
        tag: Option<i32>,
    },
}

fn tree_strategy() -> impl Strategy<Value = TreeOp> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(TreeOp::Leaf),
        (".{0,16}", proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(s, v)| TreeOp::Pair(s, v)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (proptest::collection::vec(inner, 0..4), any::<Option<i32>>())
            .prop_map(|(children, tag)| TreeOp::Rec { children, tag })
    })
}

/// Real protocol envelopes covering both planes, success and error
/// responses, and binary payloads.
fn envelope_strategy() -> impl Strategy<Value = Envelope> {
    prop_oneof![
        (1u64..u64::MAX, ".{0,12}", any::<u64>()).prop_map(|(id, name, tenant)| {
            Envelope::ControlReq {
                id,
                req: ControlRequest::RegisterJob { name },
                tenant: TenantId(tenant),
            }
        }),
        (
            1u64..u64::MAX,
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..128),
            any::<u64>(),
        )
            .prop_map(|(id, block, data, tenant)| Envelope::DataReq {
                id,
                req: DataRequest::Op {
                    block: BlockId(block),
                    op: DsOp::FileWrite {
                        offset: 0,
                        data: Blob(data),
                    },
                },
                tenant: TenantId(tenant),
            }),
        (
            1u64..u64::MAX,
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(id, data)| {
                Envelope::DataResp {
                    id,
                    resp: Ok(DataResponse::OpResult(DsResult::MaybeData(Some(Blob(
                        data,
                    ))))),
                }
            }),
        (1u64..u64::MAX, ".{0,24}").prop_map(|(id, msg)| Envelope::DataResp {
            id,
            resp: Err(jiffy_common::JiffyError::Unavailable(msg)),
        }),
    ]
}

proptest! {
    #[test]
    fn round_trips_arbitrary_scalars(v in any::<(bool, u8, i16, u32, i64, f64, char)>()) {
        let bytes = to_bytes(&v).unwrap();
        let back: (bool, u8, i16, u32, i64, f64, char) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn round_trips_strings(s in ".{0,256}") {
        let bytes = to_bytes(&s).unwrap();
        let back: String = from_bytes(&bytes).unwrap();
        prop_assert_eq!(s, back);
    }

    #[test]
    fn round_trips_byte_vectors(v in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let bytes = to_bytes(&v).unwrap();
        let back: Vec<u8> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn round_trips_recursive_enums(t in tree_strategy()) {
        let bytes = to_bytes(&t).unwrap();
        let back: TreeOp = from_bytes(&bytes).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn round_trips_maps(m in proptest::collection::btree_map(".{0,8}", any::<u64>(), 0..32)) {
        let bytes = to_bytes(&m).unwrap();
        let back: std::collections::BTreeMap<String, u64> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn decoding_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine as long as it is a clean Result.
        let _ = from_bytes::<TreeOp>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = from_bytes::<Vec<u64>>(&bytes);
        let _ = from_bytes::<jiffy_proto::Envelope>(&bytes);
    }

    #[test]
    fn framed_envelopes_round_trip(envelopes in proptest::collection::vec(envelope_strategy(), 0..8)) {
        let mut buf = Vec::new();
        for env in &envelopes {
            write_frame(&mut buf, &to_bytes(env).unwrap()).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for env in &envelopes {
            let payload = read_frame(&mut cur).unwrap().expect("frame present");
            let back: Envelope = from_bytes(&payload).unwrap();
            prop_assert_eq!(env, &back);
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none(), "stream must end cleanly");
    }

    #[test]
    fn truncated_frame_stream_errors_cleanly(
        envelopes in proptest::collection::vec(envelope_strategy(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        let mut boundaries = Vec::new();
        for env in &envelopes {
            write_frame(&mut buf, &to_bytes(env).unwrap()).unwrap();
            boundaries.push(buf.len());
        }
        let cut = ((buf.len() - 1) as f64 * cut_frac) as usize;
        buf.truncate(cut);
        let mut cur = Cursor::new(&buf);
        // Complete prefix frames still decode to the original envelopes;
        // the read at the truncation point is either a clean end-of-stream
        // (cut exactly between frames) or an error — never a panic and
        // never a mangled success.
        let whole = boundaries.iter().filter(|&&b| b <= cut).count();
        for env in &envelopes[..whole] {
            let payload = read_frame(&mut cur).unwrap().expect("complete frame");
            let back: Envelope = from_bytes(&payload).unwrap();
            prop_assert_eq!(env, &back);
        }
        match read_frame(&mut cur) {
            Ok(None) => prop_assert!(boundaries.contains(&cut) || cut == 0),
            Ok(Some(_)) => prop_assert!(false, "truncated frame decoded as complete"),
            Err(_) => {}
        }
    }

    #[test]
    fn corrupted_frame_stream_never_panics(
        envelopes in proptest::collection::vec(envelope_strategy(), 1..6),
        flip_frac in 0.0f64..1.0,
        flip_mask in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        for env in &envelopes {
            write_frame(&mut buf, &to_bytes(env).unwrap()).unwrap();
        }
        let idx = ((buf.len() - 1) as f64 * flip_frac) as usize;
        buf[idx] ^= flip_mask;
        // Any mix of Ok/Err is acceptable; the property is no panic and
        // no runaway allocation from a corrupt length prefix.
        let mut cur = Cursor::new(&buf);
        while let Ok(Some(payload)) = read_frame(&mut cur) {
            let _ = from_bytes::<Envelope>(&payload);
        }
    }

    #[test]
    fn arbitrary_bytes_as_frame_stream_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut cur = Cursor::new(&bytes);
        while let Ok(Some(payload)) = read_frame(&mut cur) {
            let _ = from_bytes::<Envelope>(&payload);
        }
    }

    #[test]
    fn truncation_never_round_trips_silently(t in tree_strategy(), cut_frac in 0.0f64..1.0) {
        let bytes = to_bytes(&t).unwrap();
        if bytes.len() > 1 {
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            // Either decoding fails, or (only possible if the prefix
            // happens to decode to something) it must not equal the
            // original with trailing bytes — from_bytes rejects trailing
            // bytes, so a strict prefix can only succeed by decoding to a
            // *different* value of the same byte length, which is
            // impossible. Assert failure outright.
            prop_assert!(from_bytes::<TreeOp>(&bytes[..cut]).is_err());
        }
    }
}
