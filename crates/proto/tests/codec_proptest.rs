//! Property-based tests: the wire codec round-trips arbitrary values and
//! never panics on arbitrary input bytes.

use jiffy_proto::wire::{from_bytes, to_bytes};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TreeOp {
    Leaf(u64),
    Pair(String, Vec<u8>),
    Rec {
        children: Vec<TreeOp>,
        tag: Option<i32>,
    },
}

fn tree_strategy() -> impl Strategy<Value = TreeOp> {
    let leaf = prop_oneof![
        any::<u64>().prop_map(TreeOp::Leaf),
        (".{0,16}", proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(s, v)| TreeOp::Pair(s, v)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (proptest::collection::vec(inner, 0..4), any::<Option<i32>>())
            .prop_map(|(children, tag)| TreeOp::Rec { children, tag })
    })
}

proptest! {
    #[test]
    fn round_trips_arbitrary_scalars(v in any::<(bool, u8, i16, u32, i64, f64, char)>()) {
        let bytes = to_bytes(&v).unwrap();
        let back: (bool, u8, i16, u32, i64, f64, char) = from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn round_trips_strings(s in ".{0,256}") {
        let bytes = to_bytes(&s).unwrap();
        let back: String = from_bytes(&bytes).unwrap();
        prop_assert_eq!(s, back);
    }

    #[test]
    fn round_trips_byte_vectors(v in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let bytes = to_bytes(&v).unwrap();
        let back: Vec<u8> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(v, back);
    }

    #[test]
    fn round_trips_recursive_enums(t in tree_strategy()) {
        let bytes = to_bytes(&t).unwrap();
        let back: TreeOp = from_bytes(&bytes).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn round_trips_maps(m in proptest::collection::btree_map(".{0,8}", any::<u64>(), 0..32)) {
        let bytes = to_bytes(&m).unwrap();
        let back: std::collections::BTreeMap<String, u64> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn decoding_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine as long as it is a clean Result.
        let _ = from_bytes::<TreeOp>(&bytes);
        let _ = from_bytes::<String>(&bytes);
        let _ = from_bytes::<Vec<u64>>(&bytes);
        let _ = from_bytes::<jiffy_proto::Envelope>(&bytes);
    }

    #[test]
    fn truncation_never_round_trips_silently(t in tree_strategy(), cut_frac in 0.0f64..1.0) {
        let bytes = to_bytes(&t).unwrap();
        if bytes.len() > 1 {
            let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
            // Either decoding fails, or (only possible if the prefix
            // happens to decode to something) it must not equal the
            // original with trailing bytes — from_bytes rejects trailing
            // bytes, so a strict prefix can only succeed by decoding to a
            // *different* value of the same byte length, which is
            // impossible. Assert failure outright.
            prop_assert!(from_bytes::<TreeOp>(&bytes[..cut]).is_err());
        }
    }
}
