//! Property-based tests for the PR 4 fast-path codec entry points:
//! single-buffer [`encode_frame`], buffer-reusing [`read_frame_into`] /
//! [`to_bytes_into`], and the `Batch` envelope variants.
//!
//! The legacy codec paths are covered by `codec_proptest.rs`; this file
//! pins the zero-copy variants to them — same bytes on the wire, same
//! values back out.

use std::io::Cursor;

use jiffy_common::{BlockId, JiffyError, TenantId};
use jiffy_proto::frame::{
    encode_frame, read_frame, read_frame_into, write_frame, FrameAssembler, MAX_FRAME_LEN,
};
use jiffy_proto::wire::{from_bytes, to_bytes, to_bytes_into};
use jiffy_proto::{Blob, DataRequest, DataResponse, DsOp, DsResult, Envelope};
use proptest::prelude::*;

fn ds_op_strategy() -> impl Strategy<Value = DsOp> {
    prop_oneof![
        (
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(key, value)| DsOp::Put {
                key: Blob(key),
                value: Blob(value),
            }),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|key| DsOp::Get { key: Blob(key) }),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|item| DsOp::Enqueue { item: Blob(item) }),
        Just(DsOp::Dequeue),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(offset, data)| {
            DsOp::FileWrite {
                offset,
                data: Blob(data),
            }
        }),
    ]
}

fn ds_result_strategy() -> impl Strategy<Value = Result<DsResult, JiffyError>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|d| Ok(DsResult::MaybeData(Some(Blob(d))))),
        Just(Ok(DsResult::MaybeData(None))),
        Just(Ok(DsResult::Ok)),
        (any::<usize>(), any::<usize>()).prop_map(|(requested, capacity)| {
            Err(JiffyError::BlockFull {
                requested,
                capacity,
            })
        }),
        ".{0,24}".prop_map(|m| Err(JiffyError::Unavailable(m))),
    ]
}

fn batch_envelope_strategy() -> impl Strategy<Value = Envelope> {
    prop_oneof![
        (
            1u64..u64::MAX,
            any::<u64>(),
            proptest::collection::vec((ds_op_strategy(), any::<u64>()), 0..16),
            any::<u64>(),
            any::<bool>(),
        )
            .prop_map(|(id, block, ops_rids, tenant, tracked)| {
                let (ops, rids): (Vec<_>, Vec<_>) = ops_rids.into_iter().unzip();
                Envelope::DataReq {
                    id,
                    req: DataRequest::Batch {
                        block: BlockId(block),
                        ops,
                        // Empty = untracked read batch; populated = one
                        // rid per op (the only two shapes on the wire).
                        rids: if tracked { rids } else { Vec::new() },
                    },
                    tenant: TenantId(tenant),
                }
            }),
        (
            1u64..u64::MAX,
            proptest::collection::vec(ds_result_strategy(), 0..16)
        )
            .prop_map(|(id, results)| Envelope::DataResp {
                id,
                resp: Ok(DataResponse::Batch(results)),
            }),
    ]
}

proptest! {
    /// `encode_frame` produces byte-for-byte the same stream as the
    /// legacy two-write `write_frame` path.
    #[test]
    fn encode_frame_matches_write_frame(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 0..8)
    ) {
        let mut legacy = Vec::new();
        let mut fast = Vec::new();
        for p in &payloads {
            write_frame(&mut legacy, p).unwrap();
            encode_frame(p, &mut fast).unwrap();
        }
        prop_assert_eq!(legacy, fast);
    }

    /// Streams built with `encode_frame` decode with `read_frame`.
    #[test]
    fn encode_frame_round_trips_via_read_frame(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 0..8)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut buf).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for p in &payloads {
            let got = read_frame(&mut cur).unwrap().expect("frame present");
            prop_assert_eq!(p, &got);
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// `read_frame_into` reuses one scratch buffer across the whole
    /// stream and yields the same payloads as fresh-allocation reads.
    #[test]
    fn read_frame_into_round_trips_with_buffer_reuse(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 1..8)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut buf).unwrap();
        }
        let mut cur = Cursor::new(buf);
        let mut scratch = Vec::new();
        for p in &payloads {
            let n = read_frame_into(&mut cur, &mut scratch)
                .unwrap()
                .expect("frame present");
            prop_assert_eq!(n, p.len());
            prop_assert_eq!(p, &scratch);
        }
        prop_assert!(read_frame_into(&mut cur, &mut scratch).unwrap().is_none());
    }

    /// Batch envelopes survive the wire in both directions, through both
    /// the allocating and the buffer-reusing serializer entry points.
    #[test]
    fn batch_envelopes_round_trip(env in batch_envelope_strategy()) {
        let bytes = to_bytes(&env).unwrap();
        let mut reused = Vec::new();
        to_bytes_into(&env, &mut reused).unwrap();
        prop_assert_eq!(&bytes, &reused);
        let back: Envelope = from_bytes(&bytes).unwrap();
        prop_assert_eq!(env, back);
    }

    /// A whole batched exchange framed with the fast path decodes intact.
    #[test]
    fn framed_batch_exchange_round_trips(
        envelopes in proptest::collection::vec(batch_envelope_strategy(), 0..6)
    ) {
        let mut stream = Vec::new();
        let mut encode_scratch = Vec::new();
        for env in &envelopes {
            to_bytes_into(env, &mut encode_scratch).unwrap();
            encode_frame(&encode_scratch, &mut stream).unwrap();
        }
        let mut cur = Cursor::new(stream);
        let mut read_scratch = Vec::new();
        for env in &envelopes {
            read_frame_into(&mut cur, &mut read_scratch)
                .unwrap()
                .expect("frame present");
            let back: Envelope = from_bytes(&read_scratch).unwrap();
            prop_assert_eq!(env, &back);
        }
        prop_assert!(read_frame_into(&mut cur, &mut read_scratch).unwrap().is_none());
    }

    /// Nonblocking reassembly: the encoded stream cut into arbitrary
    /// chunks (each cut is a `WouldBlock` the reactor's read loop would
    /// see) and fed through a [`FrameAssembler`] yields exactly the
    /// original payloads, byte for byte, regardless of where the cuts
    /// fall — mid-header, mid-payload, or between frames.
    #[test]
    fn assembler_reassembles_across_arbitrary_chunk_cuts(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 0..8),
        cuts in proptest::collection::vec(1usize..48, 1..64),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut stream).unwrap();
        }
        let mut asm = FrameAssembler::new();
        let mut scratch = Vec::new();
        let mut got = Vec::new();
        let mut off = 0;
        let mut i = 0;
        while off < stream.len() {
            let n = cuts[i % cuts.len()].min(stream.len() - off);
            i += 1;
            asm.push(&stream[off..off + n]);
            off += n;
            // Drain eagerly after every chunk, as the read loop does.
            while let Some(len) = asm.next_frame_into(&mut scratch).unwrap() {
                prop_assert_eq!(len, scratch.len());
                got.push(scratch.clone());
            }
        }
        prop_assert_eq!(got, payloads);
        // No bytes may be left behind.
        prop_assert_eq!(asm.buffered(), 0);
    }

    /// Chunked feeding is equivalent to one-shot feeding: the assembler
    /// must be insensitive to *when* bytes arrive, only to *what* bytes
    /// arrive.
    #[test]
    fn chunked_feed_equals_single_feed(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 1..6),
        cuts in proptest::collection::vec(1usize..16, 1..32),
    ) {
        let mut stream = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut stream).unwrap();
        }

        let mut whole = FrameAssembler::new();
        whole.push(&stream);
        let mut expected = Vec::new();
        while let Some(f) = whole.next_frame().unwrap() {
            expected.push(f);
        }

        let mut chunked = FrameAssembler::new();
        let mut got = Vec::new();
        let mut off = 0;
        for (i, _) in stream.iter().enumerate() {
            let n = cuts[i % cuts.len()].min(stream.len() - off);
            if n == 0 {
                break;
            }
            chunked.push(&stream[off..off + n]);
            off += n;
            while let Some(f) = chunked.next_frame().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, expected);
    }
}

/// Exhaustive single-cut sweep: a three-frame stream (empty, tiny and
/// multi-byte payloads) split at *every* byte boundary must reassemble
/// identically. Covers each header/payload straddle position the
/// proptests sample randomly.
#[test]
fn assembler_survives_a_cut_at_every_byte_boundary() {
    let payloads: [&[u8]; 3] = [b"", b"x", b"hello, framed world"];
    let mut stream = Vec::new();
    for p in payloads {
        encode_frame(p, &mut stream).unwrap();
    }
    for split in 0..=stream.len() {
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for part in [&stream[..split], &stream[split..]] {
            asm.push(part);
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), payloads.len(), "split at {split}");
        for (g, p) in got.iter().zip(payloads) {
            assert_eq!(g, p, "split at {split}");
        }
        assert_eq!(asm.buffered(), 0, "split at {split}");
    }
}

/// Frames straddling chunk cuts at the size limit. A payload of exactly
/// [`MAX_FRAME_LEN`] fed with the header torn across two pushes and the
/// body in 32 MiB chunks reassembles intact; a header declaring one byte
/// over the limit is rejected the moment its fourth byte arrives —
/// before any payload is buffered — and the assembler stays poisoned.
/// Not a proptest: the in-bounds case allocates 192 MiB, deliberately.
#[test]
fn assembler_chunked_at_and_over_the_size_limit() {
    // Exactly MAX_FRAME_LEN, header straddling a cut.
    let header = (MAX_FRAME_LEN as u32).to_le_bytes();
    let payload = vec![0xA5u8; MAX_FRAME_LEN];
    let mut asm = FrameAssembler::new();
    let mut scratch = Vec::new();
    asm.push(&header[..2]);
    assert_eq!(asm.next_frame_into(&mut scratch).unwrap(), None);
    asm.push(&header[2..]);
    for chunk in payload.chunks(32 << 20) {
        assert_eq!(
            asm.next_frame_into(&mut scratch).unwrap(),
            None,
            "frame must not surface before its last byte"
        );
        asm.push(chunk);
    }
    drop(payload);
    let n = asm
        .next_frame_into(&mut scratch)
        .unwrap()
        .expect("complete frame");
    assert_eq!(n, MAX_FRAME_LEN);
    assert!(scratch.iter().all(|&b| b == 0xA5));
    assert_eq!(asm.buffered(), 0);
    drop(asm);
    drop(scratch);

    // One byte over the limit: fed byte-at-a-time, the oversized prefix
    // is rejected exactly when the header completes, with nothing of the
    // (never-sent) payload buffered.
    let bad = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
    let mut asm = FrameAssembler::new();
    let mut scratch = Vec::new();
    for &b in &bad[..3] {
        asm.push(&[b]);
        assert_eq!(asm.next_frame_into(&mut scratch).unwrap(), None);
    }
    asm.push(&bad[3..]);
    let err = asm.next_frame_into(&mut scratch).unwrap_err();
    assert!(matches!(err, JiffyError::Codec(_)), "got {err:?}");
    // Poisoned: more bytes do not clear the fault.
    asm.push(b"garbage after the bad header");
    assert!(asm.next_frame_into(&mut scratch).is_err());
}

/// Boundary behaviour at the frame size limit. Not a proptest: the
/// payloads are 192 MiB, so each case allocates once, deliberately.
#[test]
fn encode_frame_at_and_over_the_size_limit() {
    // Exactly MAX_FRAME_LEN is legal and round-trips.
    let payload = vec![0u8; MAX_FRAME_LEN];
    let mut out = Vec::new();
    encode_frame(&payload, &mut out).unwrap();
    assert_eq!(out.len(), 4 + MAX_FRAME_LEN);
    assert_eq!(&out[..4], &(MAX_FRAME_LEN as u32).to_le_bytes());
    drop(payload);
    let mut cur = Cursor::new(&out);
    let mut scratch = Vec::new();
    let n = read_frame_into(&mut cur, &mut scratch)
        .unwrap()
        .expect("frame present");
    assert_eq!(n, MAX_FRAME_LEN);
    assert!(scratch.iter().all(|&b| b == 0));
    drop(out);
    drop(scratch);

    // One byte over is rejected and leaves the output buffer untouched.
    let oversized = vec![0u8; MAX_FRAME_LEN + 1];
    let mut out = b"sentinel".to_vec();
    let err = encode_frame(&oversized, &mut out).unwrap_err();
    assert!(matches!(err, JiffyError::Codec(_)), "got {err:?}");
    assert_eq!(
        out, b"sentinel",
        "failed encode must not disturb the buffer"
    );
}
