//! Property-based tests for the PR 4 fast-path codec entry points:
//! single-buffer [`encode_frame`], buffer-reusing [`read_frame_into`] /
//! [`to_bytes_into`], and the `Batch` envelope variants.
//!
//! The legacy codec paths are covered by `codec_proptest.rs`; this file
//! pins the zero-copy variants to them — same bytes on the wire, same
//! values back out.

use std::io::Cursor;

use jiffy_common::{BlockId, JiffyError};
use jiffy_proto::frame::{encode_frame, read_frame, read_frame_into, write_frame, MAX_FRAME_LEN};
use jiffy_proto::wire::{from_bytes, to_bytes, to_bytes_into};
use jiffy_proto::{Blob, DataRequest, DataResponse, DsOp, DsResult, Envelope};
use proptest::prelude::*;

fn ds_op_strategy() -> impl Strategy<Value = DsOp> {
    prop_oneof![
        (
            proptest::collection::vec(any::<u8>(), 0..64),
            proptest::collection::vec(any::<u8>(), 0..64)
        )
            .prop_map(|(key, value)| DsOp::Put {
                key: Blob(key),
                value: Blob(value),
            }),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|key| DsOp::Get { key: Blob(key) }),
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|item| DsOp::Enqueue { item: Blob(item) }),
        Just(DsOp::Dequeue),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)).prop_map(|(offset, data)| {
            DsOp::FileWrite {
                offset,
                data: Blob(data),
            }
        }),
    ]
}

fn ds_result_strategy() -> impl Strategy<Value = Result<DsResult, JiffyError>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64)
            .prop_map(|d| Ok(DsResult::MaybeData(Some(Blob(d))))),
        Just(Ok(DsResult::MaybeData(None))),
        Just(Ok(DsResult::Ok)),
        (any::<usize>(), any::<usize>()).prop_map(|(requested, capacity)| {
            Err(JiffyError::BlockFull {
                requested,
                capacity,
            })
        }),
        ".{0,24}".prop_map(|m| Err(JiffyError::Unavailable(m))),
    ]
}

fn batch_envelope_strategy() -> impl Strategy<Value = Envelope> {
    prop_oneof![
        (
            1u64..u64::MAX,
            any::<u64>(),
            proptest::collection::vec(ds_op_strategy(), 0..16)
        )
            .prop_map(|(id, block, ops)| Envelope::DataReq {
                id,
                req: DataRequest::Batch {
                    block: BlockId(block),
                    ops,
                },
            }),
        (
            1u64..u64::MAX,
            proptest::collection::vec(ds_result_strategy(), 0..16)
        )
            .prop_map(|(id, results)| Envelope::DataResp {
                id,
                resp: Ok(DataResponse::Batch(results)),
            }),
    ]
}

proptest! {
    /// `encode_frame` produces byte-for-byte the same stream as the
    /// legacy two-write `write_frame` path.
    #[test]
    fn encode_frame_matches_write_frame(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 0..8)
    ) {
        let mut legacy = Vec::new();
        let mut fast = Vec::new();
        for p in &payloads {
            write_frame(&mut legacy, p).unwrap();
            encode_frame(p, &mut fast).unwrap();
        }
        prop_assert_eq!(legacy, fast);
    }

    /// Streams built with `encode_frame` decode with `read_frame`.
    #[test]
    fn encode_frame_round_trips_via_read_frame(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 0..8)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut buf).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for p in &payloads {
            let got = read_frame(&mut cur).unwrap().expect("frame present");
            prop_assert_eq!(p, &got);
        }
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    /// `read_frame_into` reuses one scratch buffer across the whole
    /// stream and yields the same payloads as fresh-allocation reads.
    #[test]
    fn read_frame_into_round_trips_with_buffer_reuse(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 1..8)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            encode_frame(p, &mut buf).unwrap();
        }
        let mut cur = Cursor::new(buf);
        let mut scratch = Vec::new();
        for p in &payloads {
            let n = read_frame_into(&mut cur, &mut scratch)
                .unwrap()
                .expect("frame present");
            prop_assert_eq!(n, p.len());
            prop_assert_eq!(p, &scratch);
        }
        prop_assert!(read_frame_into(&mut cur, &mut scratch).unwrap().is_none());
    }

    /// Batch envelopes survive the wire in both directions, through both
    /// the allocating and the buffer-reusing serializer entry points.
    #[test]
    fn batch_envelopes_round_trip(env in batch_envelope_strategy()) {
        let bytes = to_bytes(&env).unwrap();
        let mut reused = Vec::new();
        to_bytes_into(&env, &mut reused).unwrap();
        prop_assert_eq!(&bytes, &reused);
        let back: Envelope = from_bytes(&bytes).unwrap();
        prop_assert_eq!(env, back);
    }

    /// A whole batched exchange framed with the fast path decodes intact.
    #[test]
    fn framed_batch_exchange_round_trips(
        envelopes in proptest::collection::vec(batch_envelope_strategy(), 0..6)
    ) {
        let mut stream = Vec::new();
        let mut encode_scratch = Vec::new();
        for env in &envelopes {
            to_bytes_into(env, &mut encode_scratch).unwrap();
            encode_frame(&encode_scratch, &mut stream).unwrap();
        }
        let mut cur = Cursor::new(stream);
        let mut read_scratch = Vec::new();
        for env in &envelopes {
            read_frame_into(&mut cur, &mut read_scratch)
                .unwrap()
                .expect("frame present");
            let back: Envelope = from_bytes(&read_scratch).unwrap();
            prop_assert_eq!(env, &back);
        }
        prop_assert!(read_frame_into(&mut cur, &mut read_scratch).unwrap().is_none());
    }
}

/// Boundary behaviour at the frame size limit. Not a proptest: the
/// payloads are 192 MiB, so each case allocates once, deliberately.
#[test]
fn encode_frame_at_and_over_the_size_limit() {
    // Exactly MAX_FRAME_LEN is legal and round-trips.
    let payload = vec![0u8; MAX_FRAME_LEN];
    let mut out = Vec::new();
    encode_frame(&payload, &mut out).unwrap();
    assert_eq!(out.len(), 4 + MAX_FRAME_LEN);
    assert_eq!(&out[..4], &(MAX_FRAME_LEN as u32).to_le_bytes());
    drop(payload);
    let mut cur = Cursor::new(&out);
    let mut scratch = Vec::new();
    let n = read_frame_into(&mut cur, &mut scratch)
        .unwrap()
        .expect("frame present");
    assert_eq!(n, MAX_FRAME_LEN);
    assert!(scratch.iter().all(|&b| b == 0));
    drop(out);
    drop(scratch);

    // One byte over is rejected and leaves the output buffer untouched.
    let oversized = vec![0u8; MAX_FRAME_LEN + 1];
    let mut out = b"sentinel".to_vec();
    let err = encode_frame(&oversized, &mut out).unwrap_err();
    assert!(matches!(err, JiffyError::Codec(_)), "got {err:?}");
    assert_eq!(
        out, b"sentinel",
        "failed encode must not disturb the buffer"
    );
}
