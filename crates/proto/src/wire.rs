//! Compact binary serde format ("wire format").
//!
//! Non-self-describing, position-based encoding comparable to Thrift's
//! binary protocol or bincode:
//!
//! | Type | Encoding |
//! |---|---|
//! | `bool` | one byte, `0` or `1` |
//! | integers, floats | little-endian fixed width |
//! | `char` | `u32` scalar value |
//! | `str`, bytes | `u32` length + raw bytes |
//! | `Option<T>` | one tag byte, then `T` if `Some` |
//! | sequences, maps | `u32` length + elements |
//! | enums | `u32` variant index + payload |
//! | structs, tuples | fields in declaration order |
//!
//! Both directions are implemented directly against the serde data model,
//! so every message type in [`crate::messages`] (and any user type that
//! derives `Serialize`/`Deserialize`) travels over it.

use std::fmt;

use jiffy_common::JiffyError;
use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};

/// Serializes `value` into a fresh byte vector.
///
/// # Errors
///
/// Returns [`JiffyError::Codec`] if the value cannot be represented
/// (e.g. a sequence of unknown length).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, JiffyError> {
    let mut ser = WireSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Serializes `value` into `out`, reusing its allocation.
///
/// The buffer is cleared first; after a successful call it holds exactly
/// the encoded value. A steady-state encode loop that keeps one scratch
/// buffer per thread therefore allocates nothing once the buffer has
/// grown to the working-set frame size.
///
/// # Errors
///
/// Returns [`JiffyError::Codec`] as [`to_bytes`] does; on error the
/// buffer contents are unspecified (but the allocation is still reusable).
pub fn to_bytes_into<T: Serialize>(value: &T, out: &mut Vec<u8>) -> Result<(), JiffyError> {
    out.clear();
    let mut ser = WireSerializer {
        out: std::mem::take(out),
    };
    let result = value.serialize(&mut ser);
    *out = ser.out;
    result.map_err(Into::into)
}

/// Deserializes a value previously produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`JiffyError::Codec`] on truncated or malformed input, or if
/// trailing bytes remain after the value.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, JiffyError> {
    let mut de = WireDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(codec_err(format!(
            "{} trailing bytes after value",
            de.input.len()
        )));
    }
    Ok(value)
}

fn codec_err(msg: impl fmt::Display) -> JiffyError {
    JiffyError::Codec(msg.to_string())
}

/// Internal error adapter so serde traits can be implemented for
/// [`JiffyError`].
#[derive(Debug)]
pub struct WireError(pub JiffyError);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for WireError {}

impl ser::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError(codec_err(msg))
    }
}

impl de::Error for WireError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        WireError(codec_err(msg))
    }
}

impl From<WireError> for JiffyError {
    fn from(e: WireError) -> Self {
        e.0
    }
}

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

struct WireSerializer {
    out: Vec<u8>,
}

impl WireSerializer {
    fn put_len(&mut self, len: usize) -> Result<(), WireError> {
        let len: u32 = len
            .try_into()
            .map_err(|_| WireError(codec_err("length exceeds u32")))?;
        self.out.extend_from_slice(&len.to_le_bytes());
        Ok(())
    }
}

impl<'a> ser::Serializer for &'a mut WireSerializer {
    type Ok = ();
    type Error = WireError;
    type SerializeSeq = Compound<'a>;
    type SerializeTuple = Compound<'a>;
    type SerializeTupleStruct = Compound<'a>;
    type SerializeTupleVariant = Compound<'a>;
    type SerializeMap = Compound<'a>;
    type SerializeStruct = Compound<'a>;
    type SerializeStructVariant = Compound<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), WireError> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i16(self, v: i16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i32(self, v: i32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i64(self, v: i64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_i128(self, v: i128) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), WireError> {
        self.out.push(v);
        Ok(())
    }

    fn serialize_u16(self, v: u16) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u32(self, v: u32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u64(self, v: u64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_f64(self, v: f64) -> Result<(), WireError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), WireError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), WireError> {
        self.serialize_bytes(v.as_bytes())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), WireError> {
        self.put_len(v.len())?;
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), WireError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, v: &T) -> Result<(), WireError> {
        self.out.push(1);
        v.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), WireError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or_else(|| WireError(codec_err("sequence length must be known")))?;
        self.put_len(len)?;
        Ok(Compound { ser: self })
    }

    fn serialize_tuple(self, _len: usize) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Compound<'a>, WireError> {
        let len = len.ok_or_else(|| WireError(codec_err("map length must be known")))?;
        self.put_len(len)?;
        Ok(Compound { ser: self })
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Compound<'a>, WireError> {
        Ok(Compound { ser: self })
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Compound<'a>, WireError> {
        self.serialize_u32(variant_index)?;
        Ok(Compound { ser: self })
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Compound<'a> {
    ser: &'a mut WireSerializer,
}

impl ser::SerializeSeq for Compound<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTuple for Compound<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for Compound<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for Compound<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeMap for Compound<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), WireError> {
        key.serialize(&mut *self.ser)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStruct for Compound<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for Compound<'_> {
    type Ok = ();
    type Error = WireError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), WireError> {
        value.serialize(&mut *self.ser)
    }

    fn end(self) -> Result<(), WireError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Deserializer
// ---------------------------------------------------------------------------

struct WireDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> WireDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], WireError> {
        if self.input.len() < n {
            return Err(WireError(codec_err(format!(
                "truncated input: need {n} bytes, have {}",
                self.input.len()
            ))));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        // Length is guaranteed by `take`.
        Ok(s.try_into().unwrap())
    }

    fn get_len(&mut self) -> Result<usize, WireError> {
        let len = u32::from_le_bytes(self.take_array()?) as usize;
        // Guard against adversarial lengths pre-allocating huge buffers:
        // the payload must actually be present in the remaining input for
        // byte-like values; structured values are decoded element-wise so
        // a bad length fails fast on the first missing element.
        Ok(len)
    }
}

macro_rules! de_scalar {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
            let v = <$ty>::from_le_bytes(self.take_array()?);
            visitor.$visit(v)
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut WireDeserializer<'de> {
    type Error = WireError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError(codec_err(
            "wire format is not self-describing; deserialize_any unsupported",
        )))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(WireError(codec_err(format!("invalid bool byte {b}")))),
        }
    }

    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_i8(self.take(1)?[0] as i8)
    }

    de_scalar!(deserialize_i16, visit_i16, i16);
    de_scalar!(deserialize_i32, visit_i32, i32);
    de_scalar!(deserialize_i64, visit_i64, i64);
    de_scalar!(deserialize_i128, visit_i128, i128);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    de_scalar!(deserialize_u16, visit_u16, u16);
    de_scalar!(deserialize_u32, visit_u32, u32);
    de_scalar!(deserialize_u64, visit_u64, u64);
    de_scalar!(deserialize_u128, visit_u128, u128);
    de_scalar!(deserialize_f32, visit_f32, f32);
    de_scalar!(deserialize_f64, visit_f64, f64);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let v = u32::from_le_bytes(self.take_array()?);
        let c = char::from_u32(v)
            .ok_or_else(|| WireError(codec_err(format!("invalid char scalar {v}"))))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|e| WireError(codec_err(e)))?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(WireError(codec_err(format!("invalid option tag {b}")))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_seq(SeqAccess {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(SeqAccess {
            de: self,
            left: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, WireError> {
        let len = self.get_len()?;
        visitor.visit_map(MapAccess {
            de: self,
            left: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError(codec_err(
            "identifiers are not encoded in the wire format",
        )))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, WireError> {
        Err(WireError(codec_err(
            "cannot skip values in a non-self-describing format",
        )))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct SeqAccess<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for SeqAccess<'_, 'de> {
    type Error = WireError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct MapAccess<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
    left: usize,
}

impl<'de> de::MapAccess<'de> for MapAccess<'_, 'de> {
    type Error = WireError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, WireError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, WireError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = WireError;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), WireError> {
        let idx = u32::from_le_bytes(self.de.take_array()?);
        let value = seed.deserialize(idx.into_deserializer())?;
        Ok((value, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut WireDeserializer<'de>,
}

impl<'de> de::VariantAccess<'de> for VariantAccess<'_, 'de> {
    type Error = WireError;

    fn unit_variant(self) -> Result<(), WireError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, WireError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, WireError> {
        visitor.visit_seq(SeqAccess {
            de: self.de,
            left: len,
        })
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, WireError> {
        visitor.visit_seq(SeqAccess {
            de: self.de,
            left: fields.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;
    use std::collections::BTreeMap;

    fn round_trip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(true);
        round_trip(false);
        round_trip(42u8);
        round_trip(-7i8);
        round_trip(0xBEEFu16);
        round_trip(-123456i32);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(i128::MIN);
        round_trip(3.25f32);
        round_trip(-2.5e300f64);
        round_trip('λ');
    }

    #[test]
    fn strings_and_collections_round_trip() {
        round_trip(String::from("hello jiffy"));
        round_trip(String::new());
        round_trip(vec![1u32, 2, 3]);
        round_trip(Vec::<String>::new());
        round_trip(Some(7u8));
        round_trip(Option::<u8>::None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        round_trip(m);
    }

    #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
    enum Sample {
        Unit,
        New(u32),
        Tuple(u8, String),
        Struct { a: bool, b: Vec<u8> },
    }

    #[derive(Debug, PartialEq, serde::Serialize, Deserialize)]
    struct Nested {
        name: String,
        items: Vec<Sample>,
        opt: Option<Box<Nested>>,
    }

    #[test]
    fn enums_round_trip() {
        round_trip(Sample::Unit);
        round_trip(Sample::New(9));
        round_trip(Sample::Tuple(1, "x".into()));
        round_trip(Sample::Struct {
            a: true,
            b: vec![1, 2, 3],
        });
    }

    #[test]
    fn nested_structs_round_trip() {
        round_trip(Nested {
            name: "root".into(),
            items: vec![Sample::Unit, Sample::New(1)],
            opt: Some(Box::new(Nested {
                name: "leaf".into(),
                items: vec![],
                opt: None,
            })),
        });
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&12345u64).unwrap();
        for cut in 0..bytes.len() {
            assert!(from_bytes::<u64>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_bytes(&1u8).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u8>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_and_option_tags_fail() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[7, 0]).is_err());
    }

    #[test]
    fn invalid_utf8_fails() {
        // Length 2, bytes 0xFF 0xFE: not UTF-8.
        let bytes = [2, 0, 0, 0, 0xFF, 0xFE];
        assert!(from_bytes::<String>(&bytes).is_err());
    }

    #[test]
    fn unknown_variant_index_fails() {
        let bytes = 99u32.to_le_bytes();
        assert!(from_bytes::<Sample>(&bytes).is_err());
    }

    #[test]
    fn encoding_is_compact() {
        // A u64 is exactly 8 bytes, a 3-byte string is 4 + 3.
        assert_eq!(to_bytes(&1u64).unwrap().len(), 8);
        assert_eq!(to_bytes(&"abc").unwrap().len(), 7);
        // Unit enum variant is just the 4-byte index.
        assert_eq!(to_bytes(&Sample::Unit).unwrap().len(), 4);
    }
}
