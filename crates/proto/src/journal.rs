//! Controller metadata-journal record types.
//!
//! The controller makes itself crash-recoverable by appending a typed
//! record for every mutating control-plane operation to a write-ahead
//! journal in the persistent tier *before* acknowledging the operation,
//! and periodically checkpointing its full metadata state into a
//! snapshot that truncates the journal (DESIGN.md §11).
//!
//! The record types live here — next to the other wire messages — so the
//! journal's on-disk format is part of the protocol surface rather than
//! a controller implementation detail. Records are outcome-carrying:
//! they capture the *results* of non-deterministic choices (allocated
//! block locations, chosen merge targets) so replay is deterministic and
//! never touches the data plane.
//!
//! Controller-internal state (the `DsMeta` skeleton, the full-state
//! mirror) travels as opaque pre-encoded byte payloads; the controller
//! crate owns those types and this crate must not depend on it.

use serde::{Deserialize, Serialize};

use jiffy_common::{BlockId, JobId, ServerId, TenantId};

use crate::messages::{BlockLocation, MergeSpec, SplitSpec};

/// One journal object: the batch of records appended by a single
/// control-plane dispatch. Object puts are atomic (temp file + rename),
/// so a batch is applied all-or-nothing — the observable crash points
/// are exactly the batch boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalBatch {
    /// Records in append order; sequence numbers are contiguous within a
    /// batch and across consecutive batches.
    pub records: Vec<JournalRecord>,
}

/// A single journal record: a monotonically increasing sequence number
/// plus the operation it logs. Replay dedupes on `seq`, making journal
/// application idempotent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Strictly increasing, starting at 0 for a fresh controller.
    pub seq: u64,
    /// The logged state transition.
    pub op: JournalOp,
}

/// The journal's record taxonomy: one variant per mutating control-plane
/// state transition. Every variant carries the operation *outcome* (not
/// the request), so replaying it against [`super::messages`]-level state
/// needs no allocator, no data-plane calls, and no clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalOp {
    /// A job registered and was assigned `job`.
    JobRegistered {
        /// The id the controller issued.
        job: JobId,
        /// Client-supplied job name.
        name: String,
        /// Tenant that registered the job; its memory accounting absorbs
        /// every block the job allocates. Appended last within the
        /// variant so the preceding positional layout is unchanged.
        tenant: TenantId,
    },
    /// A job deregistered; all its blocks returned to the freelist.
    JobDeregistered {
        /// The removed job.
        job: JobId,
    },
    /// A prefix node was created, with the block chains the allocator
    /// chose for it.
    PrefixCreated {
        /// Owning job.
        job: JobId,
        /// Hierarchy path of the new node.
        name: String,
        /// Parent prefixes (empty = hangs off the job root).
        parents: Vec<String>,
        /// Allocated chains in partition order (empty for a bare
        /// directory node with no data structure).
        locs: Vec<BlockLocation>,
        /// Wire-encoded `DsSkeleton` of the created data structure;
        /// `None` for a bare directory node.
        skeleton: Option<Vec<u8>>,
        /// Lease clock at creation (microseconds).
        now_micros: u64,
    },
    /// An extra parent edge was added to an existing node.
    ParentAdded {
        /// Owning job.
        job: JobId,
        /// The child node.
        name: String,
        /// The new parent.
        parent: String,
    },
    /// A prefix was removed and its blocks released.
    PrefixRemoved {
        /// Owning job.
        job: JobId,
        /// The removed node.
        name: String,
    },
    /// A lease renewal touched `name` and its renewal closure.
    LeaseRenewed {
        /// Owning job.
        job: JobId,
        /// The renewed path.
        name: String,
        /// Lease clock at renewal (microseconds).
        now_micros: u64,
    },
    /// A prefix was flushed to the persistent tier (and, if `reclaimed`,
    /// its blocks were released afterwards).
    PrefixFlushed {
        /// Owning job.
        job: JobId,
        /// The flushed node.
        name: String,
        /// Persistent-tier object path of the flush record.
        path: String,
        /// Whether the in-memory copy was reclaimed after the flush.
        reclaimed: bool,
        /// Whether this was a lease-expiry flush (drives the
        /// `leases_expired` counter on replay).
        expired: bool,
    },
    /// A prefix was loaded back from the persistent tier into freshly
    /// allocated blocks.
    PrefixLoaded {
        /// Owning job.
        job: JobId,
        /// The loaded node.
        name: String,
        /// Persistent-tier object path it was loaded from.
        path: String,
        /// The chains the allocator chose, in partition order.
        locs: Vec<BlockLocation>,
        /// Wire-encoded `DsSkeleton` captured at load time (the flush
        /// object itself may be overwritten later, so replay must not
        /// re-read it).
        skeleton: Vec<u8>,
    },
    /// A memory server joined (or re-joined) the pool.
    ServerJoined {
        /// The id the controller issued.
        server: ServerId,
        /// Transport address of the server.
        addr: String,
        /// The exact block ids it contributed, in registration order.
        blocks: Vec<BlockId>,
        /// Liveness clock at join (microseconds), used to seed the
        /// failure detector on replay.
        now_micros: u64,
    },
    /// An overloaded block was split; `new_loc` took over part of its
    /// keyspace.
    SplitCommitted {
        /// Owning job.
        job: JobId,
        /// Owning node.
        name: String,
        /// The block that split.
        source: BlockId,
        /// The committed split plan.
        spec: SplitSpec,
        /// The freshly allocated chain.
        new_loc: BlockLocation,
    },
    /// An underloaded block was merged away and released.
    MergeCommitted {
        /// Owning job.
        job: JobId,
        /// Owning node.
        name: String,
        /// The block that was merged away.
        source: BlockId,
        /// The committed merge plan.
        spec: MergeSpec,
        /// The absorbing chain (`None` when the plan needs no target).
        target: Option<BlockLocation>,
        /// Exactly the block ids released back to the freelist.
        released: Vec<BlockId>,
    },
    /// The autoscaler provisioned (`up`) or decommissioned (`!up`) a
    /// server; logged for the scale counters (membership changes journal
    /// separately via `ServerJoined` / `StateRewritten`).
    ScaleEvent {
        /// Scale-up vs. scale-down.
        up: bool,
    },
    /// A multi-step transition (drain, failure handling) checkpointed the
    /// entire controller state inline. Carries a wire-encoded controller
    /// `StateMirror`; replay swaps it in wholesale.
    StateRewritten {
        /// Wire-encoded controller state mirror.
        mirror: Vec<u8>,
    },
    /// A tenant's QoS parameters were configured (`SetTenantShare`).
    /// Appended last to keep wire variant indices stable.
    TenantConfigured {
        /// The configured tenant.
        tenant: TenantId,
        /// Weighted-fair share (≥ 1).
        share: u32,
        /// Hard memory quota in bytes (0 = unlimited).
        quota_bytes: u64,
        /// Data-plane op rate limit per second (0 = unlimited).
        ops_per_sec: u64,
        /// Data-plane byte rate limit per second (0 = unlimited).
        bytes_per_sec: u64,
    },
}

/// A snapshot object: the controller's full metadata state as of
/// `last_seq`. Recovery starts from the newest snapshot and replays only
/// journal batches whose first sequence number is greater than
/// `last_seq`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalSnapshot {
    /// Sequence number of the last record folded into this snapshot.
    pub last_seq: u64,
    /// Wire-encoded controller `StateMirror`.
    pub mirror: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Replica;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn records_round_trip_through_wire_format() {
        let batch = JournalBatch {
            records: vec![
                JournalRecord {
                    seq: 0,
                    op: JournalOp::JobRegistered {
                        job: JobId(3),
                        name: "wordcount".into(),
                        tenant: TenantId(2),
                    },
                },
                JournalRecord {
                    seq: 1,
                    op: JournalOp::PrefixCreated {
                        job: JobId(3),
                        name: "shuffle".into(),
                        parents: vec![],
                        locs: vec![BlockLocation {
                            chain: vec![Replica {
                                block: BlockId(7),
                                server: ServerId(0),
                                addr: "inproc:0".into(),
                            }],
                        }],
                        skeleton: Some(vec![1, 2, 3]),
                        now_micros: 42,
                    },
                },
                JournalRecord {
                    seq: 2,
                    op: JournalOp::MergeCommitted {
                        job: JobId(3),
                        name: "shuffle".into(),
                        source: BlockId(9),
                        spec: MergeSpec::KvAbsorb,
                        target: None,
                        released: vec![BlockId(9)],
                    },
                },
                JournalRecord {
                    seq: 3,
                    op: JournalOp::TenantConfigured {
                        tenant: TenantId(2),
                        share: 4,
                        quota_bytes: 1 << 20,
                        ops_per_sec: 1_000,
                        bytes_per_sec: 0,
                    },
                },
            ],
        };
        let bytes = to_bytes(&batch).unwrap();
        let back: JournalBatch = from_bytes(&bytes).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = JournalSnapshot {
            last_seq: 99,
            mirror: vec![4, 5, 6],
        };
        let bytes = to_bytes(&snap).unwrap();
        let back: JournalSnapshot = from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }
}
