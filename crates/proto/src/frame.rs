//! Length-prefixed message framing.
//!
//! Every RPC message travels as one frame: a `u32` little-endian length
//! followed by that many payload bytes. Frames larger than
//! [`MAX_FRAME_LEN`] are rejected on both send and receive so that a
//! corrupt or adversarial length prefix cannot trigger a giant
//! allocation.

use std::io::{Read, Write};

use jiffy_common::{JiffyError, Result};

/// Upper bound on a single frame, comfortably above one 128 MB block plus
/// headers.
pub const MAX_FRAME_LEN: usize = 192 * 1024 * 1024;

/// Writes `payload` as one frame to `w` and flushes.
///
/// # Errors
///
/// Fails if the payload exceeds [`MAX_FRAME_LEN`] or on IO error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(JiffyError::Codec(format!(
            "frame of {} bytes exceeds MAX_FRAME_LEN",
            payload.len()
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Appends `payload` as one frame (length prefix + payload) to `out`.
///
/// Unlike [`write_frame`] this performs no IO and does not clear `out`,
/// so several frames can be packed back to back into one buffer and
/// shipped with a single `write_all` — one syscall for the whole run
/// instead of two per frame.
///
/// # Errors
///
/// Fails if the payload exceeds [`MAX_FRAME_LEN`]; `out` is untouched.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(JiffyError::Codec(format!(
            "frame of {} bytes exceeds MAX_FRAME_LEN",
            payload.len()
        )));
    }
    out.reserve(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Reads one frame from `r`, returning its payload.
///
/// Returns `Ok(None)` when the stream ends cleanly *between* frames
/// (i.e. EOF before any length byte); mid-frame EOF is an error.
///
/// # Errors
///
/// Fails on IO errors, mid-frame EOF, or a length above
/// [`MAX_FRAME_LEN`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(r, &mut payload)?.map(|_| payload))
}

/// Reads one frame from `r` into the reusable scratch buffer `buf`,
/// returning the payload length. The buffer is cleared and resized to
/// exactly the payload; its capacity is kept across calls, so a
/// steady-state read loop allocates only when a frame outgrows every
/// previous one.
///
/// Returns `Ok(None)` when the stream ends cleanly *between* frames
/// (`buf` is left unspecified); mid-frame EOF is an error.
///
/// # Errors
///
/// Fails on IO errors, mid-frame EOF, or a length above
/// [`MAX_FRAME_LEN`].
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<Option<usize>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(JiffyError::Rpc("EOF inside frame header".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(JiffyError::Codec(format!(
            "incoming frame length {len} exceeds MAX_FRAME_LEN"
        )));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)
        .map_err(|e| JiffyError::Rpc(format!("EOF inside frame body: {e}")))?;
    Ok(Some(len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn round_trips_empty_and_large_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let big = vec![0xAB; 1 << 20];
        write_frame(&mut buf, &big).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), big);
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn eof_in_header_is_error() {
        let mut cur = Cursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn eof_in_body_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_payload_refused_on_write() {
        struct NullSink;
        impl std::io::Write for NullSink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Don't allocate MAX+1 bytes; a zero-length slice with a fake
        // length is impossible, so simulate with a just-over-limit vec of
        // zeros only if memory allows. Use a cheap approach: the check is
        // on `payload.len()`, so an honest oversized buffer is required.
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut NullSink, &payload).is_err());
    }

    #[test]
    fn encode_frame_matches_write_frame_bytes() {
        let payloads: [&[u8]; 3] = [b"", b"x", b"hello world"];
        for p in payloads {
            let mut written = Vec::new();
            write_frame(&mut written, p).unwrap();
            let mut encoded = Vec::new();
            encode_frame(p, &mut encoded).unwrap();
            assert_eq!(written, encoded);
        }
    }

    #[test]
    fn encode_frame_appends_without_clearing() {
        let mut buf = Vec::new();
        encode_frame(b"one", &mut buf).unwrap();
        encode_frame(b"two", &mut buf).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"two");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn encode_frame_refuses_oversized_and_leaves_buffer_untouched() {
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        let mut buf = vec![1, 2, 3];
        assert!(encode_frame(&payload, &mut buf).is_err());
        assert_eq!(buf, vec![1, 2, 3]);
    }

    #[test]
    fn read_frame_into_reuses_capacity() {
        let mut buf = Vec::new();
        encode_frame(&[7u8; 512], &mut buf).unwrap();
        encode_frame(&[9u8; 16], &mut buf).unwrap();
        let mut cur = Cursor::new(buf);
        let mut scratch = Vec::new();
        assert_eq!(read_frame_into(&mut cur, &mut scratch).unwrap(), Some(512));
        assert_eq!(scratch, vec![7u8; 512]);
        let cap = scratch.capacity();
        assert_eq!(read_frame_into(&mut cur, &mut scratch).unwrap(), Some(16));
        assert_eq!(scratch, vec![9u8; 16]);
        assert_eq!(scratch.capacity(), cap);
        assert_eq!(read_frame_into(&mut cur, &mut scratch).unwrap(), None);
    }

    #[test]
    fn multiple_frames_preserve_order() {
        let mut buf = Vec::new();
        for i in 0..10u8 {
            write_frame(&mut buf, &[i; 3]).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for i in 0..10u8 {
            assert_eq!(read_frame(&mut cur).unwrap().unwrap(), vec![i; 3]);
        }
    }
}
