//! Length-prefixed message framing.
//!
//! Every RPC message travels as one frame: a `u32` little-endian length
//! followed by that many payload bytes. Frames larger than
//! [`MAX_FRAME_LEN`] are rejected on both send and receive so that a
//! corrupt or adversarial length prefix cannot trigger a giant
//! allocation.

use std::io::{Read, Write};

use jiffy_common::{JiffyError, Result};

/// Upper bound on a single frame, comfortably above one 128 MB block plus
/// headers.
pub const MAX_FRAME_LEN: usize = 192 * 1024 * 1024;

/// Writes `payload` as one frame to `w` and flushes.
///
/// # Errors
///
/// Fails if the payload exceeds [`MAX_FRAME_LEN`] or on IO error.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(JiffyError::Codec(format!(
            "frame of {} bytes exceeds MAX_FRAME_LEN",
            payload.len()
        )));
    }
    let len = (payload.len() as u32).to_le_bytes();
    w.write_all(&len)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Appends `payload` as one frame (length prefix + payload) to `out`.
///
/// Unlike [`write_frame`] this performs no IO and does not clear `out`,
/// so several frames can be packed back to back into one buffer and
/// shipped with a single `write_all` — one syscall for the whole run
/// instead of two per frame.
///
/// # Errors
///
/// Fails if the payload exceeds [`MAX_FRAME_LEN`]; `out` is untouched.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) -> Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(JiffyError::Codec(format!(
            "frame of {} bytes exceeds MAX_FRAME_LEN",
            payload.len()
        )));
    }
    out.reserve(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Reads one frame from `r`, returning its payload.
///
/// Returns `Ok(None)` when the stream ends cleanly *between* frames
/// (i.e. EOF before any length byte); mid-frame EOF is an error.
///
/// # Errors
///
/// Fails on IO errors, mid-frame EOF, or a length above
/// [`MAX_FRAME_LEN`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>> {
    let mut payload = Vec::new();
    Ok(read_frame_into(r, &mut payload)?.map(|_| payload))
}

/// Reads one frame from `r` into the reusable scratch buffer `buf`,
/// returning the payload length. The buffer is cleared and resized to
/// exactly the payload; its capacity is kept across calls, so a
/// steady-state read loop allocates only when a frame outgrows every
/// previous one.
///
/// Returns `Ok(None)` when the stream ends cleanly *between* frames
/// (`buf` is left unspecified); mid-frame EOF is an error.
///
/// # Errors
///
/// Fails on IO errors, mid-frame EOF, or a length above
/// [`MAX_FRAME_LEN`].
pub fn read_frame_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<Option<usize>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(JiffyError::Rpc("EOF inside frame header".into()));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(JiffyError::Codec(format!(
            "incoming frame length {len} exceeds MAX_FRAME_LEN"
        )));
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)
        .map_err(|e| JiffyError::Rpc(format!("EOF inside frame body: {e}")))?;
    Ok(Some(len))
}

/// Incremental frame reassembly for nonblocking transports.
///
/// A readiness-driven read loop pulls whatever bytes the socket has
/// (`WouldBlock` can strike at *any* byte boundary — mid-header,
/// mid-payload) and feeds them in with [`FrameAssembler::push`]; complete
/// frames come back out of [`FrameAssembler::next_frame_into`] exactly as
/// the blocking [`read_frame_into`] would have produced them. Bytes of an
/// incomplete frame are buffered across calls; consumed bytes are
/// compacted away lazily so a long-lived session does not grow without
/// bound.
///
/// Length prefixes above [`MAX_FRAME_LEN`] are rejected as soon as the
/// four header bytes are present — before any payload is buffered — so a
/// corrupt or adversarial prefix cannot trigger a giant allocation. After
/// an error the assembler is poisoned (the bad header stays at the front)
/// and every subsequent call re-reports the error; the owning connection
/// is expected to tear down.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    head: usize,
}

/// Compact when the dead prefix passes this many bytes and dominates the
/// buffer — amortizes the memmove to O(1) per byte.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read from the transport (any amount, including a
    /// single byte).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as part of a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Extracts the next complete frame into the reusable scratch buffer
    /// `out` (cleared and resized to the payload, capacity kept across
    /// calls), returning its length — or `Ok(None)` if the buffered bytes
    /// do not yet form a complete frame.
    ///
    /// # Errors
    ///
    /// Fails if the buffered length prefix exceeds [`MAX_FRAME_LEN`].
    pub fn next_frame_into(&mut self, out: &mut Vec<u8>) -> Result<Option<usize>> {
        let avail = self.buf.len() - self.head;
        if avail < 4 {
            self.maybe_compact();
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        len_buf.copy_from_slice(&self.buf[self.head..self.head + 4]);
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > MAX_FRAME_LEN {
            return Err(JiffyError::Codec(format!(
                "incoming frame length {len} exceeds MAX_FRAME_LEN"
            )));
        }
        if avail < 4 + len {
            self.maybe_compact();
            return Ok(None);
        }
        out.clear();
        out.extend_from_slice(&self.buf[self.head + 4..self.head + 4 + len]);
        self.head += 4 + len;
        self.maybe_compact();
        Ok(Some(len))
    }

    /// Extracts the next complete frame as an owned payload, or `None`
    /// if the buffered bytes do not yet form one. Allocating variant of
    /// [`FrameAssembler::next_frame_into`].
    ///
    /// # Errors
    ///
    /// Fails if the buffered length prefix exceeds [`MAX_FRAME_LEN`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let mut out = Vec::new();
        Ok(self.next_frame_into(&mut out)?.map(|_| out))
    }

    fn maybe_compact(&mut self) {
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        } else if self.head >= COMPACT_THRESHOLD && self.head >= self.buf.len() / 2 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_a_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"hello");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn round_trips_empty_and_large_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        let big = vec![0xAB; 1 << 20];
        write_frame(&mut buf, &big).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), big);
    }

    #[test]
    fn clean_eof_is_none() {
        let mut cur = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn eof_in_header_is_error() {
        let mut cur = Cursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn eof_in_body_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = (u32::MAX).to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut cur = Cursor::new(buf);
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn oversized_payload_refused_on_write() {
        struct NullSink;
        impl std::io::Write for NullSink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // Don't allocate MAX+1 bytes; a zero-length slice with a fake
        // length is impossible, so simulate with a just-over-limit vec of
        // zeros only if memory allows. Use a cheap approach: the check is
        // on `payload.len()`, so an honest oversized buffer is required.
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut NullSink, &payload).is_err());
    }

    #[test]
    fn encode_frame_matches_write_frame_bytes() {
        let payloads: [&[u8]; 3] = [b"", b"x", b"hello world"];
        for p in payloads {
            let mut written = Vec::new();
            write_frame(&mut written, p).unwrap();
            let mut encoded = Vec::new();
            encode_frame(p, &mut encoded).unwrap();
            assert_eq!(written, encoded);
        }
    }

    #[test]
    fn encode_frame_appends_without_clearing() {
        let mut buf = Vec::new();
        encode_frame(b"one", &mut buf).unwrap();
        encode_frame(b"two", &mut buf).unwrap();
        let mut cur = Cursor::new(buf);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b"two");
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn encode_frame_refuses_oversized_and_leaves_buffer_untouched() {
        let payload = vec![0u8; MAX_FRAME_LEN + 1];
        let mut buf = vec![1, 2, 3];
        assert!(encode_frame(&payload, &mut buf).is_err());
        assert_eq!(buf, vec![1, 2, 3]);
    }

    #[test]
    fn read_frame_into_reuses_capacity() {
        let mut buf = Vec::new();
        encode_frame(&[7u8; 512], &mut buf).unwrap();
        encode_frame(&[9u8; 16], &mut buf).unwrap();
        let mut cur = Cursor::new(buf);
        let mut scratch = Vec::new();
        assert_eq!(read_frame_into(&mut cur, &mut scratch).unwrap(), Some(512));
        assert_eq!(scratch, vec![7u8; 512]);
        let cap = scratch.capacity();
        assert_eq!(read_frame_into(&mut cur, &mut scratch).unwrap(), Some(16));
        assert_eq!(scratch, vec![9u8; 16]);
        assert_eq!(scratch.capacity(), cap);
        assert_eq!(read_frame_into(&mut cur, &mut scratch).unwrap(), None);
    }

    #[test]
    fn multiple_frames_preserve_order() {
        let mut buf = Vec::new();
        for i in 0..10u8 {
            write_frame(&mut buf, &[i; 3]).unwrap();
        }
        let mut cur = Cursor::new(buf);
        for i in 0..10u8 {
            assert_eq!(read_frame(&mut cur).unwrap().unwrap(), vec![i; 3]);
        }
    }

    #[test]
    fn assembler_reassembles_byte_at_a_time() {
        let mut stream = Vec::new();
        encode_frame(b"hello", &mut stream).unwrap();
        encode_frame(b"", &mut stream).unwrap();
        encode_frame(&[7u8; 300], &mut stream).unwrap();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &stream {
            asm.push(std::slice::from_ref(b));
            while let Some(f) = asm.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![b"hello".to_vec(), Vec::new(), vec![7u8; 300]]);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_handles_frames_straddling_chunks() {
        let mut stream = Vec::new();
        for i in 0..5u8 {
            encode_frame(&[i; 9], &mut stream).unwrap();
        }
        // Feed in chunks that never align with frame boundaries.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut scratch = Vec::new();
        for chunk in stream.chunks(7) {
            asm.push(chunk);
            while let Some(n) = asm.next_frame_into(&mut scratch).unwrap() {
                assert_eq!(n, 9);
                got.push(scratch.clone());
            }
        }
        assert_eq!(got.len(), 5);
        for (i, f) in got.iter().enumerate() {
            assert_eq!(f, &vec![i as u8; 9]);
        }
    }

    #[test]
    fn assembler_rejects_oversized_prefix_before_buffering_payload() {
        let mut asm = FrameAssembler::new();
        // Header claims MAX_FRAME_LEN + 1; only 4 bytes ever arrive.
        asm.push(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
        assert!(asm.next_frame().is_err());
        // Poisoned: the error persists (no silent resync on garbage).
        assert!(asm.next_frame().is_err());
    }

    #[test]
    fn assembler_incomplete_header_and_payload_return_none() {
        let mut asm = FrameAssembler::new();
        asm.push(&[5, 0, 0]);
        assert!(asm.next_frame().unwrap().is_none());
        asm.push(&[0, b'a', b'b']);
        assert!(asm.next_frame().unwrap().is_none());
        asm.push(b"cde");
        assert_eq!(asm.next_frame().unwrap().unwrap(), b"abcde");
        assert!(asm.next_frame().unwrap().is_none());
    }

    #[test]
    fn assembler_compacts_consumed_bytes() {
        let mut asm = FrameAssembler::new();
        let mut stream = Vec::new();
        encode_frame(&[1u8; 100_000], &mut stream).unwrap();
        encode_frame(b"tail", &mut stream).unwrap();
        asm.push(&stream);
        let mut scratch = Vec::new();
        assert_eq!(
            asm.next_frame_into(&mut scratch).unwrap(),
            Some(100_000),
            "first frame out"
        );
        // The consumed 100 KB prefix is past COMPACT_THRESHOLD and
        // dominates the buffer, so it must have been compacted away.
        assert!(asm.buf.len() < 100_000, "dead prefix compacted");
        assert_eq!(asm.next_frame().unwrap().unwrap(), b"tail");
        assert_eq!(asm.buffered(), 0);
    }
}
