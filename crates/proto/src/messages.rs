//! Request/response messages exchanged between Jiffy planes.
//!
//! Three conversations exist in a Jiffy cluster (paper Fig. 2/7/8):
//!
//! 1. **client ↔ controller** ([`ControlRequest`]/[`ControlResponse`]):
//!    job registration, address-hierarchy manipulation, lease renewal,
//!    prefix resolution (address translation), flush/load.
//! 2. **client ↔ memory server** ([`DataRequest`]/[`DataResponse`]):
//!    data-structure operators on blocks, subscriptions, notifications.
//! 3. **memory server ↔ controller / memory server ↔ memory server**:
//!    overload/underload signalling, repartition payload transfer, chain
//!    replication — carried on the same two enums.
//!
//! All types serialize with the [`crate::wire`] codec.

use serde::{Deserialize, Serialize};

use jiffy_common::{BlockId, JiffyError, JobId, ServerId, TenantId};

/// Correlation id stamped on internal envelopes — server→server
/// replication fan-down, repartition payload shipping, controller→server
/// data-plane orders and client subscriptions. The transport assigns
/// such envelopes a per-connection auto-id, and the per-block replay
/// window ignores them: only client-stamped ids participate in
/// exactly-once replay.
pub const INTERNAL_RID: u64 = 0;

/// Lowest client-stamped request id. Client-side allocation
/// (`jiffy-client::rid`) counts up from here so stamped ids can never
/// collide with the per-connection auto-ids the transport assigns to
/// [`INTERNAL_RID`] envelopes (those count up from 1). Servers use this
/// bound to tell a client-originated, replay-window-eligible request
/// from internal traffic.
pub const CLIENT_RID_BASE: u64 = 1 << 32;

/// A byte payload that encodes via `serialize_bytes` (bulk copy) instead
/// of element-wise `Vec<u8>` encoding — important for block-sized
/// payloads.
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct Blob(pub Vec<u8>);

impl Blob {
    /// Wraps a byte vector.
    pub fn new(v: Vec<u8>) -> Self {
        Self(v)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes the blob, returning the inner vector.
    pub fn into_inner(self) -> Vec<u8> {
        self.0
    }
}

impl std::fmt::Debug for Blob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Blob({} bytes)", self.0.len())
    }
}

impl From<Vec<u8>> for Blob {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl From<&[u8]> for Blob {
    fn from(v: &[u8]) -> Self {
        Self(v.to_vec())
    }
}

impl From<&str> for Blob {
    fn from(v: &str) -> Self {
        Self(v.as_bytes().to_vec())
    }
}

impl std::ops::Deref for Blob {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl Serialize for Blob {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_bytes(&self.0)
    }
}

impl<'de> Deserialize<'de> for Blob {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        struct V;
        impl serde::de::Visitor<'_> for V {
            type Value = Blob;

            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a byte buffer")
            }

            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Blob, E> {
                Ok(Blob(v.to_vec()))
            }

            fn visit_byte_buf<E: serde::de::Error>(self, v: Vec<u8>) -> Result<Blob, E> {
                Ok(Blob(v))
            }
        }
        d.deserialize_byte_buf(V)
    }
}

/// The built-in data-structure types (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DsType {
    /// Append-only file of fixed-size chunks (§5.1).
    File,
    /// FIFO queue as a growing linked list of blocks (§5.2).
    Queue,
    /// Hash-slotted key-value store with cuckoo-hashed blocks (§5.3).
    KvStore,
}

impl std::fmt::Display for DsType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::File => f.write_str("file"),
            Self::Queue => f.write_str("queue"),
            Self::KvStore => f.write_str("kv_store"),
        }
    }
}

/// One endpoint in the cluster (a memory server's identity + address).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Endpoint {
    /// Memory-server identity.
    pub server: ServerId,
    /// Transport address understood by `jiffy-rpc` (e.g. `inproc:3` or
    /// `tcp:127.0.0.1:9090`).
    pub addr: String,
}

/// One replica in a block's replication chain: the physical block on one
/// server.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Replica {
    /// Physical block ID on that server.
    pub block: BlockId,
    /// Hosting server.
    pub server: ServerId,
    /// Server transport address.
    pub addr: String,
}

/// Where a logical block lives: its replication chain (head first, tail
/// last; length 1 without replication). Writes enter at the head and are
/// forwarded down the chain; reads are served at the tail (chain
/// replication, van Renesse & Schneider).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockLocation {
    /// The replica chain.
    pub chain: Vec<Replica>,
}

impl BlockLocation {
    /// An unreplicated location.
    pub fn single(block: BlockId, server: ServerId, addr: impl Into<String>) -> Self {
        Self {
            chain: vec![Replica {
                block,
                server,
                addr: addr.into(),
            }],
        }
    }

    /// The logical block identity (the head replica's block ID), used as
    /// the key in controller metadata.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty, which the controller never produces.
    pub fn id(&self) -> BlockId {
        self.head().block
    }

    /// The chain head (write entry point).
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty, which the controller never produces.
    pub fn head(&self) -> &Replica {
        self.chain.first().expect("block chain must not be empty")
    }

    /// The chain tail (read endpoint).
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty, which the controller never produces.
    pub fn tail(&self) -> &Replica {
        self.chain.last().expect("block chain must not be empty")
    }
}

/// A contiguous range of KV hash slots owned by one block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotRange {
    /// First slot (inclusive).
    pub lo: u32,
    /// Last slot (inclusive).
    pub hi: u32,
    /// The block owning these slots.
    pub location: BlockLocation,
}

impl SlotRange {
    /// Whether `slot` falls in this range.
    pub fn contains(&self, slot: u32) -> bool {
        self.lo <= slot && slot <= self.hi
    }
}

/// Client-cached view of how a data structure is partitioned across
/// blocks. Stored at the controller's metadata manager; refreshed by
/// clients on [`JiffyError::StaleMetadata`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartitionView {
    /// File: ordered chunk list; chunk `i` covers file offsets
    /// `[i * chunk_size, (i + 1) * chunk_size)`.
    File {
        /// Capacity of each chunk in bytes (= block size).
        chunk_size: u64,
        /// Chunk blocks in offset order.
        blocks: Vec<BlockLocation>,
    },
    /// Queue: the live segment list in FIFO order. Dequeues start at
    /// `head_index` and advance locally as segments drain (a sealed,
    /// empty segment answers `StaleMetadata`); enqueues go to the last
    /// segment.
    Queue {
        /// Live segments, oldest first.
        segments: Vec<BlockLocation>,
        /// Index of the current head segment within `segments`.
        head_index: u32,
    },
    /// KV-store: hash-slot ranges to blocks.
    Kv {
        /// Total number of hash slots (paper default 1024).
        num_slots: u32,
        /// Disjoint slot ranges covering `[0, num_slots)`.
        slots: Vec<SlotRange>,
    },
}

impl PartitionView {
    /// All distinct block locations referenced by this view (a KV block
    /// owning several slot ranges appears once).
    pub fn blocks(&self) -> Vec<&BlockLocation> {
        let all: Vec<&BlockLocation> = match self {
            Self::File { blocks, .. } => blocks.iter().collect(),
            Self::Queue { segments, .. } => segments.iter().collect(),
            Self::Kv { slots, .. } => slots.iter().map(|s| &s.location).collect(),
        };
        let mut out: Vec<&BlockLocation> = Vec::with_capacity(all.len());
        for loc in all {
            if !out.iter().any(|l| l.id() == loc.id()) {
                out.push(loc);
            }
        }
        out
    }
}

/// Everything a client learns when resolving an address prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixView {
    /// Node name within the job's hierarchy.
    pub name: String,
    /// Data structure bound to this prefix, if any.
    pub ds: Option<DsType>,
    /// Partition layout, present iff a data structure is bound.
    pub partition: Option<PartitionView>,
    /// Lease duration in microseconds.
    pub lease_duration_micros: u64,
    /// Parent node names (a node may have several — the DAG).
    pub parents: Vec<String>,
    /// Child node names.
    pub children: Vec<String>,
    /// Metadata version; bumps on every repartition so clients can detect
    /// staleness.
    pub version: u64,
}

/// Specification of one node when creating a whole hierarchy from a DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagNodeSpec {
    /// Node name (unique within the job).
    pub name: String,
    /// Parent node names; empty means the node hangs off the job root.
    pub parents: Vec<String>,
    /// Data structure to bind, if any.
    pub ds: Option<DsType>,
    /// Blocks to pre-allocate (0 = allocate lazily on first write).
    pub initial_blocks: u32,
}

/// Operation kinds that can be subscribed to for notifications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// File append/write.
    Write,
    /// Queue enqueue.
    Enqueue,
    /// Queue dequeue.
    Dequeue,
    /// KV put.
    Put,
    /// KV delete.
    Delete,
}

/// Asynchronous notification pushed to subscribers (paper §4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Notification {
    /// Block on which the operation happened.
    pub block: BlockId,
    /// What happened.
    pub op: OpKind,
    /// Size of the payload involved, in bytes.
    pub size: u64,
    /// Server-assigned sequence number (per block, monotonically
    /// increasing).
    pub seq: u64,
}

/// How an overloaded block should split its contents into a newly
/// allocated block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SplitSpec {
    /// File: the new block becomes chunk `chunk_index`; no data moves
    /// (files are append-only, §5.1).
    FileAppend {
        /// Index of the new chunk in the file's block list.
        chunk_index: u64,
    },
    /// Queue: the new block is linked as the new tail; no data moves.
    QueueLink,
    /// KV: move hash slots `[lo, hi]` (inclusive) to the new block.
    KvSlots {
        /// First slot to move.
        lo: u32,
        /// Last slot to move.
        hi: u32,
    },
}

/// How an underloaded block merges into a sibling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MergeSpec {
    /// Queue: the drained head block unlinks itself.
    QueueUnlink,
    /// KV: move all resident pairs into the target block, which absorbs
    /// the source's slot range.
    KvAbsorb,
}

/// Requests handled by the controller (control plane, paper §4.2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlRequest {
    /// Register a job; returns a fresh [`JobId`] and creates its hierarchy
    /// root.
    RegisterJob {
        /// Human-readable job name (for observability only).
        name: String,
    },
    /// Deregister a job, releasing all its blocks immediately.
    DeregisterJob {
        /// Job to remove.
        job: JobId,
    },
    /// Create one address prefix (paper `createAddrPrefix`).
    CreatePrefix {
        /// Owning job.
        job: JobId,
        /// New node name.
        name: String,
        /// Parent node names (empty = child of the job root).
        parents: Vec<String>,
        /// Data structure to bind, if any.
        ds: Option<DsType>,
        /// Blocks to pre-allocate.
        initial_blocks: u32,
    },
    /// Add an extra parent edge to an existing node (blocks gain an extra
    /// address, like a hard link).
    AddParent {
        /// Owning job.
        job: JobId,
        /// Existing node.
        name: String,
        /// Additional parent node.
        parent: String,
    },
    /// Create a whole hierarchy from a DAG (paper `createHierarchy`).
    CreateHierarchy {
        /// Owning job.
        job: JobId,
        /// Topologically-ordered node specs.
        nodes: Vec<DagNodeSpec>,
    },
    /// Remove a prefix and reclaim its blocks (explicit reclamation).
    RemovePrefix {
        /// Owning job.
        job: JobId,
        /// Node to remove.
        name: String,
    },
    /// Address translation: resolve a prefix to its partition metadata.
    ResolvePrefix {
        /// Owning job.
        job: JobId,
        /// Node to resolve.
        name: String,
    },
    /// Renew the lease on a prefix; propagates through the DAG (§3.2).
    RenewLease {
        /// Owning job.
        job: JobId,
        /// Node whose lease is renewed.
        name: String,
    },
    /// Query the configured lease duration for a prefix.
    GetLeaseDuration {
        /// Owning job.
        job: JobId,
        /// Node to query.
        name: String,
    },
    /// Synchronously flush a prefix's data to the persistent tier.
    FlushPrefix {
        /// Owning job.
        job: JobId,
        /// Node to flush.
        name: String,
        /// External object path (e.g. `s3://bucket/key`).
        external_path: String,
    },
    /// Load a prefix's data back from the persistent tier.
    LoadPrefix {
        /// Owning job.
        job: JobId,
        /// Node to load into.
        name: String,
        /// External object path.
        external_path: String,
    },
    /// A memory server joins the cluster, contributing blocks.
    JoinServer {
        /// Transport address clients should use.
        addr: String,
        /// Number of blocks the server hosts.
        capacity_blocks: u32,
    },
    /// A memory server leaves the cluster: the controller drains every
    /// live block off it (migrating them to the remaining servers) and
    /// then removes it from the membership table. Its `ServerId` is
    /// never re-issued.
    LeaveServer {
        /// Departing server.
        server: ServerId,
    },
    /// Periodic server → controller liveness beacon carrying the
    /// server's block occupancy. The controller's failure detector marks
    /// a server dead once `heartbeat_timeout` passes without one.
    Heartbeat {
        /// Reporting server.
        server: ServerId,
        /// Blocks currently allocated to a data structure.
        used_blocks: u32,
        /// Blocks currently free.
        free_blocks: u32,
        /// Per-tenant admission-control load observed by this server
        /// since start (DESIGN.md §14). Empty when QoS is disabled.
        tenant_loads: Vec<TenantLoad>,
    },
    /// List the membership table (observability, benchmarks, tests).
    ListServers,
    /// Data plane → controller: a block crossed the high threshold
    /// (paper Fig. 8, step 1).
    ReportOverload {
        /// The overloaded block.
        block: BlockId,
        /// Bytes currently used in the block.
        used: u64,
    },
    /// Data plane → controller: a block fell below the low threshold.
    ReportUnderload {
        /// The underloaded block.
        block: BlockId,
        /// Bytes currently used in the block.
        used: u64,
    },
    /// Data plane → controller: a repartition finished; commit the new
    /// partition map version.
    CommitRepartition {
        /// Source block of the split/merge.
        block: BlockId,
        /// Whether the new layout should be committed (false aborts, e.g.
        /// if the split raced with a delete).
        commit: bool,
    },
    /// Controller statistics snapshot (free blocks, jobs, ops served).
    GetStats,
    /// List all prefixes of a job (debugging/tests).
    ListPrefixes {
        /// Job to list.
        job: JobId,
    },
    /// Read-only per-tenant QoS counters (shares, quotas, allocated
    /// memory, admission stats aggregated across servers). Appended last
    /// to keep wire variant indices stable.
    TenantStats,
    /// Configure a tenant's QoS parameters at runtime: weighted-fair
    /// share, memory quota and data-plane rate limits. Journaled before
    /// ack so the configuration survives controller crashes.
    SetTenantShare {
        /// Tenant being configured.
        tenant: TenantId,
        /// Weighted-fair share (≥ 1) used for max-min arbitration of
        /// contested block allocations under memory pressure.
        share: u32,
        /// Hard memory quota in bytes (0 = unlimited).
        quota_bytes: u64,
        /// Data-plane op rate limit per second (0 = unlimited).
        ops_per_sec: u64,
        /// Data-plane byte rate limit per second (0 = unlimited).
        bytes_per_sec: u64,
    },
    /// Shard router → controller shard: adopt a job that was registered
    /// (and id-minted) on another shard, so every shard can own prefixes
    /// of the job. Journaled before ack like `RegisterJob`. Idempotent:
    /// adopting an already-known job with the same name is a no-op.
    /// (Appended last to keep wire variant indices stable.)
    AdoptJob {
        /// The job id minted by the registering shard.
        job: JobId,
        /// Client-supplied job name.
        name: String,
    },
}

/// The static shard map of a sharded control plane: how many controller
/// shards exist, and (via [`ShardMap::shard_of_path`]) which shard owns
/// a given `(job, path)`. Routing hashes the *root component* of a
/// dotted path with FNV-1a, so every path below one hierarchy root —
/// the lease root and all the blocks hanging off it — lands on the same
/// shard, and routing is a pure function of the map: deterministic
/// across process restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Number of controller shards (≥ 1).
    pub num_shards: u32,
}

impl ShardMap {
    /// The first (root) component of a dotted hierarchy path.
    pub fn root_component(path: &str) -> &str {
        path.split('.').next().unwrap_or(path)
    }

    /// The shard owning hierarchy root `root` of `job`. FNV-1a over the
    /// job id (little-endian) and the root name — stable across
    /// processes and restarts, unlike `RandomState` hashing.
    pub fn shard_of_root(&self, job: JobId, root: &str) -> u32 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in job.raw().to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        for b in root.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
        }
        (h % u64::from(self.num_shards.max(1))) as u32
    }

    /// The shard owning `path` of `job`, assuming the path's root
    /// component is itself a hierarchy root. Bare node names below a
    /// root are routed by the shard router's root table instead (the
    /// node co-locates with its root by construction).
    pub fn shard_of_path(&self, job: JobId, path: &str) -> u32 {
        self.shard_of_root(job, Self::root_component(path))
    }

    /// The shard owning a server id (shards mint strided server ids:
    /// shard `i` issues ids ≡ `i` mod `num_shards`).
    pub fn shard_of_server(&self, server: ServerId) -> u32 {
        (server.raw() % u64::from(self.num_shards.max(1))) as u32
    }

    /// The shard owning a block id (same striding as server ids).
    pub fn shard_of_block(&self, block: BlockId) -> u32 {
        (block.raw() % u64::from(self.num_shards.max(1))) as u32
    }
}

/// Controller statistics snapshot.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Blocks not currently allocated to any prefix.
    pub free_blocks: u64,
    /// Total blocks registered across all memory servers.
    pub total_blocks: u64,
    /// Registered jobs.
    pub jobs: u64,
    /// Total address-hierarchy nodes across jobs.
    pub prefixes: u64,
    /// Control operations served since start.
    pub ops_served: u64,
    /// Leases expired (prefixes reclaimed) since start.
    pub leases_expired: u64,
    /// Splits initiated since start.
    pub splits: u64,
    /// Merges initiated since start.
    pub merges: u64,
    /// Approximate metadata bytes held by the controller.
    pub metadata_bytes: u64,
    /// Alive (non-draining, non-dead) memory servers in the pool.
    pub servers: u64,
    /// Servers the failure detector has declared dead since start.
    pub servers_failed: u64,
    /// Live blocks migrated between servers since start (drain + rebuild).
    pub blocks_migrated: u64,
    /// Autoscaler scale-up events since start.
    pub scale_ups: u64,
    /// Autoscaler scale-down events since start.
    pub scale_downs: u64,
}

/// One row of the controller's membership table (`ListServers`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerInfo {
    /// Server ID (never re-issued, even after the server departs).
    pub server: ServerId,
    /// Transport address.
    pub addr: String,
    /// Membership state: `"alive"`, `"draining"` or `"dead"`.
    pub state: String,
    /// Total blocks the server contributed.
    pub total_blocks: u32,
    /// Blocks currently allocated to a data structure.
    pub used_blocks: u32,
    /// Blocks currently free.
    pub free_blocks: u32,
}

/// A tenant's configured QoS parameters, pushed from the controller to
/// the memory servers in heartbeat acknowledgements so the data-plane
/// admission controller enforces the current limits (DESIGN.md §14).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantLimit {
    /// The tenant.
    pub tenant: TenantId,
    /// Weighted-fair share (≥ 1).
    pub share: u32,
    /// Hard memory quota in bytes (0 = unlimited).
    pub quota_bytes: u64,
    /// Data-plane op rate limit per second (0 = unlimited).
    pub ops_per_sec: u64,
    /// Data-plane byte rate limit per second (0 = unlimited).
    pub bytes_per_sec: u64,
}

/// Per-tenant data-plane load counters, reported by each memory server
/// in its heartbeat. Counters are cumulative since server start; the
/// controller sums them across servers for `TenantStats`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantLoad {
    /// The tenant.
    pub tenant: TenantId,
    /// Data-plane requests admitted.
    pub ops_admitted: u64,
    /// Data-plane requests rejected with `Throttled`.
    pub ops_throttled: u64,
    /// Request payload bytes admitted (ingress).
    pub bytes_in: u64,
    /// Response payload bytes charged (egress).
    pub bytes_out: u64,
    /// Exponentially-weighted moving average of the tenant's op rate,
    /// in ops per second (τ ≈ 1 s).
    pub op_rate_ewma: f64,
}

/// One row of the controller's per-tenant accounting view
/// (`TenantStats`): configuration joined with memory usage and the
/// data-plane load summed across all reporting servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantStatsEntry {
    /// The tenant.
    pub tenant: TenantId,
    /// Weighted-fair share (≥ 1).
    pub share: u32,
    /// Hard memory quota in bytes (0 = unlimited).
    pub quota_bytes: u64,
    /// Blocks currently allocated to this tenant's jobs.
    pub allocated_blocks: u64,
    /// Bytes of block capacity currently allocated to this tenant.
    pub allocated_bytes: u64,
    /// Data-plane requests admitted (summed across servers).
    pub ops_admitted: u64,
    /// Data-plane requests throttled (summed across servers).
    pub ops_throttled: u64,
    /// Ingress payload bytes (summed across servers).
    pub bytes_in: u64,
    /// Egress payload bytes (summed across servers).
    pub bytes_out: u64,
    /// Op-rate EWMA summed across servers (ops/s).
    pub op_rate_ewma: f64,
}

/// Responses from the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControlResponse {
    /// Generic success.
    Ack,
    /// Job registered.
    JobRegistered {
        /// The new job's ID.
        job: JobId,
    },
    /// Prefix created (also returned per-node by `CreateHierarchy`).
    PrefixCreated {
        /// Name of the created node.
        name: String,
    },
    /// Result of `ResolvePrefix`.
    Resolved(PrefixView),
    /// Result of `RenewLease`: which prefixes were renewed (the requested
    /// one, its ancestors and its descendants).
    LeaseRenewed {
        /// All node names whose lease timestamps were refreshed.
        renewed: Vec<String>,
        /// Lease duration in microseconds.
        lease_duration_micros: u64,
    },
    /// Result of `GetLeaseDuration`.
    LeaseDuration {
        /// Lease duration in microseconds.
        micros: u64,
    },
    /// Result of `JoinServer`.
    ServerJoined {
        /// Assigned server ID.
        server: ServerId,
        /// Block IDs the server will host.
        blocks: Vec<BlockId>,
    },
    /// Result of `ReportOverload`: where to split to (paper Fig. 8,
    /// steps 2–3). `None` when no free block is available — the block
    /// must keep serving and spill will be handled by the tier above.
    SplitTarget {
        /// Newly allocated block, if any.
        target: Option<BlockLocation>,
        /// How to split, if a target was allocated.
        spec: Option<SplitSpec>,
    },
    /// Result of `ReportUnderload`. `None` when no merge is advisable.
    MergeTarget {
        /// Sibling block to merge into, if any.
        target: Option<BlockLocation>,
        /// How to merge, if a target was chosen.
        spec: Option<MergeSpec>,
    },
    /// Result of `FlushPrefix`/`LoadPrefix`.
    Persisted {
        /// Bytes moved.
        bytes: u64,
    },
    /// Result of `GetStats`.
    Stats(ControllerStats),
    /// Result of `ListPrefixes`.
    Prefixes(Vec<String>),
    /// Result of `LeaveServer`: the drain finished and the server was
    /// removed from the membership table.
    Drained {
        /// The departed server.
        server: ServerId,
        /// Live blocks migrated off it during the drain.
        blocks_migrated: u32,
    },
    /// Result of `ListServers`.
    Servers(Vec<ServerInfo>),
    /// Result of `TenantStats`: one entry per known tenant, sorted by
    /// tenant id. (Appended last to keep wire variant indices stable.)
    TenantStatsReport(Vec<TenantStatsEntry>),
    /// Result of `Heartbeat`: carries the current tenant limit table so
    /// servers converge on configuration changes within one heartbeat
    /// interval. Empty when QoS is disabled.
    HeartbeatAck {
        /// The controller's current per-tenant limits.
        limits: Vec<TenantLimit>,
    },
    /// The request spans controller shards and must be orchestrated by
    /// the client (e.g. a `CreateHierarchy` whose roots hash to
    /// different shards: the client re-issues one shard-local request
    /// per root group). (Appended last to keep wire variant indices
    /// stable.)
    CrossShard {
        /// Shard owning the first node of the request, for diagnostics.
        owner_shard: u32,
        /// The router's static shard map, so the client can group the
        /// request's nodes by owning shard itself.
        map: ShardMap,
    },
}

/// Data-structure operations executed on a block (paper Fig. 6: the
/// internal block API — `writeOp`, `readOp`, `deleteOp` per structure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DsOp {
    /// File write at an absolute offset (append-only semantics are
    /// enforced at the file level; the block validates its chunk range).
    FileWrite {
        /// Offset *within this chunk*.
        offset: u64,
        /// Data to write.
        data: Blob,
    },
    /// File append at the current end of this chunk (serialized by the
    /// block, so concurrent appenders from different tasks interleave
    /// whole items — the shuffle-file write mode of §5.1). Fails with
    /// `BlockFull` without partial effect when the chunk cannot hold the
    /// payload.
    FileAppend {
        /// Data to append.
        data: Blob,
    },
    /// File read of `len` bytes at a chunk-relative offset.
    FileRead {
        /// Offset within this chunk.
        offset: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Current size of the chunk in bytes.
    FileSize,
    /// Queue enqueue at the tail block.
    Enqueue {
        /// Item payload.
        item: Blob,
    },
    /// Queue dequeue at the head block.
    Dequeue,
    /// Read the head item without removing it.
    Peek,
    /// Number of items resident in this queue segment.
    QueueLen,
    /// KV put.
    Put {
        /// Key bytes.
        key: Blob,
        /// Value bytes.
        value: Blob,
    },
    /// KV get.
    Get {
        /// Key bytes.
        key: Blob,
    },
    /// KV delete.
    Delete {
        /// Key bytes.
        key: Blob,
    },
    /// KV existence check.
    Exists {
        /// Key bytes.
        key: Blob,
    },
    /// Number of pairs resident in this KV partition block.
    KvCount,
    /// Escape hatch for custom data structures registered on the server.
    Custom {
        /// Registered structure name.
        ds: String,
        /// Operator name.
        op: String,
        /// Opaque operator payload.
        payload: Blob,
    },
}

impl DsOp {
    /// The subscription kind this op triggers, if it is a mutation.
    pub fn kind(&self) -> Option<OpKind> {
        match self {
            Self::FileWrite { .. } | Self::FileAppend { .. } => Some(OpKind::Write),
            Self::Enqueue { .. } => Some(OpKind::Enqueue),
            Self::Dequeue => Some(OpKind::Dequeue),
            Self::Put { .. } => Some(OpKind::Put),
            Self::Delete { .. } => Some(OpKind::Delete),
            _ => None,
        }
    }

    /// Payload bytes this op carries *into* the server — what per-tenant
    /// admission control charges against the ingress byte budget.
    pub fn ingress_bytes(&self) -> u64 {
        match self {
            Self::FileWrite { data, .. } | Self::FileAppend { data } => data.len() as u64,
            Self::Enqueue { item } => item.len() as u64,
            Self::Put { key, value } => (key.len() + value.len()) as u64,
            Self::Get { key } | Self::Delete { key } | Self::Exists { key } => key.len() as u64,
            Self::Custom { payload, .. } => payload.len() as u64,
            Self::FileRead { .. }
            | Self::FileSize
            | Self::Dequeue
            | Self::Peek
            | Self::QueueLen
            | Self::KvCount => 0,
        }
    }
}

/// Result of a [`DsOp`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DsResult {
    /// Operation succeeded with nothing to return.
    Ok,
    /// Bytes read / peeked / got.
    Data(Blob),
    /// Optional payload (dequeue/get on empty/missing returns `None`).
    MaybeData(Option<Blob>),
    /// A size or count.
    Size(u64),
    /// A boolean (e.g. `Exists`).
    Bool(bool),
    /// Previous value replaced by a `Put`, if any.
    Replaced(Option<Blob>),
}

impl DsResult {
    /// Payload bytes this result carries back *out of* the server — what
    /// per-tenant egress accounting charges after execution.
    pub fn egress_bytes(&self) -> u64 {
        match self {
            Self::Data(b) => b.len() as u64,
            Self::MaybeData(b) | Self::Replaced(b) => b.as_ref().map_or(0, |b| b.len() as u64),
            Self::Ok | Self::Size(_) | Self::Bool(_) => 0,
        }
    }
}

/// Requests handled by a memory server (data plane, paper §4.2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataRequest {
    /// Execute a data-structure operator on a block.
    Op {
        /// Target block.
        block: BlockId,
        /// The operator.
        op: DsOp,
    },
    /// Subscribe the requesting session to notifications on a block.
    Subscribe {
        /// Target block.
        block: BlockId,
        /// Operation kinds of interest.
        ops: Vec<OpKind>,
    },
    /// Remove subscriptions for the requesting session.
    Unsubscribe {
        /// Target block.
        block: BlockId,
        /// Operation kinds to remove.
        ops: Vec<OpKind>,
    },
    /// Usage query (bytes used / capacity).
    Usage {
        /// Target block.
        block: BlockId,
    },
    /// Server→server: install a repartition payload into a block
    /// (paper Fig. 8, step 4).
    ImportPayload {
        /// Receiving block.
        block: BlockId,
        /// Serialized partition content (data-structure specific).
        payload: Blob,
        /// Serialized replay window of the source block (empty when the
        /// payload comes from the persistent tier, whose images predate
        /// any retry window). Shipped alongside the data so a block that
        /// migrates or splits keeps answering retries of ops it already
        /// executed. (Appended last for positional-serde compat.)
        replay: Blob,
    },
    /// Server→server (and client→head): chain replication — apply `op`
    /// to this replica's block and forward down the remaining chain.
    /// The op is acknowledged only once the tail has applied it.
    Replicate {
        /// Target block on this replica.
        block: BlockId,
        /// The mutation to apply.
        op: DsOp,
        /// The remaining downstream replicas, in chain order.
        downstream: Vec<Replica>,
        /// Originating client request id, fanned down unchanged so every
        /// replica records the same `(rid → result)` replay-window entry
        /// and any of them — including a freshly promoted head — can
        /// answer a retry without re-executing. [`INTERNAL_RID`] opts
        /// out of replay tracking. (Appended last for positional-serde
        /// compat.)
        rid: u64,
    },
    /// Controller→server: split part of `block`'s contents out according
    /// to `spec`, delivering the extracted payload to `target` (paper
    /// Fig. 8, step 4). `target` is `None` for metadata-only splits
    /// (file-append, queue-link) where no data moves.
    SplitBlock {
        /// Source (overloaded) block.
        block: BlockId,
        /// What to extract.
        spec: SplitSpec,
        /// Where to send the extracted payload.
        target: Option<BlockLocation>,
    },
    /// Controller→server: move all of `block`'s contents into `target`
    /// (scale-down merge). `target` is `None` for queue-segment unlinks,
    /// which require the segment to already be drained.
    MergeBlock {
        /// Source (underloaded) block.
        block: BlockId,
        /// How to merge.
        spec: MergeSpec,
        /// Receiving sibling block.
        target: Option<BlockLocation>,
    },
    /// Controller→server: initialize a block as a partition of the
    /// named data structure (a built-in `DsType` display name, or a
    /// custom structure registered on the server).
    InitBlock {
        /// Target block.
        block: BlockId,
        /// Registered structure name (`file`, `queue`, `kv_store`, or a
        /// custom name).
        ds: String,
        /// Structure-specific parameters (e.g. KV slot range), wire-coded.
        params: Blob,
    },
    /// Controller→server: reset a block to the free state, dropping data.
    ResetBlock {
        /// Target block.
        block: BlockId,
    },
    /// Controller→server: serialize the block's contents for flushing to
    /// the persistent tier.
    ExportBlock {
        /// Target block.
        block: BlockId,
    },
    /// Controller→server: seal or unseal a block for live migration.
    /// Sealed blocks reject mutating ops with `StaleMetadata` (reads
    /// still serve) so the migration ships a frozen image while clients
    /// keep reading — the §3.3 ops-during-repartition discipline applied
    /// to whole-block moves.
    SealBlock {
        /// Target block.
        block: BlockId,
        /// True to seal, false to unseal.
        sealed: bool,
    },
    /// Controller→source server, final step of a live migration: drop
    /// the block's data and leave a redirect tombstone pointing at the
    /// block's new home. Ops hitting the tombstone get `BlockMoved`
    /// (with the new location) until the block is reused.
    RetireBlock {
        /// The migrated-away block.
        block: BlockId,
        /// Head replica of the block's new home.
        moved_to: Replica,
    },
    /// Health check / round-trip measurement.
    Ping,
    /// Several data-structure operators executed against one block as a
    /// single request: one envelope, one replay-cache entry, one block
    /// lock acquisition for the whole run (fast-path batching, paper
    /// §4.2.2). Ops run in order and execution stops at the first
    /// failing op; [`DataResponse::Batch`] carries one entry per
    /// *attempted* op so partial failure stays visible and ops after the
    /// failure are known to be unexecuted.
    ///
    /// New variant appended last: the wire format encodes enums by
    /// variant index, so earlier indices must stay stable.
    Batch {
        /// Target block — a batch addresses exactly one block; clients
        /// group ops by resolved block.
        block: BlockId,
        /// The operators, executed in order.
        ops: Vec<DsOp>,
        /// Per-op originating request ids (empty for read-only batches,
        /// which skip replay tracking; otherwise one id per op). Ids are
        /// per *op*, not per batch, because retries may regroup pending
        /// ops into different batches after a split or re-route — each
        /// op's replay-window entry must survive regrouping. (Appended
        /// last for positional-serde compat.)
        rids: Vec<u64>,
    },
    /// Server→server (and client→head): chain-replicated batch — the
    /// multi-op analogue of [`DataRequest::Replicate`]. Ops run in order
    /// under one block-lock acquisition with stop-at-first-error prefix
    /// semantics; the successfully executed prefix is fanned down the
    /// remaining chain together with its per-op rids so every replica
    /// records the same replay-window entries. (New variant appended
    /// last: the wire format encodes enums by variant index.)
    ReplicateBatch {
        /// Target block on this replica.
        block: BlockId,
        /// The mutations to apply, in order.
        ops: Vec<DsOp>,
        /// The remaining downstream replicas, in chain order.
        downstream: Vec<Replica>,
        /// Per-op originating request ids (one per op).
        rids: Vec<u64>,
    },
}

/// Responses from a memory server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataResponse {
    /// Result of `Op` (and of `Replicate` at the chain head).
    OpResult(DsResult),
    /// Generic success.
    Ack,
    /// Result of `Usage`.
    Usage {
        /// Bytes used.
        used: u64,
        /// Block capacity in bytes.
        capacity: u64,
    },
    /// Result of `ExportBlock`.
    Exported {
        /// Serialized block contents.
        payload: Blob,
        /// Serialized replay window of the block, captured under the
        /// same lock as the payload so the pair is a consistent
        /// snapshot. Migrations re-import it at the destination; flushes
        /// to the persistent tier drop it (a reloaded block predates any
        /// retry window). (Appended last for positional-serde compat.)
        replay: Blob,
    },
    /// Reply to `Ping`.
    Pong,
    /// Result of [`DataRequest::Batch`]: one entry per attempted op, in
    /// request order. The server stops at the first failing op, so the
    /// vector is a prefix of the request's ops — every entry before the
    /// last is `Ok`, and ops past the vector's length were never
    /// attempted. (Appended last to keep wire variant indices stable.)
    Batch(Vec<Result<DsResult, JiffyError>>),
}

/// Top-level envelope multiplexing concurrent requests on one connection.
///
/// `id` correlates a response with its request; server pushes
/// (notifications) use the reserved id 0 and the `Push` variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Envelope {
    /// A control-plane request.
    ControlReq {
        /// Correlation id (client-assigned, non-zero).
        id: u64,
        /// The request.
        req: ControlRequest,
        /// Tenant on whose behalf the request is issued
        /// ([`TenantId::ANONYMOUS`] for internal/unattributed traffic).
        /// Appended last within the variant so the positional wire
        /// layout of the preceding fields is unchanged.
        tenant: TenantId,
    },
    /// A control-plane response.
    ControlResp {
        /// Correlation id echoed from the request.
        id: u64,
        /// The outcome.
        resp: Result<ControlResponse, JiffyError>,
        /// The control plane's metadata view epoch at response time.
        /// Bumped whenever block placement changes (splits, merges,
        /// drains, failure re-routing, reclaims, recovery); clients
        /// invalidate cached resolve views whose fill epoch is older.
        /// Appended last within the variant so the positional wire
        /// layout of the preceding fields is unchanged.
        epoch: u64,
    },
    /// A data-plane request.
    DataReq {
        /// Correlation id (client-assigned, non-zero).
        id: u64,
        /// The request.
        req: DataRequest,
        /// Tenant on whose behalf the request is issued
        /// ([`TenantId::ANONYMOUS`] for internal/unattributed traffic).
        tenant: TenantId,
    },
    /// A data-plane response.
    DataResp {
        /// Correlation id echoed from the request.
        id: u64,
        /// The outcome.
        resp: Result<DataResponse, JiffyError>,
    },
    /// Server-initiated notification push.
    Push(Notification),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{from_bytes, to_bytes};

    fn rt(e: Envelope) {
        let bytes = to_bytes(&e).unwrap();
        let back: Envelope = from_bytes(&bytes).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn control_messages_round_trip() {
        rt(Envelope::ControlReq {
            id: 1,
            req: ControlRequest::RegisterJob {
                name: "wordcount".into(),
            },
            tenant: TenantId(4),
        });
        rt(Envelope::ControlResp {
            id: 1,
            resp: Ok(ControlResponse::JobRegistered { job: JobId(7) }),
            epoch: 3,
        });
        rt(Envelope::ControlReq {
            id: 2,
            tenant: TenantId::ANONYMOUS,
            req: ControlRequest::CreateHierarchy {
                job: JobId(7),
                nodes: vec![DagNodeSpec {
                    name: "t1".into(),
                    parents: vec![],
                    ds: Some(DsType::KvStore),
                    initial_blocks: 2,
                }],
            },
        });
        rt(Envelope::ControlResp {
            id: 3,
            resp: Err(JiffyError::PathNotFound("t9".into())),
            epoch: 0,
        });
    }

    #[test]
    fn data_messages_round_trip() {
        rt(Envelope::DataReq {
            id: 4,
            tenant: TenantId(2),
            req: DataRequest::Op {
                block: BlockId(3),
                op: DsOp::Put {
                    key: "k".into(),
                    value: vec![0u8; 1024].into(),
                },
            },
        });
        rt(Envelope::DataResp {
            id: 4,
            resp: Ok(DataResponse::OpResult(DsResult::MaybeData(Some(
                "v".into(),
            )))),
        });
        rt(Envelope::Push(Notification {
            block: BlockId(3),
            op: OpKind::Put,
            size: 1024,
            seq: 99,
        }));
    }

    #[test]
    fn batch_messages_round_trip() {
        rt(Envelope::DataReq {
            id: 5,
            tenant: TenantId(1),
            req: DataRequest::Batch {
                block: BlockId(3),
                ops: vec![
                    DsOp::Put {
                        key: "a".into(),
                        value: "1".into(),
                    },
                    DsOp::Get { key: "a".into() },
                    DsOp::Enqueue {
                        item: vec![0u8; 256].into(),
                    },
                ],
                rids: vec![CLIENT_RID_BASE + 1, 0, CLIENT_RID_BASE + 2],
            },
        });
        rt(Envelope::DataResp {
            id: 5,
            resp: Ok(DataResponse::Batch(vec![
                Ok(DsResult::Replaced(None)),
                Ok(DsResult::MaybeData(Some("1".into()))),
                Err(JiffyError::BlockFull {
                    capacity: 64,
                    requested: 256,
                }),
            ])),
        });
        rt(Envelope::DataReq {
            id: 6,
            tenant: TenantId::ANONYMOUS,
            req: DataRequest::Batch {
                block: BlockId(0),
                ops: vec![],
                rids: vec![],
            },
        });
        rt(Envelope::DataReq {
            id: 7,
            tenant: TenantId(1),
            req: DataRequest::ReplicateBatch {
                block: BlockId(2),
                ops: vec![DsOp::Enqueue { item: "x".into() }],
                downstream: vec![Replica {
                    block: BlockId(5),
                    server: ServerId(1),
                    addr: "inproc:1".into(),
                }],
                rids: vec![CLIENT_RID_BASE + 3],
            },
        });
    }

    #[test]
    fn batch_variants_are_appended_last_on_the_wire() {
        // The wire format encodes enums as a u32 variant index, so the
        // new Batch variants must sit after every pre-existing variant:
        // Ping is index 13 (14th variant) and Pong index 4 (5th), which
        // pins Batch to 14 and 5 respectively.
        assert_eq!(to_bytes(&DataRequest::Ping).unwrap(), 13u32.to_le_bytes());
        let req = to_bytes(&DataRequest::Batch {
            block: BlockId(1),
            ops: vec![],
            rids: vec![],
        })
        .unwrap();
        assert_eq!(&req[..4], 14u32.to_le_bytes());
        assert_eq!(to_bytes(&DataResponse::Pong).unwrap(), 4u32.to_le_bytes());
        let resp = to_bytes(&DataResponse::Batch(vec![])).unwrap();
        assert_eq!(&resp[..4], 5u32.to_le_bytes());
    }

    #[test]
    fn replay_window_fields_are_appended_last_on_the_wire() {
        // ReplicateBatch is new in PR 10 and must sit after every
        // pre-existing variant: Batch is index 14, pinning
        // ReplicateBatch to 15.
        let req = to_bytes(&DataRequest::ReplicateBatch {
            block: BlockId(1),
            ops: vec![],
            downstream: vec![],
            rids: vec![],
        })
        .unwrap();
        assert_eq!(&req[..4], 15u32.to_le_bytes());
        // The rid rides at the END of Replicate, after the pre-existing
        // block/op/downstream fields, so their positional layout is
        // unchanged.
        let rep = to_bytes(&DataRequest::Replicate {
            block: BlockId(1),
            op: DsOp::Dequeue,
            downstream: vec![],
            rid: 0xAB,
        })
        .unwrap();
        assert_eq!(&rep[rep.len() - 8..], 0xABu64.to_le_bytes());
        // Batch rids and the Exported/ImportPayload replay blobs are
        // likewise appended last.
        let batch = to_bytes(&DataRequest::Batch {
            block: BlockId(1),
            ops: vec![],
            rids: vec![7],
        })
        .unwrap();
        assert_eq!(&batch[batch.len() - 8..], 7u64.to_le_bytes());
        let exported = to_bytes(&DataResponse::Exported {
            payload: Blob::new(vec![1, 2]),
            replay: Blob::new(vec![9]),
        })
        .unwrap();
        // Trailing blob: 4-byte length prefix + the single replay byte.
        assert_eq!(&exported[exported.len() - 5..], &[1, 0, 0, 0, 9]);
        let import = to_bytes(&DataRequest::ImportPayload {
            block: BlockId(1),
            payload: Blob::new(vec![1, 2]),
            replay: Blob::new(vec![9]),
        })
        .unwrap();
        assert_eq!(&import[import.len() - 5..], &[1, 0, 0, 0, 9]);
    }

    #[test]
    fn sharding_variants_are_appended_last_on_the_wire() {
        // The wire format encodes enums as a u32 variant index, so the
        // PR-9 sharding additions must sit after every pre-existing
        // variant: SetTenantShare is index 21 (22nd variant), pinning
        // AdoptJob to 22; HeartbeatAck is index 15, pinning CrossShard
        // to 16.
        let adopt = to_bytes(&ControlRequest::AdoptJob {
            job: JobId(4),
            name: "j".into(),
        })
        .unwrap();
        assert_eq!(&adopt[..4], 22u32.to_le_bytes());
        assert_eq!(
            to_bytes(&ControlRequest::TenantStats).unwrap(),
            20u32.to_le_bytes()
        );
        let hb = to_bytes(&ControlResponse::HeartbeatAck { limits: vec![] }).unwrap();
        assert_eq!(&hb[..4], 15u32.to_le_bytes());
        let cross = to_bytes(&ControlResponse::CrossShard {
            owner_shard: 2,
            map: ShardMap { num_shards: 4 },
        })
        .unwrap();
        assert_eq!(&cross[..4], 16u32.to_le_bytes());
        // The epoch rides at the END of ControlResp, after the resp
        // payload, so the positional layout of id + resp is unchanged.
        let env = to_bytes(&Envelope::ControlResp {
            id: 1,
            resp: Ok(ControlResponse::Ack),
            epoch: 7,
        })
        .unwrap();
        assert_eq!(&env[env.len() - 8..], 7u64.to_le_bytes());
    }

    #[test]
    fn shard_map_routing_is_stable_and_in_range() {
        let map = ShardMap { num_shards: 4 };
        for raw_job in 0..8u64 {
            for root in ["t0", "t1", "alpha", "beta.gamma"] {
                let a = map.shard_of_path(JobId(raw_job), root);
                let b = map.shard_of_path(JobId(raw_job), root);
                assert_eq!(a, b);
                assert!(a < 4);
            }
        }
        // Paths under one root co-locate with the root.
        assert_eq!(
            map.shard_of_path(JobId(3), "t0"),
            map.shard_of_path(JobId(3), "t0.t1.t2")
        );
        // A one-shard map routes everything to shard 0.
        let one = ShardMap { num_shards: 1 };
        assert_eq!(one.shard_of_path(JobId(9), "anything"), 0);
    }

    #[test]
    fn resolved_view_round_trips() {
        let view = PrefixView {
            name: "t4.t6".into(),
            ds: Some(DsType::KvStore),
            partition: Some(PartitionView::Kv {
                num_slots: 1024,
                slots: vec![SlotRange {
                    lo: 0,
                    hi: 1023,
                    location: BlockLocation::single(BlockId(0), ServerId(0), "inproc:0"),
                }],
            }),
            lease_duration_micros: 1_000_000,
            parents: vec!["t4".into()],
            children: vec!["t7".into()],
            version: 3,
        };
        rt(Envelope::ControlResp {
            id: 9,
            resp: Ok(ControlResponse::Resolved(view)),
            epoch: 1,
        });
    }

    #[test]
    fn blob_encodes_compactly() {
        let blob = Blob(vec![7u8; 100]);
        let bytes = to_bytes(&blob).unwrap();
        // 4-byte length prefix + raw payload.
        assert_eq!(bytes.len(), 104);
    }

    #[test]
    fn partition_view_lists_queue_segments() {
        let loc = BlockLocation::single(BlockId(1), ServerId(0), "inproc:0");
        let v = PartitionView::Queue {
            segments: vec![loc.clone()],
            head_index: 0,
        };
        assert_eq!(v.blocks().len(), 1);
        let v2 = PartitionView::Queue {
            segments: vec![
                loc.clone(),
                BlockLocation::single(BlockId(2), ServerId(0), "inproc:0"),
            ],
            head_index: 1,
        };
        assert_eq!(v2.blocks().len(), 2);
        rt(Envelope::ControlResp {
            id: 11,
            epoch: 0,
            resp: Ok(ControlResponse::Resolved(PrefixView {
                name: "q".into(),
                ds: Some(DsType::Queue),
                partition: Some(v2),
                lease_duration_micros: 1_000_000,
                parents: vec![],
                children: vec![],
                version: 1,
            })),
        });
    }

    #[test]
    fn slot_range_contains_is_inclusive() {
        let loc = BlockLocation::single(BlockId(1), ServerId(0), "x");
        let r = SlotRange {
            lo: 10,
            hi: 20,
            location: loc,
        };
        assert!(r.contains(10));
        assert!(r.contains(20));
        assert!(!r.contains(9));
        assert!(!r.contains(21));
    }

    #[test]
    fn ds_op_kinds_classify_mutations() {
        assert_eq!(
            DsOp::FileWrite {
                offset: 0,
                data: "x".into()
            }
            .kind(),
            Some(OpKind::Write)
        );
        assert_eq!(DsOp::Dequeue.kind(), Some(OpKind::Dequeue));
        assert_eq!(DsOp::FileRead { offset: 0, len: 1 }.kind(), None);
        assert_eq!(DsOp::Get { key: "k".into() }.kind(), None);
    }
}
