//! Wire protocol for Jiffy.
//!
//! The paper implements its RPC layer on Apache Thrift with two
//! optimizations: asynchronous *framed* IO and thin client wrappers over
//! the C serialization core (§4.2.2). This crate is the equivalent
//! substrate built from scratch:
//!
//! - [`wire`] — a compact, non-self-describing binary serde format
//!   (little-endian fixed-width scalars, `u32` length prefixes, enum
//!   variant indices). Plays the role of Thrift's binary protocol.
//! - [`frame`] — `u32` length-prefixed framing over any `Read`/`Write`
//!   pair, with a sanity cap on frame size.
//! - [`messages`] — every request/response exchanged between clients,
//!   memory servers and the controller.
//! - [`journal`] — the controller's write-ahead metadata journal and
//!   snapshot record types (crash recovery, DESIGN.md §11).

pub mod frame;
pub mod journal;
pub mod messages;
pub mod wire;

pub use frame::{
    encode_frame, read_frame, read_frame_into, write_frame, FrameAssembler, MAX_FRAME_LEN,
};
pub use journal::{JournalBatch, JournalOp, JournalRecord, JournalSnapshot};
pub use messages::{
    Blob, BlockLocation, ControlRequest, ControlResponse, ControllerStats, DagNodeSpec,
    DataRequest, DataResponse, DsOp, DsResult, DsType, Endpoint, Envelope, MergeSpec, Notification,
    OpKind, PartitionView, PrefixView, Replica, ServerInfo, ShardMap, SlotRange, SplitSpec,
    TenantLimit, TenantLoad, TenantStatsEntry, CLIENT_RID_BASE, INTERNAL_RID,
};
pub use wire::{from_bytes, to_bytes, to_bytes_into};
