//! File data structure (paper §5.1).
//!
//! A Jiffy file is an ordered collection of fixed-size chunks, one per
//! block. Writes are append-only at the file level; the client routes a
//! write to the chunk covering the target offset, splitting any write
//! that spans a chunk boundary. Because chunks never shrink or move,
//! files need no data repartitioning — scaling up simply links a fresh
//! chunk (`SplitSpec::FileAppend`).

use jiffy_block::Partition;
use jiffy_common::{JiffyError, Result};
use jiffy_proto::{Blob, DsOp, DsResult, DsType, SplitSpec};

/// One chunk of a Jiffy file.
pub struct FilePartition {
    capacity: usize,
    chunk_index: u64,
    data: Vec<u8>,
}

impl FilePartition {
    /// Creates an empty chunk with the given byte capacity.
    pub fn new(capacity: usize, chunk_index: u64) -> Self {
        Self {
            capacity,
            chunk_index,
            data: Vec::new(),
        }
    }

    /// The chunk's position in the file's block list.
    pub fn chunk_index(&self) -> u64 {
        self.chunk_index
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<DsResult> {
        let offset = offset as usize;
        if offset > self.data.len() {
            // Writes must be contiguous within a chunk (append-only file
            // semantics: the next byte written is the current length).
            return Err(JiffyError::OutOfRange {
                offset: offset as u64,
                len: self.data.len() as u64,
            });
        }
        let end = offset + data.len();
        if end > self.capacity {
            return Err(JiffyError::BlockFull {
                capacity: self.capacity,
                requested: end - self.data.len(),
            });
        }
        if end > self.data.len() {
            self.data.resize(end, 0);
        }
        self.data[offset..end].copy_from_slice(data);
        Ok(DsResult::Size(self.data.len() as u64))
    }

    fn read_at(&self, offset: u64, len: u64) -> Result<DsResult> {
        let start = offset as usize;
        if start > self.data.len() {
            return Err(JiffyError::OutOfRange {
                offset,
                len: self.data.len() as u64,
            });
        }
        let end = (start + len as usize).min(self.data.len());
        Ok(DsResult::Data(Blob::new(self.data[start..end].to_vec())))
    }
}

impl Partition for FilePartition {
    fn ds_type(&self) -> DsType {
        DsType::File
    }

    fn execute(&mut self, op: &DsOp) -> Result<DsResult> {
        match op {
            DsOp::FileWrite { offset, data } => self.write_at(*offset, data),
            DsOp::FileAppend { data } => self.write_at(self.data.len() as u64, data),
            DsOp::FileRead { offset, len } => self.read_at(*offset, *len),
            DsOp::FileSize => Ok(DsResult::Size(self.data.len() as u64)),
            other => Err(JiffyError::WrongDataStructure {
                expected: "file".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    fn used_bytes(&self) -> usize {
        self.data.len()
    }

    fn export(&self) -> Result<Vec<u8>> {
        jiffy_proto::to_bytes(&(self.chunk_index, Blob::new(self.data.clone())))
    }

    fn absorb(&mut self, payload: &[u8]) -> Result<()> {
        let (chunk_index, blob): (u64, Blob) = jiffy_proto::from_bytes(payload)?;
        if blob.len() > self.capacity {
            return Err(JiffyError::BlockFull {
                capacity: self.capacity,
                requested: blob.len(),
            });
        }
        self.chunk_index = chunk_index;
        self.data = blob.into_inner();
        Ok(())
    }

    fn split_out(&mut self, spec: &SplitSpec) -> Result<Vec<u8>> {
        match spec {
            // Append-only files never move data on scale-up: the new
            // chunk starts empty.
            SplitSpec::FileAppend { .. } => Ok(Vec::new()),
            other => Err(JiffyError::Internal(format!(
                "file partition cannot split with {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(offset: u64, bytes: &[u8]) -> DsOp {
        DsOp::FileWrite {
            offset,
            data: bytes.into(),
        }
    }

    #[test]
    fn append_and_read_back() {
        let mut f = FilePartition::new(64, 0);
        f.execute(&write(0, b"hello ")).unwrap();
        f.execute(&write(6, b"world")).unwrap();
        let r = f.execute(&DsOp::FileRead { offset: 0, len: 11 }).unwrap();
        assert_eq!(r, DsResult::Data(b"hello world".as_slice().into()));
        assert_eq!(f.execute(&DsOp::FileSize).unwrap(), DsResult::Size(11));
    }

    #[test]
    fn overwrite_within_written_region_is_allowed() {
        // Seek-style rewrites of already-written bytes are permitted;
        // only writing past the end (holes) is rejected.
        let mut f = FilePartition::new(64, 0);
        f.execute(&write(0, b"aaaa")).unwrap();
        f.execute(&write(1, b"bb")).unwrap();
        let r = f.execute(&DsOp::FileRead { offset: 0, len: 4 }).unwrap();
        assert_eq!(r, DsResult::Data(b"abba".as_slice().into()));
    }

    #[test]
    fn holes_are_rejected() {
        let mut f = FilePartition::new(64, 0);
        let err = f.execute(&write(10, b"x")).unwrap_err();
        assert!(matches!(err, JiffyError::OutOfRange { offset: 10, len: 0 }));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut f = FilePartition::new(8, 0);
        f.execute(&write(0, b"12345678")).unwrap();
        let err = f.execute(&write(8, b"9")).unwrap_err();
        assert!(matches!(err, JiffyError::BlockFull { capacity: 8, .. }));
    }

    #[test]
    fn read_past_end_truncates_read_beyond_start_errors() {
        let mut f = FilePartition::new(64, 0);
        f.execute(&write(0, b"abc")).unwrap();
        // Read overlapping the end: truncated.
        let r = f.execute(&DsOp::FileRead { offset: 2, len: 10 }).unwrap();
        assert_eq!(r, DsResult::Data(b"c".as_slice().into()));
        // Read starting past the end: error.
        assert!(f.execute(&DsOp::FileRead { offset: 4, len: 1 }).is_err());
    }

    #[test]
    fn wrong_ops_are_rejected() {
        let mut f = FilePartition::new(64, 0);
        assert!(matches!(
            f.execute(&DsOp::Dequeue).unwrap_err(),
            JiffyError::WrongDataStructure { .. }
        ));
        assert!(f.execute(&DsOp::Get { key: "k".into() }).is_err());
    }

    #[test]
    fn export_absorb_round_trips() {
        let mut f = FilePartition::new(64, 3);
        f.execute(&write(0, b"persisted")).unwrap();
        let payload = f.export().unwrap();
        let mut g = FilePartition::new(64, 0);
        g.absorb(&payload).unwrap();
        assert_eq!(g.chunk_index(), 3);
        assert_eq!(g.used_bytes(), 9);
        let r = g.execute(&DsOp::FileRead { offset: 0, len: 9 }).unwrap();
        assert_eq!(r, DsResult::Data(b"persisted".as_slice().into()));
    }

    #[test]
    fn absorb_respects_capacity() {
        let mut f = FilePartition::new(64, 0);
        f.execute(&write(0, &[7u8; 50])).unwrap();
        let payload = f.export().unwrap();
        let mut small = FilePartition::new(16, 0);
        assert!(small.absorb(&payload).is_err());
    }

    #[test]
    fn split_is_a_no_op_for_files() {
        let mut f = FilePartition::new(64, 0);
        f.execute(&write(0, b"data")).unwrap();
        let moved = f
            .split_out(&SplitSpec::FileAppend { chunk_index: 1 })
            .unwrap();
        assert!(moved.is_empty());
        assert_eq!(f.used_bytes(), 4);
        assert!(f.split_out(&SplitSpec::QueueLink).is_err());
    }
}
