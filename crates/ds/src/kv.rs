//! Key-value store data structure (paper §5.3).
//!
//! Keys hash to one of `H` hash slots (1024 by default); each block owns
//! one or more contiguous slot ranges, with every slot contained entirely
//! in a single block. Within a block, pairs live in a cuckoo hash table.
//! Splitting moves half of a block's slots (and the resident pairs) to a
//! newly allocated block; merging moves everything into a sibling.

use jiffy_block::Partition;
use jiffy_common::{JiffyError, Result};
use jiffy_cuckoo::CuckooMap;
use jiffy_proto::{Blob, DsOp, DsResult, DsType, SplitSpec};

use crate::params::{KvParams, KvPayload};
use crate::PER_ITEM_OVERHEAD;

/// Tagged transfer format so a split-range payload can never be confused
/// with a full-state export.
#[derive(serde::Serialize, serde::Deserialize)]
enum KvTransfer {
    /// Full partition state (flush/load, replica bootstrap).
    Full {
        num_slots: u32,
        ranges: Vec<(u32, u32)>,
        pairs: Vec<(Blob, Blob)>,
    },
    /// A slot range changing hands (split/merge).
    Range(KvPayload),
    /// Several ranges changing hands atomically (merge of a block that
    /// owns multiple ranges). Absorption is all-or-nothing.
    Multi(Vec<KvPayload>),
}

/// Stable (cross-process, cross-version) FNV-1a hash used for slot
/// routing. The client and every memory server must agree on this
/// function, so it is deliberately not `std::hash` (whose output is
/// randomized per process).
pub fn kv_slot(key: &[u8], num_slots: u32) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    (h % u64::from(num_slots)) as u32
}

/// One block's partition of a Jiffy KV-store.
pub struct KvPartition {
    capacity: usize,
    num_slots: u32,
    /// Inclusive slot ranges owned by this block, kept sorted.
    ranges: Vec<(u32, u32)>,
    map: CuckooMap<Blob, Blob>,
    used: usize,
}

impl KvPartition {
    /// Creates an empty partition owning the slot ranges in `params`.
    ///
    /// # Errors
    ///
    /// Rejects empty/invalid slot ranges.
    pub fn new(capacity: usize, params: KvParams) -> Result<Self> {
        if params.num_slots == 0 {
            return Err(JiffyError::Internal("num_slots must be > 0".into()));
        }
        for &(lo, hi) in &params.ranges {
            if lo > hi || hi >= params.num_slots {
                return Err(JiffyError::Internal(format!(
                    "invalid slot range ({lo}, {hi}) for {} slots",
                    params.num_slots
                )));
            }
        }
        let mut ranges = params.ranges;
        ranges.sort_unstable();
        Ok(Self {
            capacity,
            num_slots: params.num_slots,
            ranges,
            map: CuckooMap::new(),
            used: 0,
        })
    }

    /// The slot ranges this block currently owns.
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Number of resident pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no pairs are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn owns(&self, slot: u32) -> bool {
        self.ranges.iter().any(|&(lo, hi)| lo <= slot && slot <= hi)
    }

    fn check_routing(&self, key: &[u8]) -> Result<u32> {
        let slot = kv_slot(key, self.num_slots);
        if self.owns(slot) {
            Ok(slot)
        } else {
            // The client's cached slot map is out of date (a split moved
            // this slot elsewhere).
            Err(JiffyError::StaleMetadata)
        }
    }

    fn pair_cost(key: &Blob, value: &Blob) -> usize {
        key.len() + value.len() + PER_ITEM_OVERHEAD
    }

    fn put(&mut self, key: &Blob, value: &Blob) -> Result<DsResult> {
        self.check_routing(key)?;
        let new_cost = Self::pair_cost(key, value);
        let old_cost = self
            .map
            .get(key)
            .map(|old| Self::pair_cost(key, old))
            .unwrap_or(0);
        if self.used - old_cost + new_cost > self.capacity {
            return Err(JiffyError::BlockFull {
                capacity: self.capacity,
                requested: new_cost - old_cost,
            });
        }
        let prev = self.map.insert(key.clone(), value.clone());
        self.used = self.used - old_cost + new_cost;
        Ok(DsResult::Replaced(prev))
    }

    fn get(&self, key: &Blob) -> Result<DsResult> {
        self.check_routing(key)?;
        Ok(DsResult::MaybeData(self.map.get(key).cloned()))
    }

    fn delete(&mut self, key: &Blob) -> Result<DsResult> {
        self.check_routing(key)?;
        match self.map.remove(key) {
            Some(old) => {
                self.used -= Self::pair_cost(key, &old);
                Ok(DsResult::MaybeData(Some(old)))
            }
            None => Ok(DsResult::MaybeData(None)),
        }
    }

    /// Removes a slot range from ownership, extracting its pairs.
    fn extract_range(&mut self, lo: u32, hi: u32) -> Result<Vec<(Blob, Blob)>> {
        // The range must be covered by owned ranges.
        if !(lo..=hi).all(|s| self.owns(s)) {
            return Err(JiffyError::Internal(format!(
                "cannot split: slots ({lo}, {hi}) not fully owned"
            )));
        }
        let num_slots = self.num_slots;
        let pairs = self
            .map
            .extract_if(|k, _| (lo..=hi).contains(&kv_slot(k, num_slots)));
        for (k, v) in &pairs {
            self.used -= Self::pair_cost(k, v);
        }
        // Shrink ownership: remove [lo, hi] from each overlapping range.
        let mut new_ranges = Vec::with_capacity(self.ranges.len() + 1);
        for &(a, b) in &self.ranges {
            if b < lo || a > hi {
                new_ranges.push((a, b));
                continue;
            }
            if a < lo {
                new_ranges.push((a, lo - 1));
            }
            if b > hi {
                new_ranges.push((hi + 1, b));
            }
        }
        self.ranges = new_ranges;
        Ok(pairs)
    }
}

impl Partition for KvPartition {
    fn ds_type(&self) -> DsType {
        DsType::KvStore
    }

    fn execute(&mut self, op: &DsOp) -> Result<DsResult> {
        match op {
            DsOp::Put { key, value } => self.put(key, value),
            DsOp::Get { key } => self.get(key),
            DsOp::Delete { key } => self.delete(key),
            DsOp::Exists { key } => {
                self.check_routing(key)?;
                Ok(DsResult::Bool(self.map.contains(key)))
            }
            DsOp::KvCount => Ok(DsResult::Size(self.map.len() as u64)),
            other => Err(JiffyError::WrongDataStructure {
                expected: "kv_store".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    fn used_bytes(&self) -> usize {
        self.used
    }

    fn export(&self) -> Result<Vec<u8>> {
        let pairs: Vec<(Blob, Blob)> = self
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        jiffy_proto::to_bytes(&KvTransfer::Full {
            num_slots: self.num_slots,
            ranges: self.ranges.clone(),
            pairs,
        })
    }

    fn absorb(&mut self, payload: &[u8]) -> Result<()> {
        match jiffy_proto::from_bytes::<KvTransfer>(payload)? {
            KvTransfer::Multi(parts) => {
                let total: usize = parts
                    .iter()
                    .flat_map(|p| p.pairs.iter())
                    .map(|(k, v)| Self::pair_cost(k, v))
                    .sum();
                if self.used + total > self.capacity {
                    return Err(JiffyError::BlockFull {
                        capacity: self.capacity,
                        requested: total,
                    });
                }
                for p in parts {
                    self.ranges.push((p.lo, p.hi));
                    for (k, v) in p.pairs {
                        self.used += Self::pair_cost(&k, &v);
                        self.map.insert(k, v);
                    }
                }
                self.ranges.sort_unstable();
                Ok(())
            }
            KvTransfer::Range(p) => {
                let total: usize = p.pairs.iter().map(|(k, v)| Self::pair_cost(k, v)).sum();
                if self.used + total > self.capacity {
                    return Err(JiffyError::BlockFull {
                        capacity: self.capacity,
                        requested: total,
                    });
                }
                self.ranges.push((p.lo, p.hi));
                self.ranges.sort_unstable();
                for (k, v) in p.pairs {
                    self.used += Self::pair_cost(&k, &v);
                    self.map.insert(k, v);
                }
                Ok(())
            }
            KvTransfer::Full {
                num_slots,
                ranges,
                pairs,
            } => {
                let total: usize = pairs.iter().map(|(k, v)| Self::pair_cost(k, v)).sum();
                if total > self.capacity {
                    return Err(JiffyError::BlockFull {
                        capacity: self.capacity,
                        requested: total,
                    });
                }
                self.num_slots = num_slots;
                self.ranges = ranges;
                self.map = CuckooMap::new();
                self.used = 0;
                for (k, v) in pairs {
                    self.used += Self::pair_cost(&k, &v);
                    self.map.insert(k, v);
                }
                Ok(())
            }
        }
    }

    fn split_out(&mut self, spec: &SplitSpec) -> Result<Vec<u8>> {
        match spec {
            SplitSpec::KvSlots { lo, hi } => {
                let pairs = self.extract_range(*lo, *hi)?;
                jiffy_proto::to_bytes(&KvTransfer::Range(KvPayload {
                    lo: *lo,
                    hi: *hi,
                    pairs,
                }))
            }
            other => Err(JiffyError::Internal(format!(
                "kv partition cannot split with {other:?}"
            ))),
        }
    }

    fn merge_out(&mut self) -> Result<Vec<Vec<u8>>> {
        let ranges = self.ranges.clone();
        let mut parts = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            let pairs = self.extract_range(lo, hi)?;
            parts.push(KvPayload { lo, hi, pairs });
        }
        debug_assert!(self.map.is_empty());
        debug_assert!(self.ranges.is_empty());
        // One atomic payload: the receiving block absorbs everything or
        // nothing, so an aborted merge can roll back losslessly.
        Ok(vec![jiffy_proto::to_bytes(&KvTransfer::Multi(parts))?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_partition() -> KvPartition {
        KvPartition::new(
            1 << 20,
            KvParams {
                ranges: vec![(0, 1023)],
                num_slots: 1024,
            },
        )
        .unwrap()
    }

    fn put(k: &str, v: &str) -> DsOp {
        DsOp::Put {
            key: k.into(),
            value: v.into(),
        }
    }

    #[test]
    fn kv_slot_is_stable_and_in_range() {
        // Regression-pinned values: routing must never change across
        // releases or the cluster would mis-route after an upgrade.
        assert_eq!(kv_slot(b"hello", 1024), kv_slot(b"hello", 1024));
        for key in [b"a".as_slice(), b"hello", b"", &[0xFF; 32]] {
            assert!(kv_slot(key, 1024) < 1024);
            assert!(kv_slot(key, 7) < 7);
        }
        assert_ne!(kv_slot(b"key-1", 1024), kv_slot(b"key-2", 1024));
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut kv = full_partition();
        assert_eq!(
            kv.execute(&put("k1", "v1")).unwrap(),
            DsResult::Replaced(None)
        );
        assert_eq!(
            kv.execute(&put("k1", "v2")).unwrap(),
            DsResult::Replaced(Some("v1".into()))
        );
        assert_eq!(
            kv.execute(&DsOp::Get { key: "k1".into() }).unwrap(),
            DsResult::MaybeData(Some("v2".into()))
        );
        assert_eq!(
            kv.execute(&DsOp::Exists { key: "k1".into() }).unwrap(),
            DsResult::Bool(true)
        );
        assert_eq!(
            kv.execute(&DsOp::Delete { key: "k1".into() }).unwrap(),
            DsResult::MaybeData(Some("v2".into()))
        );
        assert_eq!(
            kv.execute(&DsOp::Get { key: "k1".into() }).unwrap(),
            DsResult::MaybeData(None)
        );
    }

    #[test]
    fn usage_tracks_replacements_and_deletes() {
        let mut kv = full_partition();
        kv.execute(&put("key", "0123456789")).unwrap();
        let one = 3 + 10 + PER_ITEM_OVERHEAD;
        assert_eq!(kv.used_bytes(), one);
        kv.execute(&put("key", "01")).unwrap();
        assert_eq!(kv.used_bytes(), 3 + 2 + PER_ITEM_OVERHEAD);
        kv.execute(&DsOp::Delete { key: "key".into() }).unwrap();
        assert_eq!(kv.used_bytes(), 0);
    }

    #[test]
    fn routing_outside_owned_slots_is_stale() {
        let slot = kv_slot(b"wanderer", 1024);
        // Build a partition that owns everything except that slot.
        let mut ranges = Vec::new();
        if slot > 0 {
            ranges.push((0, slot - 1));
        }
        if slot < 1023 {
            ranges.push((slot + 1, 1023));
        }
        let mut kv = KvPartition::new(
            1 << 20,
            KvParams {
                ranges,
                num_slots: 1024,
            },
        )
        .unwrap();
        assert_eq!(
            kv.execute(&put("wanderer", "v")).unwrap_err(),
            JiffyError::StaleMetadata
        );
        assert_eq!(
            kv.execute(&DsOp::Get {
                key: "wanderer".into()
            })
            .unwrap_err(),
            JiffyError::StaleMetadata
        );
    }

    #[test]
    fn split_moves_exactly_the_range_pairs() {
        let mut kv = full_partition();
        for i in 0..500 {
            kv.execute(&put(&format!("key-{i}"), &format!("val-{i}")))
                .unwrap();
        }
        let before_used = kv.used_bytes();
        let payload = kv
            .split_out(&SplitSpec::KvSlots { lo: 512, hi: 1023 })
            .unwrap();
        // Source no longer owns the upper half.
        assert_eq!(kv.ranges(), &[(0, 511)]);
        // Install the payload in a fresh block.
        let mut dest = KvPartition::new(
            1 << 20,
            KvParams {
                ranges: vec![],
                num_slots: 1024,
            },
        )
        .unwrap();
        dest.absorb(&payload).unwrap();
        assert_eq!(dest.ranges(), &[(512, 1023)]);
        // Conservation: every pair is in exactly one block.
        assert_eq!(kv.len() + dest.len(), 500);
        assert_eq!(kv.used_bytes() + dest.used_bytes(), before_used);
        for i in 0..500 {
            let key: Blob = format!("key-{i}").as_str().into();
            let slot = kv_slot(&key, 1024);
            let holder = if slot < 512 { &mut kv } else { &mut dest };
            assert_eq!(
                holder.execute(&DsOp::Get { key: key.clone() }).unwrap(),
                DsResult::MaybeData(Some(format!("val-{i}").as_str().into())),
                "key {i} (slot {slot}) must be in the owning block"
            );
        }
    }

    #[test]
    fn split_of_unowned_slots_fails() {
        let mut kv = KvPartition::new(
            1 << 20,
            KvParams {
                ranges: vec![(0, 511)],
                num_slots: 1024,
            },
        )
        .unwrap();
        assert!(kv
            .split_out(&SplitSpec::KvSlots { lo: 500, hi: 600 })
            .is_err());
    }

    #[test]
    fn export_absorb_full_state() {
        let mut kv = full_partition();
        for i in 0..100 {
            kv.execute(&put(&format!("k{i}"), &format!("v{i}")))
                .unwrap();
        }
        let payload = kv.export().unwrap();
        let mut restored = KvPartition::new(
            1 << 20,
            KvParams {
                ranges: vec![],
                num_slots: 1024,
            },
        )
        .unwrap();
        restored.absorb(&payload).unwrap();
        assert_eq!(restored.len(), 100);
        assert_eq!(restored.used_bytes(), kv.used_bytes());
        assert_eq!(restored.ranges(), kv.ranges());
        assert_eq!(
            restored.execute(&DsOp::Get { key: "k42".into() }).unwrap(),
            DsResult::MaybeData(Some("v42".into()))
        );
    }

    #[test]
    fn capacity_enforced_on_put_and_absorb() {
        let mut kv = KvPartition::new(
            64,
            KvParams {
                ranges: vec![(0, 1023)],
                num_slots: 1024,
            },
        )
        .unwrap();
        // 3 + 40 + 16 = 59 fits; next put overflows.
        kv.execute(&put("big", &"x".repeat(40))).unwrap();
        assert!(matches!(
            kv.execute(&put("two", "y")).unwrap_err(),
            JiffyError::BlockFull { .. }
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(KvPartition::new(
            1024,
            KvParams {
                ranges: vec![(10, 5)],
                num_slots: 1024
            }
        )
        .is_err());
        assert!(KvPartition::new(
            1024,
            KvParams {
                ranges: vec![(0, 2000)],
                num_slots: 1024
            }
        )
        .is_err());
        assert!(KvPartition::new(
            1024,
            KvParams {
                ranges: vec![],
                num_slots: 0
            }
        )
        .is_err());
    }

    #[test]
    fn wrong_ops_rejected() {
        let mut kv = full_partition();
        assert!(matches!(
            kv.execute(&DsOp::Enqueue { item: "x".into() }).unwrap_err(),
            JiffyError::WrongDataStructure { .. }
        ));
    }
}
