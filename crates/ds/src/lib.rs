//! Jiffy's built-in data structures (paper §5, Table 2).
//!
//! Each structure is implemented as a [`jiffy_block::Partition`]: the
//! state one block holds, the operators it accepts, and how it splits
//! into / merges with sibling blocks when the controller rebalances
//! capacity:
//!
//! | structure | `writeOp` | `readOp` | `deleteOp` | repartition |
//! |---|---|---|---|---|
//! | [`file::FilePartition`] | `FileWrite` | `FileRead` | — | none (append-only: new chunks are simply linked) |
//! | [`queue::QueuePartition`] | `Enqueue` | `Dequeue`/`Peek` | via `Dequeue` | none (blocks link/unlink at the ends) |
//! | [`kv::KvPartition`] | `Put` | `Get`/`Exists` | `Delete` | hash-slot reassignment, half the slots per split |
//!
//! The `getBlock` routing operator of the paper's Fig. 6 lives on the
//! client side (`jiffy-client`); servers validate routing with
//! structure-local state (file chunk ranges, KV slot ownership) and
//! answer [`jiffy_common::JiffyError::StaleMetadata`] when a request
//! reaches a block that no longer owns the addressed data.

pub mod file;
pub mod kv;
pub mod params;
pub mod queue;

pub use file::FilePartition;
pub use kv::{kv_slot, KvPartition};
pub use params::{register_builtins, FileParams, KvParams, KvPayload, QueueParams};
pub use queue::QueuePartition;

/// Bookkeeping overhead charged per stored item, mirroring the paper's
/// observation that allocated capacity slightly exceeds raw data size due
/// to per-object metadata (Fig. 11a).
pub const PER_ITEM_OVERHEAD: usize = 16;
