//! FIFO queue data structure (paper §5.2).
//!
//! A Jiffy queue is a growing linked list of blocks; each block stores a
//! segment of items. Enqueues go to the tail block, dequeues to the head
//! block (the client caches both and refreshes from the controller when
//! a block reports it is exhausted). Segments never exchange data —
//! scale-up links a fresh tail (`SplitSpec::QueueLink`), scale-down
//! unlinks a drained head (`MergeSpec::QueueUnlink`) — so repartitioning
//! is metadata-only, which is why the paper reports near-zero
//! repartitioning cost for queues (Fig. 11b).

use std::collections::VecDeque;

use jiffy_block::Partition;
use jiffy_common::{JiffyError, Result};
use jiffy_proto::{Blob, DsOp, DsResult, DsType, SplitSpec};

use crate::PER_ITEM_OVERHEAD;

/// One segment of a Jiffy FIFO queue.
pub struct QueuePartition {
    capacity: usize,
    segment_index: u64,
    items: VecDeque<Blob>,
    used: usize,
    /// Set when the segment stops accepting enqueues because a newer tail
    /// segment exists; enqueues then answer `StaleMetadata` so clients
    /// refresh their cached tail pointer.
    sealed: bool,
    /// Set when every item ever stored here has been dequeued and a
    /// newer head exists; dequeues answer `StaleMetadata`.
    drained_forward: bool,
}

impl QueuePartition {
    /// Creates an empty segment with the given byte capacity.
    pub fn new(capacity: usize, segment_index: u64) -> Self {
        Self {
            capacity,
            segment_index,
            items: VecDeque::new(),
            used: 0,
            sealed: false,
            drained_forward: false,
        }
    }

    /// Segment ordinal within the queue (head = lowest live ordinal).
    pub fn segment_index(&self) -> u64 {
        self.segment_index
    }

    /// Number of items resident.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the segment holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Marks this segment as no longer the tail: further enqueues are
    /// redirected via `StaleMetadata`.
    pub fn seal(&mut self) {
        self.sealed = true;
    }

    /// Whether the segment is sealed.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    fn enqueue(&mut self, item: &Blob) -> Result<DsResult> {
        if self.sealed {
            return Err(JiffyError::StaleMetadata);
        }
        let cost = item.len() + PER_ITEM_OVERHEAD;
        if self.used + cost > self.capacity {
            return Err(JiffyError::BlockFull {
                capacity: self.capacity,
                requested: cost,
            });
        }
        self.items.push_back(item.clone());
        self.used += cost;
        Ok(DsResult::Ok)
    }

    fn dequeue(&mut self) -> Result<DsResult> {
        match self.items.pop_front() {
            Some(item) => {
                self.used -= item.len() + PER_ITEM_OVERHEAD;
                Ok(DsResult::MaybeData(Some(item)))
            }
            None if self.sealed => {
                // Sealed and empty: the client should advance to the next
                // segment.
                self.drained_forward = true;
                Err(JiffyError::StaleMetadata)
            }
            None => Ok(DsResult::MaybeData(None)),
        }
    }
}

impl Partition for QueuePartition {
    fn ds_type(&self) -> DsType {
        DsType::Queue
    }

    fn execute(&mut self, op: &DsOp) -> Result<DsResult> {
        match op {
            DsOp::Enqueue { item } => self.enqueue(item),
            DsOp::Dequeue => self.dequeue(),
            DsOp::Peek => Ok(DsResult::MaybeData(self.items.front().cloned())),
            DsOp::QueueLen => Ok(DsResult::Size(self.items.len() as u64)),
            other => Err(JiffyError::WrongDataStructure {
                expected: "queue".into(),
                found: format!("{other:?}"),
            }),
        }
    }

    fn used_bytes(&self) -> usize {
        self.used
    }

    fn export(&self) -> Result<Vec<u8>> {
        let items: Vec<&Blob> = self.items.iter().collect();
        jiffy_proto::to_bytes(&(self.segment_index, self.sealed, items))
    }

    fn absorb(&mut self, payload: &[u8]) -> Result<()> {
        let (segment_index, sealed, items): (u64, bool, Vec<Blob>) =
            jiffy_proto::from_bytes(payload)?;
        let total: usize = items.iter().map(|b| b.len() + PER_ITEM_OVERHEAD).sum();
        if self.used + total > self.capacity {
            return Err(JiffyError::BlockFull {
                capacity: self.capacity,
                requested: total,
            });
        }
        self.segment_index = segment_index;
        self.sealed = sealed;
        self.used += total;
        self.items.extend(items);
        Ok(())
    }

    fn split_out(&mut self, spec: &SplitSpec) -> Result<Vec<u8>> {
        match spec {
            // Linking a new tail moves no data; this segment simply stops
            // being the tail.
            SplitSpec::QueueLink => {
                self.seal();
                Ok(Vec::new())
            }
            other => Err(JiffyError::Internal(format!(
                "queue partition cannot split with {other:?}"
            ))),
        }
    }

    fn merge_out(&mut self) -> Result<Vec<Vec<u8>>> {
        // A queue segment only unlinks once fully drained; there is never
        // data to move.
        if !self.items.is_empty() {
            return Err(JiffyError::Internal(format!(
                "queue segment {} still holds {} items; cannot unlink",
                self.segment_index,
                self.items.len()
            )));
        }
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enq(s: &str) -> DsOp {
        DsOp::Enqueue { item: s.into() }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = QueuePartition::new(1024, 0);
        for s in ["a", "b", "c"] {
            q.execute(&enq(s)).unwrap();
        }
        assert_eq!(q.execute(&DsOp::QueueLen).unwrap(), DsResult::Size(3));
        for s in ["a", "b", "c"] {
            let r = q.execute(&DsOp::Dequeue).unwrap();
            assert_eq!(r, DsResult::MaybeData(Some(s.into())));
        }
        assert_eq!(
            q.execute(&DsOp::Dequeue).unwrap(),
            DsResult::MaybeData(None)
        );
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = QueuePartition::new(1024, 0);
        q.execute(&enq("x")).unwrap();
        assert_eq!(
            q.execute(&DsOp::Peek).unwrap(),
            DsResult::MaybeData(Some("x".into()))
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn usage_accounts_payload_plus_overhead() {
        let mut q = QueuePartition::new(1024, 0);
        q.execute(&enq("abcd")).unwrap();
        assert_eq!(q.used_bytes(), 4 + PER_ITEM_OVERHEAD);
        q.execute(&DsOp::Dequeue).unwrap();
        assert_eq!(q.used_bytes(), 0);
    }

    #[test]
    fn full_segment_rejects_enqueue() {
        let mut q = QueuePartition::new(PER_ITEM_OVERHEAD + 4, 0);
        q.execute(&enq("1234")).unwrap();
        let err = q.execute(&enq("5")).unwrap_err();
        assert!(matches!(err, JiffyError::BlockFull { .. }));
    }

    #[test]
    fn sealed_segment_redirects_enqueues() {
        let mut q = QueuePartition::new(1024, 0);
        q.execute(&enq("a")).unwrap();
        q.split_out(&SplitSpec::QueueLink).unwrap();
        assert!(q.is_sealed());
        assert_eq!(q.execute(&enq("b")).unwrap_err(), JiffyError::StaleMetadata);
        // Dequeues continue to drain resident items.
        assert_eq!(
            q.execute(&DsOp::Dequeue).unwrap(),
            DsResult::MaybeData(Some("a".into()))
        );
        // Once empty AND sealed, dequeues redirect too.
        assert_eq!(
            q.execute(&DsOp::Dequeue).unwrap_err(),
            JiffyError::StaleMetadata
        );
    }

    #[test]
    fn empty_unsealed_dequeue_returns_none() {
        let mut q = QueuePartition::new(1024, 0);
        assert_eq!(
            q.execute(&DsOp::Dequeue).unwrap(),
            DsResult::MaybeData(None)
        );
    }

    #[test]
    fn export_absorb_round_trips_items_and_seal_state() {
        let mut q = QueuePartition::new(1024, 5);
        q.execute(&enq("one")).unwrap();
        q.execute(&enq("two")).unwrap();
        q.seal();
        let payload = q.export().unwrap();
        let mut r = QueuePartition::new(1024, 0);
        r.absorb(&payload).unwrap();
        assert_eq!(r.segment_index(), 5);
        assert!(r.is_sealed());
        assert_eq!(r.len(), 2);
        assert_eq!(r.used_bytes(), q.used_bytes());
        assert_eq!(
            r.execute(&DsOp::Dequeue).unwrap(),
            DsResult::MaybeData(Some("one".into()))
        );
    }

    #[test]
    fn wrong_ops_are_rejected() {
        let mut q = QueuePartition::new(1024, 0);
        assert!(matches!(
            q.execute(&DsOp::FileSize).unwrap_err(),
            JiffyError::WrongDataStructure { .. }
        ));
    }

    #[test]
    fn absorb_respects_capacity() {
        let mut q = QueuePartition::new(1024, 0);
        q.execute(&enq(&"x".repeat(100))).unwrap();
        let payload = q.export().unwrap();
        let mut small = QueuePartition::new(32, 0);
        assert!(small.absorb(&payload).is_err());
    }
}
