//! Wire-encoded initialization parameters and repartition payloads for
//! the built-in structures, plus the factory registration entry point.

use jiffy_block::PartitionRegistry;
use jiffy_common::Result;
use jiffy_proto::Blob;
use serde::{Deserialize, Serialize};

/// Init parameters for a file chunk block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileParams {
    /// Which chunk of the file this block stores (offset = index × chunk
    /// size).
    pub chunk_index: u64,
}

/// Init parameters for a queue segment block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueueParams {
    /// Segment ordinal within the queue's linked list (for debugging).
    pub segment_index: u64,
}

/// Init parameters for a KV partition block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvParams {
    /// Inclusive slot ranges owned by this block.
    pub ranges: Vec<(u32, u32)>,
    /// Total slots in the keyspace (must match the controller's view).
    pub num_slots: u32,
}

/// Payload moved between KV blocks during a split or merge: the slot
/// range changing hands and the pairs that live in it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvPayload {
    /// First slot transferred (inclusive).
    pub lo: u32,
    /// Last slot transferred (inclusive).
    pub hi: u32,
    /// The key-value pairs moving.
    pub pairs: Vec<(Blob, Blob)>,
}

/// Registers factories for the three built-in structures under their
/// [`jiffy_proto::DsType`] display names (`file`, `queue`, `kv_store`).
pub fn register_builtins(registry: &mut PartitionRegistry) {
    registry.register(
        "file",
        Box::new(|capacity, params| {
            let p: FileParams = if params.is_empty() {
                FileParams { chunk_index: 0 }
            } else {
                jiffy_proto::from_bytes(params)?
            };
            Ok(Box::new(crate::file::FilePartition::new(capacity, p.chunk_index)) as _)
        }),
    );
    registry.register(
        "queue",
        Box::new(|capacity, params| {
            let p: QueueParams = if params.is_empty() {
                QueueParams::default()
            } else {
                jiffy_proto::from_bytes(params)?
            };
            Ok(Box::new(crate::queue::QueuePartition::new(capacity, p.segment_index)) as _)
        }),
    );
    registry.register(
        "kv_store",
        Box::new(|capacity, params| {
            let p: KvParams = jiffy_proto::from_bytes(params)?;
            Ok(Box::new(crate::kv::KvPartition::new(capacity, p)?) as _)
        }),
    );
}

/// Encodes init parameters for any of the built-in structures.
///
/// # Errors
///
/// Codec failures only.
pub fn encode_params<T: Serialize>(params: &T) -> Result<Vec<u8>> {
    jiffy_proto::to_bytes(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_proto::{from_bytes, to_bytes};

    #[test]
    fn params_round_trip() {
        let f = FileParams { chunk_index: 7 };
        assert_eq!(from_bytes::<FileParams>(&to_bytes(&f).unwrap()).unwrap(), f);
        let k = KvParams {
            ranges: vec![(0, 511), (768, 1023)],
            num_slots: 1024,
        };
        assert_eq!(from_bytes::<KvParams>(&to_bytes(&k).unwrap()).unwrap(), k);
    }

    #[test]
    fn builtins_register_and_instantiate() {
        let mut reg = PartitionRegistry::new();
        register_builtins(&mut reg);
        assert!(reg.contains("file"));
        assert!(reg.contains("queue"));
        assert!(reg.contains("kv_store"));
        assert!(reg.create("file", 1024, &[]).is_ok());
        assert!(reg.create("queue", 1024, &[]).is_ok());
        let kv_params = encode_params(&KvParams {
            ranges: vec![(0, 1023)],
            num_slots: 1024,
        })
        .unwrap();
        assert!(reg.create("kv_store", 1024, &kv_params).is_ok());
        // KV requires params.
        assert!(reg.create("kv_store", 1024, &[]).is_err());
    }
}
