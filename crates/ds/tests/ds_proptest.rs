//! Property tests on the data-structure partitions: repartitioning must
//! never lose, duplicate or corrupt data.

use jiffy_block::Partition;
use jiffy_ds::{kv_slot, FilePartition, KvParams, KvPartition, QueuePartition};
use jiffy_proto::{Blob, DsOp, DsResult, SplitSpec};
use proptest::prelude::*;

const CAP: usize = 1 << 22;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A file chunk reads back exactly what was appended, under arbitrary
    /// append sizes.
    #[test]
    fn file_appends_read_back(chunks in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..256), 1..32))
    {
        let mut f = FilePartition::new(CAP, 0);
        let mut model: Vec<u8> = Vec::new();
        for c in &chunks {
            let offset = model.len() as u64;
            f.execute(&DsOp::FileWrite { offset, data: c.clone().into() }).unwrap();
            model.extend_from_slice(c);
        }
        let got = f.execute(&DsOp::FileRead { offset: 0, len: model.len() as u64 }).unwrap();
        prop_assert_eq!(got, DsResult::Data(Blob::new(model.clone())));
        // Random interior reads match the model too.
        if model.len() > 2 {
            let mid = model.len() / 2;
            let got = f.execute(&DsOp::FileRead { offset: mid as u64, len: 2 }).unwrap();
            prop_assert_eq!(got, DsResult::Data(Blob::new(model[mid..mid + 2].to_vec())));
        }
    }

    /// FIFO order is preserved across an arbitrary seal point (segment
    /// split): items drain from the old segment first, then the new one.
    #[test]
    fn queue_order_survives_split(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..64),
        split_at_frac in 0.0f64..1.0)
    {
        let split_at = ((items.len() - 1) as f64 * split_at_frac) as usize;
        let mut seg0 = QueuePartition::new(CAP, 0);
        let mut seg1 = QueuePartition::new(CAP, 1);
        for (i, item) in items.iter().enumerate() {
            if i == split_at {
                // Controller links a new tail; old tail seals.
                seg0.split_out(&SplitSpec::QueueLink).unwrap();
            }
            let target = if i < split_at { &mut seg0 } else { &mut seg1 };
            target.execute(&DsOp::Enqueue { item: item.clone().into() }).unwrap();
        }
        // Drain: head segment first, advancing on StaleMetadata.
        let mut drained: Vec<Vec<u8>> = Vec::new();
        loop {
            match seg0.execute(&DsOp::Dequeue) {
                Ok(DsResult::MaybeData(Some(b))) => drained.push(b.into_inner()),
                Ok(DsResult::MaybeData(None)) => break, // unsealed+empty: fully drained
                Err(_) => break,                        // sealed+empty: advance
                other => panic!("unexpected {other:?}"),
            }
        }
        while let Ok(DsResult::MaybeData(Some(b))) = seg1.execute(&DsOp::Dequeue) {
            drained.push(b.into_inner());
        }
        prop_assert_eq!(drained, items);
    }

    /// Splitting a KV partition at an arbitrary slot pivot preserves the
    /// exact key→value mapping, with each key served by the owning side.
    #[test]
    fn kv_split_preserves_mapping(
        pairs in proptest::collection::hash_map(
            proptest::collection::vec(any::<u8>(), 1..16),
            proptest::collection::vec(any::<u8>(), 0..32),
            1..128),
        pivot in 1u32..1023)
    {
        let mut left = KvPartition::new(CAP, KvParams { ranges: vec![(0, 1023)], num_slots: 1024 }).unwrap();
        for (k, v) in &pairs {
            left.execute(&DsOp::Put { key: k.clone().into(), value: v.clone().into() }).unwrap();
        }
        let payload = left.split_out(&SplitSpec::KvSlots { lo: pivot, hi: 1023 }).unwrap();
        let mut right = KvPartition::new(CAP, KvParams { ranges: vec![], num_slots: 1024 }).unwrap();
        right.absorb(&payload).unwrap();
        prop_assert_eq!(left.len() + right.len(), pairs.len());
        for (k, v) in &pairs {
            let slot = kv_slot(k, 1024);
            let holder = if slot < pivot { &mut left } else { &mut right };
            let got = holder.execute(&DsOp::Get { key: k.clone().into() }).unwrap();
            prop_assert_eq!(got, DsResult::MaybeData(Some(Blob::new(v.clone()))));
            // The non-owning side reports stale metadata.
            let other = if slot < pivot { &mut right } else { &mut left };
            let stale = other.execute(&DsOp::Get { key: k.clone().into() });
            prop_assert!(stale.is_err());
        }
    }

    /// Merging the split halves back together restores the full mapping.
    #[test]
    fn kv_split_then_merge_is_identity(
        pairs in proptest::collection::hash_map(
            proptest::collection::vec(any::<u8>(), 1..16),
            proptest::collection::vec(any::<u8>(), 0..32),
            1..96),
        pivot in 1u32..1023)
    {
        let mut a = KvPartition::new(CAP, KvParams { ranges: vec![(0, 1023)], num_slots: 1024 }).unwrap();
        for (k, v) in &pairs {
            a.execute(&DsOp::Put { key: k.clone().into(), value: v.clone().into() }).unwrap();
        }
        let used_before = a.used_bytes();
        // Split out [pivot, 1023], then immediately merge it back.
        let payload = a.split_out(&SplitSpec::KvSlots { lo: pivot, hi: 1023 }).unwrap();
        a.absorb(&payload).unwrap();
        prop_assert_eq!(a.len(), pairs.len());
        prop_assert_eq!(a.used_bytes(), used_before);
        for (k, v) in &pairs {
            let got = a.execute(&DsOp::Get { key: k.clone().into() }).unwrap();
            prop_assert_eq!(got, DsResult::MaybeData(Some(Blob::new(v.clone()))));
        }
    }

    /// Export/absorb is lossless for all three structures.
    #[test]
    fn exports_are_lossless(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut f = FilePartition::new(CAP, 2);
        if !data.is_empty() {
            f.execute(&DsOp::FileWrite { offset: 0, data: data.clone().into() }).unwrap();
        }
        let mut f2 = FilePartition::new(CAP, 0);
        f2.absorb(&f.export().unwrap()).unwrap();
        prop_assert_eq!(f2.used_bytes(), data.len());

        let mut q = QueuePartition::new(CAP, 0);
        q.execute(&DsOp::Enqueue { item: data.clone().into() }).unwrap();
        let mut q2 = QueuePartition::new(CAP, 0);
        q2.absorb(&q.export().unwrap()).unwrap();
        prop_assert_eq!(q2.execute(&DsOp::Dequeue).unwrap(), DsResult::MaybeData(Some(Blob::new(data.clone()))));
    }
}
