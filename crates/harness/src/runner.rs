//! Drives seeded workloads against an in-process cluster under chaos.
//!
//! One run: boot a cluster, wrap a *client* fabric in a seeded
//! [`FaultInjector`], execute generated operations (single worker =
//! deterministic interleaving; several workers = threaded stress mode),
//! then disable injection, read back the final state over the now-clean
//! transport and check every invariant in [`crate::history`].
//!
//! The server-side fabric (replication, split orchestration) is left
//! un-injected so the fault schedule is a pure function of the client's
//! call sequence — which is what makes a single-worker run replayable
//! from its seed alone.

use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::Arc;
use std::time::Instant;

use jiffy::{JiffyClient, JiffyCluster};
use jiffy_client::{FileClient, JobClient, KvClient, QueueClient};
use jiffy_common::clock::SystemClock;
use jiffy_common::{JiffyConfig, QosConfig, Result, TenantId};
use jiffy_persistent::MemObjectStore;
use jiffy_rpc::{FaultInjector, FaultRule, FaultStats};

use crate::gen::{generate_ops, WorkloadMix};
use crate::history::{Event, History, Outcome, WorkOp};

/// A membership change injected mid-workload (cluster elasticity under
/// chaos). The target server is always the *oldest* live one — a
/// deterministic choice, so single-worker runs stay replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElasticAction {
    /// Crash a server abruptly: endpoint gone, controller re-routes.
    KillServer,
    /// Boot and register one more server.
    JoinServer,
    /// Gracefully drain and deregister a server (live migration).
    DrainServer,
    /// Crash the controller and immediately restart it from its
    /// metadata journal. Client control-plane retries carry requests
    /// through the restart window; acked writes must survive.
    CrashController,
    /// Crash controller shard `i` of a sharded control plane
    /// ([`HarnessConfig::shards`] > 1) and immediately recover it from
    /// its own `jiffy-meta/shard-{i}/` journal stream. The other shards
    /// keep serving throughout; requests routed to the dark shard ride
    /// client retries into the recovered instance. On an unsharded run
    /// this degrades to [`ElasticAction::CrashController`].
    CrashControllerShard(usize),
}

/// Parameters of one chaos run.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Seed for both the operation generator and the fault injector.
    pub seed: u64,
    /// Concurrent workers. `1` = deterministic interleaving; more =
    /// threaded stress mode (still checkable, not bit-replayable).
    pub workers: usize,
    /// Operations issued per worker.
    pub ops_per_worker: usize,
    /// Size of each worker's private KV key space.
    pub keys_per_worker: usize,
    /// Fault rule applied to every address during the workload phase.
    pub rule: FaultRule,
    /// Which data structures to exercise.
    pub mix: WorkloadMix,
    /// Memory servers in the cluster.
    pub num_servers: usize,
    /// Blocks per memory server.
    pub blocks_per_server: u32,
    /// Replication chain length (1 = unreplicated). `KillServer`
    /// schedules only make sense with `chain_length >= 2`: acked writes
    /// survive a crash through the promoted replica; without
    /// replication a kill loses data by design and the history checker
    /// would (correctly) flag it.
    pub chain_length: usize,
    /// Membership changes, each fired once the total completed-op count
    /// reaches its threshold: `(after_ops, action)`.
    pub elastic: Vec<(usize, ElasticAction)>,
    /// Maximum multi-op batch size. `1` (the default) issues every
    /// operation as its own RPC; larger values group *consecutive runs*
    /// of batchable same-kind ops (`KvPut` → `multi_put`, `KvGet` →
    /// `multi_get`, `Enqueue` → `enqueue_batch`) into one batched call,
    /// exercising the PR 4 fast path under chaos. Per-op events are
    /// still recorded (a whole-batch transport failure marks every op
    /// in the batch `Maybe`, since a prefix may have applied).
    pub batch: usize,
    /// Distinct tenants sharing the cluster. `1` (the default) runs
    /// everything as the anonymous tenant — the pre-QoS behavior. With
    /// `N > 1`, worker `w` issues its ops as tenant `w % N + 1` against
    /// that tenant's own job, and the runner adds per-tenant isolation
    /// checks (no cross-tenant visibility; quotas honored post-hoc).
    pub tenants: usize,
    /// Cluster QoS configuration; `None` leaves QoS disabled.
    pub qos: Option<QosConfig>,
    /// Per-tenant limit overrides installed before the workload starts
    /// (`tenant_index` counts from 0, matching `w % tenants`).
    pub tenant_limits: Vec<TenantQos>,
    /// Controller shards. `1` (the default) boots the classic unsharded
    /// control plane; larger values partition the namespace across that
    /// many in-process shards behind one routing endpoint, enabling
    /// [`ElasticAction::CrashControllerShard`] schedules.
    pub shards: usize,
}

/// A per-tenant QoS override installed at run start.
#[derive(Debug, Clone, Copy)]
pub struct TenantQos {
    /// Which tenant (0-based index into `HarnessConfig::tenants`).
    pub tenant_index: usize,
    /// Weighted-fair share (≥ 1).
    pub share: u32,
    /// Hard memory quota in bytes (0 = unlimited).
    pub quota_bytes: u64,
    /// Op-rate limit per second (0 = unlimited).
    pub ops_per_sec: u64,
    /// Byte-rate limit per second (0 = unlimited).
    pub bytes_per_sec: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            seed: 0x1a55,
            workers: 1,
            ops_per_worker: 200,
            keys_per_worker: 4,
            rule: FaultRule::none()
                .with_drop(0.03)
                .with_delay(
                    0.05,
                    std::time::Duration::ZERO,
                    std::time::Duration::from_micros(500),
                )
                .with_duplicate(0.03)
                .with_error(0.03),
            mix: WorkloadMix::all(),
            num_servers: 2,
            blocks_per_server: 32,
            chain_length: 1,
            elastic: Vec::new(),
            batch: 1,
            tenants: 1,
            qos: None,
            tenant_limits: Vec::new(),
            shards: 1,
        }
    }
}

/// Everything a run produced: the history, the injector's counters and
/// any invariant violations.
#[derive(Debug)]
pub struct RunReport {
    /// The seed that reproduces this run (single-worker mode).
    pub seed: u64,
    /// The recorded history including final-state reads.
    pub history: History,
    /// Fault counters from the injector.
    pub fault_stats: FaultStats,
    /// Invariant violations, empty when the run was correct.
    pub violations: Vec<String>,
    /// Retried requests answered from a block replay window instead of
    /// re-executed, summed across all servers still alive at the end of
    /// the run (killed servers' counters are lost with them).
    pub window_replays: u64,
}

impl RunReport {
    /// Panics with the seed and every violation if any invariant failed.
    pub fn assert_ok(&self) {
        assert!(
            self.violations.is_empty(),
            "chaos invariants violated (reproduce with seed {:#x}):\n{}",
            self.seed,
            self.violations.join("\n")
        );
    }
}

struct Handles {
    kv: Option<Arc<KvClient>>,
    file: Option<Arc<FileClient>>,
    queues: Vec<Arc<QueueClient>>,
}

/// Executes one chaos run.
///
/// # Errors
///
/// Cluster bootstrap or setup failures (the workload phase itself never
/// errors: every op outcome is recorded in the history instead).
pub fn run(cfg: &HarnessConfig) -> Result<RunReport> {
    // Long leases + no expiry worker + splits disabled by thresholds:
    // background reclamation would make the injector's draw sequence
    // depend on wall-clock timing and break seed replay.
    let mut cluster_cfg = JiffyConfig::for_testing()
        .with_lease_duration(std::time::Duration::from_secs(600))
        .with_chain_length(cfg.chain_length)
        .with_thresholds(0.0, 1.0);
    if let Some(qos) = &cfg.qos {
        cluster_cfg.qos = qos.clone();
    }
    let cluster = Arc::new(JiffyCluster::build_with_shards(
        cluster_cfg,
        cfg.num_servers,
        cfg.blocks_per_server,
        SystemClock::shared(),
        Arc::new(MemObjectStore::new()),
        false,
        false,
        cfg.shards.max(1),
    )?);
    let injector = Arc::new(FaultInjector::new(cfg.seed));
    injector.set_default_rule(cfg.rule.clone());
    // Setup runs clean; only the workload phase sees faults.
    injector.set_enabled(false);
    let chaos_fabric = cluster
        .fabric()
        .clone()
        .with_fault_injection(injector.clone());

    // One job (and one set of data structures) per tenant; a lone
    // tenant keeps the historical anonymous single-job shape.
    let tenants = cfg.tenants.max(1);
    for tq in &cfg.tenant_limits {
        cluster.set_tenant_share(
            tenant_id(tq.tenant_index, tenants),
            tq.share,
            tq.quota_bytes,
            tq.ops_per_sec,
            tq.bytes_per_sec,
        )?;
    }
    let mut jobs: Vec<JobClient> = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let client = JiffyClient::connect(chaos_fabric.clone(), cluster.controller_addr())?
            .with_tenant(tenant_id(t, tenants));
        jobs.push(client.register_job(&format!("chaos-t{t}"))?);
    }

    let mut tenant_handles: Vec<Handles> = Vec::with_capacity(tenants);
    for job in &jobs {
        tenant_handles.push(Handles {
            kv: if cfg.mix.kv {
                Some(Arc::new(job.open_kv("kv", &[], 2)?))
            } else {
                None
            },
            file: if cfg.mix.file {
                Some(Arc::new(job.open_file("shuffle", &[])?))
            } else {
                None
            },
            queues: Vec::new(),
        });
    }
    // Each worker keeps a private queue inside its tenant's job.
    if cfg.mix.queue {
        for w in 0..cfg.workers {
            let q = Arc::new(jobs[w % tenants].open_queue(&format!("q{w}"), &[])?);
            tenant_handles[w % tenants].queues.push(q.clone());
        }
    }
    let worker_handles: Vec<Handles> = (0..cfg.workers)
        .map(|w| {
            let t = &tenant_handles[w % tenants];
            Handles {
                kv: t.kv.clone(),
                file: t.file.clone(),
                queues: t.queues.get(w / tenants).cloned().into_iter().collect(),
            }
        })
        .collect();

    injector.set_enabled(true);
    let epoch = Instant::now();
    let mut events: Vec<Event> = Vec::new();
    let mut schedule: Vec<(usize, ElasticAction)> = cfg.elastic.clone();
    schedule.sort_by_key(|(at, _)| *at);
    if cfg.workers <= 1 {
        // Deterministic mode: membership changes fire inline at exact op
        // boundaries, so the whole run replays from the seed.
        let mut next = 0usize;
        events.extend(run_worker(0, cfg, &worker_handles[0], epoch, |done| {
            while next < schedule.len() && done as usize >= schedule[next].0 {
                apply_elastic(&cluster, schedule[next].1, cfg.blocks_per_server);
                next += 1;
            }
        }));
    } else {
        // Stress mode: a driver thread watches the shared op counter and
        // fires membership changes as thresholds pass.
        let ops_done = Arc::new(AtomicU64::new(0));
        let workload_over = Arc::new(AtomicBool::new(false));
        let driver = if schedule.is_empty() {
            None
        } else {
            let cluster = cluster.clone();
            let ops_done = ops_done.clone();
            let workload_over = workload_over.clone();
            let blocks = cfg.blocks_per_server;
            Some(std::thread::spawn(move || {
                let mut next = 0usize;
                while next < schedule.len() && !workload_over.load(Ordering::SeqCst) {
                    if ops_done.load(Ordering::SeqCst) as usize >= schedule[next].0 {
                        apply_elastic(&cluster, schedule[next].1, blocks);
                        next += 1;
                    } else {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            }))
        };
        let mut joins = Vec::new();
        for (w, wh) in worker_handles.iter().enumerate() {
            let cfg = cfg.clone();
            let handles = Handles {
                kv: wh.kv.clone(),
                file: wh.file.clone(),
                queues: wh.queues.clone(),
            };
            let ops_done = ops_done.clone();
            joins.push(std::thread::spawn(move || {
                run_worker(w, &cfg, &handles, epoch, |_| {
                    ops_done.fetch_add(1, Ordering::SeqCst);
                })
            }));
        }
        for j in joins {
            events.extend(j.join().expect("worker thread panicked"));
        }
        workload_over.store(true, Ordering::SeqCst);
        if let Some(d) = driver {
            let _ = d.join();
        }
    }
    injector.set_enabled(false);

    // Final-state reads over the clean transport, each worker through
    // its own tenant's handles.
    let mut history = History {
        events,
        ..History::default()
    };
    if cfg.mix.kv {
        for (w, wh) in worker_handles.iter().enumerate() {
            let kv = wh.kv.as_ref().expect("kv enabled but handle missing");
            for k in 0..cfg.keys_per_worker {
                let key = format!("w{w}-k{k}");
                let value = kv.get(key.as_bytes())?.map(lossy);
                history.final_kv.insert(key, value);
            }
        }
    }
    if cfg.mix.file {
        // Concatenating the per-tenant files preserves both exactly-once
        // and per-worker order: a worker only ever appends to one file.
        for th in &tenant_handles {
            let file = th.file.as_ref().expect("file enabled but handle missing");
            history.final_file.extend(file.read_all()?);
        }
    }
    for (w, wh) in worker_handles.iter().enumerate() {
        if let Some(queue) = wh.queues.first() {
            let mut drained = Vec::new();
            while let Some(item) = queue.dequeue()? {
                drained.push(lossy(item));
            }
            history.final_queues.insert(w, drained);
        }
    }

    let mut violations = history.check();
    violations.extend(check_tenant_isolation(&cluster, cfg, &tenant_handles)?);
    let window_replays = cluster
        .servers()
        .iter()
        .map(|s| s.stats().window_replays)
        .sum();
    Ok(RunReport {
        seed: cfg.seed,
        history,
        fault_stats: injector.stats(),
        violations,
        window_replays,
    })
}

/// The wire-level tenant id for tenant index `t`: a single-tenant run
/// stays anonymous (the pre-QoS shape), multi-tenant runs use ids 1..=N.
fn tenant_id(t: usize, tenants: usize) -> TenantId {
    if tenants <= 1 {
        TenantId::ANONYMOUS
    } else {
        TenantId(t as u64 % tenants as u64 + 1)
    }
}

/// Multi-tenant invariants, checked after the workload with injection
/// off: no tenant can see another tenant's keys through its own job's
/// namespace, and no tenant with a hard quota ended the run above it.
fn check_tenant_isolation(
    cluster: &JiffyCluster,
    cfg: &HarnessConfig,
    tenant_handles: &[Handles],
) -> Result<Vec<String>> {
    let tenants = cfg.tenants.max(1);
    let mut violations = Vec::new();
    if tenants <= 1 {
        return Ok(violations);
    }
    if cfg.mix.kv {
        for (t, th) in tenant_handles.iter().enumerate() {
            let kv = th.kv.as_ref().expect("kv enabled but handle missing");
            for w in 0..cfg.workers {
                if w % tenants == t {
                    continue; // own keys, visibility expected
                }
                for k in 0..cfg.keys_per_worker {
                    let key = format!("w{w}-k{k}");
                    if let Some(v) = kv.get(key.as_bytes())? {
                        violations.push(format!(
                            "tenant isolation: tenant {t} sees key {key} (worker {w}, \
                             tenant {}) with value {:?}",
                            w % tenants,
                            lossy(v)
                        ));
                    }
                }
            }
        }
    }
    let block_size = cluster.controller().config().block_size as u64;
    for entry in cluster.tenant_stats()? {
        if entry.quota_bytes > 0 && entry.allocated_bytes > entry.quota_bytes {
            violations.push(format!(
                "tenant quota: tenant {:?} holds {} bytes ({} blocks of {block_size}) \
                 over its {}-byte quota",
                entry.tenant, entry.allocated_bytes, entry.allocated_blocks, entry.quota_bytes
            ));
        }
    }
    Ok(violations)
}

/// Applies one membership change against the live cluster. Failures are
/// swallowed: under chaos a drain can legitimately fail (no capacity
/// left), and the history checker judges the run by its observable
/// outcomes, not by whether every membership change landed.
fn apply_elastic(cluster: &JiffyCluster, action: ElasticAction, blocks_per_server: u32) {
    match action {
        ElasticAction::JoinServer => {
            let _ = cluster.add_server(blocks_per_server);
        }
        ElasticAction::KillServer => {
            if let Some(id) = oldest_server(cluster) {
                let _ = cluster.kill_server(id);
            }
        }
        ElasticAction::DrainServer => {
            if let Some(id) = oldest_server(cluster) {
                let _ = cluster.drain_server(id);
            }
        }
        ElasticAction::CrashController => {
            cluster.crash_controller();
            // A failed recovery leaves the endpoint dark and every
            // subsequent control call failing — the history checker
            // reports that loudly, so swallowing the error here is safe.
            let _ = cluster.restart_controller();
        }
        ElasticAction::CrashControllerShard(i) => {
            let i = i % cluster.controller_shards().max(1);
            cluster.crash_controller_shard(i);
            // Same reasoning as CrashController: an unrecoverable shard
            // shows up as persistent routing failures in the history.
            let _ = cluster.restart_controller_shard(i);
        }
    }
}

/// The lowest live server ID — a deterministic victim choice.
fn oldest_server(cluster: &JiffyCluster) -> Option<jiffy_common::ServerId> {
    cluster
        .servers()
        .iter()
        .filter_map(|s| s.identity().map(|(id, _)| id))
        .min_by_key(|id| id.raw())
}

fn run_worker(
    worker: usize,
    cfg: &HarnessConfig,
    handles: &Handles,
    epoch: Instant,
    mut after_op: impl FnMut(u64),
) -> Vec<Event> {
    let mix = WorkloadMix {
        // A worker without a queue handle (stress-mode partitioning
        // failure) simply skips queue ops; generation stays aligned.
        queue: cfg.mix.queue && !handles.queues.is_empty(),
        ..cfg.mix
    };
    let ops = generate_ops(
        cfg.seed,
        worker,
        cfg.ops_per_worker,
        cfg.keys_per_worker,
        mix,
    );
    let queue = handles.queues.first();
    let batch = cfg.batch.max(1);
    let mut events = Vec::with_capacity(ops.len());
    let mut i = 0usize;
    while i < ops.len() {
        // Batched fast path: a run of >= 2 consecutive same-kind
        // batchable ops becomes one multi-op RPC.
        let run_len = if batch > 1 {
            batchable_run_len(&ops[i..], batch)
        } else {
            1
        };
        if run_len > 1 {
            let start_us = epoch.elapsed().as_micros() as u64;
            let outcomes = exec_batch(&ops[i..i + run_len], handles, queue);
            let end_us = epoch.elapsed().as_micros() as u64;
            for (j, outcome) in outcomes.into_iter().enumerate() {
                events.push(Event {
                    worker,
                    seq: (i + j) as u64,
                    op: ops[i + j].clone(),
                    outcome,
                    start_us,
                    end_us,
                });
                after_op((i + j + 1) as u64);
            }
            i += run_len;
            continue;
        }
        let op = ops[i].clone();
        let seq = i as u64;
        let start_us = epoch.elapsed().as_micros() as u64;
        let outcome = match &op {
            WorkOp::KvPut { key, value } => outcome_of(
                handles
                    .kv
                    .as_ref()
                    .expect("kv op without kv handle")
                    .put(key.as_bytes(), value.as_bytes()),
                |prev| prev.map(lossy),
            ),
            WorkOp::KvGet { key } => outcome_of(
                handles.kv.as_ref().expect("kv handle").get(key.as_bytes()),
                |v| v.map(lossy),
            ),
            WorkOp::KvDelete { key } => outcome_of(
                handles
                    .kv
                    .as_ref()
                    .expect("kv handle")
                    .delete(key.as_bytes()),
                |prev| prev.map(lossy),
            ),
            WorkOp::FileAppend { record } => outcome_of(
                handles
                    .file
                    .as_ref()
                    .expect("file handle")
                    .append(record.as_bytes()),
                |()| None,
            ),
            WorkOp::Enqueue { item } => outcome_of(
                queue.expect("queue handle").enqueue(item.as_bytes()),
                |()| None,
            ),
            WorkOp::Dequeue => outcome_of(queue.expect("queue handle").dequeue(), |item| {
                item.map(lossy)
            }),
        };
        events.push(Event {
            worker,
            seq,
            op,
            outcome,
            start_us,
            end_us: epoch.elapsed().as_micros() as u64,
        });
        after_op(seq + 1);
        i += 1;
    }
    events
}

/// Which batched client call (if any) a generated op can ride on.
#[derive(PartialEq, Eq, Clone, Copy)]
enum BatchKind {
    Put,
    Get,
    Enqueue,
}

fn batch_kind(op: &WorkOp) -> Option<BatchKind> {
    match op {
        WorkOp::KvPut { .. } => Some(BatchKind::Put),
        WorkOp::KvGet { .. } => Some(BatchKind::Get),
        WorkOp::Enqueue { .. } => Some(BatchKind::Enqueue),
        _ => None,
    }
}

/// Length of the leading run of same-kind batchable ops, capped at
/// `max`. Returns 1 for a non-batchable head.
fn batchable_run_len(ops: &[WorkOp], max: usize) -> usize {
    let Some(kind) = ops.first().and_then(batch_kind) else {
        return 1;
    };
    ops.iter()
        .take(max)
        .take_while(|op| batch_kind(op) == Some(kind))
        .count()
}

/// Executes a run of same-kind ops as one batched client call,
/// returning one outcome per op. A whole-batch error maps every op to
/// `Maybe`: batched calls are split per block and retried internally,
/// so on failure an arbitrary prefix may already have been applied.
fn exec_batch(ops: &[WorkOp], handles: &Handles, queue: Option<&Arc<QueueClient>>) -> Vec<Outcome> {
    let kind = batch_kind(&ops[0]).expect("exec_batch called on non-batchable run");
    match kind {
        BatchKind::Put => {
            let pairs: Vec<(&[u8], &[u8])> = ops
                .iter()
                .map(|op| match op {
                    WorkOp::KvPut { key, value } => (key.as_bytes(), value.as_bytes()),
                    _ => unreachable!("mixed-kind batch run"),
                })
                .collect();
            let kv = handles.kv.as_ref().expect("kv op without kv handle");
            match kv.multi_put(&pairs) {
                Ok(prevs) => prevs
                    .into_iter()
                    .map(|prev| Outcome::Acked(prev.map(lossy)))
                    .collect(),
                Err(e) => vec![Outcome::Maybe(e.to_string()); ops.len()],
            }
        }
        BatchKind::Get => {
            let keys: Vec<&[u8]> = ops
                .iter()
                .map(|op| match op {
                    WorkOp::KvGet { key } => key.as_bytes(),
                    _ => unreachable!("mixed-kind batch run"),
                })
                .collect();
            let kv = handles.kv.as_ref().expect("kv handle");
            match kv.multi_get(&keys) {
                Ok(values) => values
                    .into_iter()
                    .map(|v| Outcome::Acked(v.map(lossy)))
                    .collect(),
                Err(e) => vec![Outcome::Maybe(e.to_string()); ops.len()],
            }
        }
        BatchKind::Enqueue => {
            let items: Vec<&[u8]> = ops
                .iter()
                .map(|op| match op {
                    WorkOp::Enqueue { item } => item.as_bytes(),
                    _ => unreachable!("mixed-kind batch run"),
                })
                .collect();
            let q = queue.expect("queue handle");
            match q.enqueue_batch(&items) {
                Ok(()) => vec![Outcome::Acked(None); ops.len()],
                Err(e) => vec![Outcome::Maybe(e.to_string()); ops.len()],
            }
        }
    }
}

fn outcome_of<T>(res: Result<T>, observation: impl FnOnce(T) -> Option<String>) -> Outcome {
    match res {
        Ok(v) => Outcome::Acked(observation(v)),
        Err(e) if e.is_transport() => Outcome::Maybe(e.to_string()),
        Err(e) => Outcome::Rejected(e.to_string()),
    }
}

fn lossy(bytes: Vec<u8>) -> String {
    String::from_utf8_lossy(&bytes).into_owned()
}
