//! Chaos harness for Jiffy: property-based correctness under injected
//! transport faults.
//!
//! The harness closes the loop between the fault injector
//! ([`jiffy_rpc::fault`]) and the data structures: a seeded generator
//! ([`gen`]) produces concurrent put/get/delete, append and
//! enqueue/dequeue workloads; a runner ([`runner`]) executes them against
//! an in-process cluster whose client fabric drops, delays, duplicates
//! and fails calls; and invariant checkers ([`history`]) verify that
//!
//! - no acknowledged write is ever lost,
//! - queues stay FIFO and deliver each item at most once,
//! - retried file appends land exactly once, in order, and
//! - KV reads always observe the last acknowledged put.
//!
//! Every run is parameterized by one seed; a single-worker run is fully
//! deterministic, and failures report the seed so they replay exactly.

pub mod gen;
pub mod history;
pub mod runner;

pub use gen::WorkloadMix;
pub use history::{Event, History, Outcome, WorkOp};
pub use runner::{run, ElasticAction, HarnessConfig, RunReport, TenantQos};

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_rpc::FaultRule;
    use std::time::Duration;

    fn quick(seed: u64, mix: WorkloadMix) -> HarnessConfig {
        HarnessConfig {
            seed,
            ops_per_worker: 120,
            mix,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn deterministic_seed_reproduction() {
        let cfg = quick(0xDE7E_2211, WorkloadMix::all());
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        a.assert_ok();
        b.assert_ok();
        assert_eq!(
            a.history.semantic(),
            b.history.semantic(),
            "same seed must replay the same ops and outcomes"
        );
        assert_eq!(a.fault_stats, b.fault_stats);
        // A different seed takes a different path.
        let c = run(&quick(0xDE7E_2212, WorkloadMix::all())).unwrap();
        c.assert_ok();
        assert_ne!(a.history.semantic(), c.history.semantic());
    }

    #[test]
    fn chaos_run_actually_injects_faults() {
        let report = run(&quick(7, WorkloadMix::all())).unwrap();
        report.assert_ok();
        assert!(
            report.fault_stats.total_faults() > 0,
            "default rule injected nothing: {:?}",
            report.fault_stats
        );
    }

    #[test]
    fn kv_survives_heavy_chaos() {
        let mut cfg = quick(0x6B11, WorkloadMix::kv_only());
        cfg.rule = FaultRule::none()
            .with_drop(0.10)
            .with_duplicate(0.10)
            .with_error(0.05)
            .with_delay(0.10, Duration::ZERO, Duration::from_micros(300));
        run(&cfg).unwrap().assert_ok();
    }

    #[test]
    fn file_appends_exactly_once_under_chaos() {
        let mut cfg = quick(0xF11E, WorkloadMix::file_only());
        cfg.rule = FaultRule::none().with_drop(0.10).with_duplicate(0.10);
        let report = run(&cfg).unwrap();
        report.assert_ok();
        assert!(report.fault_stats.total_faults() > 0);
    }

    #[test]
    fn queue_fifo_under_chaos() {
        let mut cfg = quick(0x0E0E, WorkloadMix::queue_only());
        cfg.rule = FaultRule::none().with_drop(0.08).with_duplicate(0.08);
        run(&cfg).unwrap().assert_ok();
    }

    #[test]
    fn threaded_stress_mode_holds_invariants() {
        let mut cfg = quick(0x57E5, WorkloadMix::all());
        cfg.workers = 3;
        cfg.ops_per_worker = 60;
        run(&cfg).unwrap().assert_ok();
    }

    #[test]
    fn multi_tenant_run_stays_isolated_under_chaos() {
        let mut cfg = quick(0x7E4A, WorkloadMix::all());
        cfg.workers = 2;
        cfg.tenants = 2;
        cfg.ops_per_worker = 80;
        cfg.qos = Some(jiffy_common::QosConfig::enabled_with_rates(0, 0));
        let report = run(&cfg).unwrap();
        report.assert_ok();
    }

    #[test]
    fn throttled_tenant_still_completes_and_isolates() {
        let mut cfg = quick(0x7E4B, WorkloadMix::kv_only());
        cfg.workers = 2;
        cfg.tenants = 2;
        cfg.ops_per_worker = 60;
        cfg.qos = Some(jiffy_common::QosConfig::enabled_with_rates(0, 0));
        // Tenant 1 gets a tight op-rate limit: its ops throttle and
        // retry, but every invariant must still hold for both tenants.
        cfg.tenant_limits = vec![crate::runner::TenantQos {
            tenant_index: 1,
            share: 1,
            quota_bytes: 0,
            ops_per_sec: 200,
            bytes_per_sec: 0,
        }];
        run(&cfg).unwrap().assert_ok();
    }

    #[test]
    fn clean_run_has_no_faults_and_no_violations() {
        let mut cfg = quick(1, WorkloadMix::all());
        cfg.rule = FaultRule::none();
        let report = run(&cfg).unwrap();
        report.assert_ok();
        assert_eq!(report.fault_stats.total_faults(), 0);
    }
}
