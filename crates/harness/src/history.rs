//! Operation history and invariant checking.
//!
//! Every workload operation is recorded as an [`Event`]: what was asked,
//! what came back, and when. The checkers in this module replay a
//! history against a model of each data structure and report violations:
//!
//! - **KV** — a get (and the previous-value observation of every put and
//!   delete) must return a value consistent with the last *acknowledged*
//!   write, allowing any suffix of *maybe-applied* (timed-out) writes.
//!   No acked write may be lost.
//! - **File** — every acknowledged append appears in the file exactly
//!   once (retries must not double-append), per-writer records appear in
//!   issue order, and nothing appears that was never issued.
//! - **Queue** — dequeued sequence numbers per queue are strictly
//!   increasing (FIFO), every acknowledged enqueue is dequeued exactly
//!   once (up to items consumed by timed-out dequeues), and no item is
//!   observed twice.
//!
//! Key spaces and queues are partitioned per worker, so the per-object
//! op order is total even in the threaded stress mode and the checks
//! stay exact.

use std::collections::HashMap;

/// One generated operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkOp {
    /// KV put of `value` under `key`.
    KvPut {
        /// Target key.
        key: String,
        /// Stored value.
        value: String,
    },
    /// KV lookup.
    KvGet {
        /// Target key.
        key: String,
    },
    /// KV delete.
    KvDelete {
        /// Target key.
        key: String,
    },
    /// Append one tagged record to the shared file.
    FileAppend {
        /// Encoded record (`w<worker>:<seq>;`-framed).
        record: String,
    },
    /// Enqueue one tagged item to the worker's queue.
    Enqueue {
        /// Encoded item (`<worker>:<seq>`).
        item: String,
    },
    /// Dequeue from the worker's queue.
    Dequeue,
}

/// How one operation concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The server acknowledged the op. The payload is the observation it
    /// returned: a get's value, a put/delete's previous value, a
    /// dequeue's item (`None` = absent/empty).
    Acked(Option<String>),
    /// Transport fault after all retries: the op *may or may not* have
    /// executed. Carries the final error text.
    Maybe(String),
    /// Definitive server-side rejection: the op did not execute.
    Rejected(String),
}

/// One operation instance in the history.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Issuing worker.
    pub worker: usize,
    /// Per-worker issue index.
    pub seq: u64,
    /// The operation.
    pub op: WorkOp,
    /// How it concluded.
    pub outcome: Outcome,
    /// Microseconds since run start at invocation.
    pub start_us: u64,
    /// Microseconds since run start at completion.
    pub end_us: u64,
}

/// A completed run's recorded operations plus the final state read back
/// after fault injection was disabled.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All operations, per-worker issue order preserved within a worker.
    pub events: Vec<Event>,
    /// Final KV value per key (read with injection off).
    pub final_kv: HashMap<String, Option<String>>,
    /// Final file contents (read with injection off).
    pub final_file: Vec<u8>,
    /// Items drained from each worker's queue after the run, in order.
    pub final_queues: HashMap<usize, Vec<String>>,
}

impl History {
    /// The timing-free projection used to compare runs for determinism.
    pub fn semantic(&self) -> Vec<(usize, u64, WorkOp, Outcome)> {
        self.events
            .iter()
            .map(|e| (e.worker, e.seq, e.op.clone(), e.outcome.clone()))
            .collect()
    }

    /// Runs every invariant check, returning all violations found.
    pub fn check(&self) -> Vec<String> {
        let mut violations = Vec::new();
        violations.extend(self.check_kv());
        violations.extend(self.check_file());
        violations.extend(self.check_queues());
        violations
    }

    /// KV: per key, the set of states the object can legally be in is
    /// `{last acked write}` extended by any maybe-applied later writes;
    /// every acked observation must fall inside it.
    fn check_kv(&self) -> Vec<String> {
        let mut violations = Vec::new();
        // Per-key ordered op streams (keys are worker-disjoint, so the
        // per-worker order is the per-key order).
        let mut per_key: HashMap<&str, Vec<&Event>> = HashMap::new();
        for e in &self.events {
            match &e.op {
                WorkOp::KvPut { key, .. } | WorkOp::KvGet { key } | WorkOp::KvDelete { key } => {
                    per_key.entry(key).or_default().push(e);
                }
                _ => {}
            }
        }
        for (key, ops) in &per_key {
            // The set of values the key may currently hold.
            let mut possible: Vec<Option<String>> = vec![None];
            for e in ops {
                let observed = match &e.outcome {
                    Outcome::Acked(v) => Some(v.clone()),
                    _ => None,
                };
                // Reads (gets and the previous-value half of writes)
                // must observe one of the possible states, and collapse
                // the uncertainty when they do.
                if let Some(seen) = &observed {
                    if !possible.contains(seen) {
                        violations.push(format!(
                            "kv key {key}: worker {} op {} ({:?}) observed {:?}, \
                             but possible states were {:?} — an acked write was lost \
                             or a stale value resurfaced",
                            e.worker, e.seq, e.op, seen, possible
                        ));
                        // Resynchronize so one fault yields one report.
                        possible = vec![seen.clone()];
                    } else {
                        possible = vec![seen.clone()];
                    }
                }
                // Apply the write's effect.
                let new_state = match &e.op {
                    WorkOp::KvPut { value, .. } => Some(Some(value.clone())),
                    WorkOp::KvDelete { .. } => Some(None),
                    _ => None,
                };
                if let Some(state) = new_state {
                    match e.outcome {
                        Outcome::Acked(_) => possible = vec![state],
                        Outcome::Maybe(_) => {
                            if !possible.contains(&state) {
                                possible.push(state);
                            }
                        }
                        Outcome::Rejected(_) => {}
                    }
                }
            }
            if let Some(fin) = self.final_kv.get(*key) {
                if !possible.contains(fin) {
                    violations.push(format!(
                        "kv key {key}: final value {fin:?} not among possible states {possible:?}"
                    ));
                }
            }
        }
        violations
    }

    /// File: exactly-once, in-order, no phantom records.
    fn check_file(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut issued: HashMap<(usize, u64), &Outcome> = HashMap::new();
        for e in &self.events {
            if let WorkOp::FileAppend { record } = &e.op {
                match parse_tag(record.trim_end_matches(';')) {
                    Some(tag) => {
                        issued.insert(tag, &e.outcome);
                    }
                    None => violations.push(format!("file: unparseable issued record {record:?}")),
                }
            }
        }
        if issued.is_empty() && self.final_file.is_empty() {
            return violations;
        }
        let contents = String::from_utf8_lossy(&self.final_file);
        let mut seen: HashMap<(usize, u64), u32> = HashMap::new();
        let mut last_seq_per_worker: HashMap<usize, u64> = HashMap::new();
        for rec in contents.split(';').filter(|r| !r.is_empty()) {
            let Some(tag) = parse_tag(rec) else {
                violations.push(format!("file: unparseable record {rec:?} in file"));
                continue;
            };
            *seen.entry(tag).or_insert(0) += 1;
            if !issued.contains_key(&tag) {
                violations.push(format!("file: record {tag:?} appears but was never issued"));
            }
            if let Some(prev) = last_seq_per_worker.get(&tag.0) {
                if tag.1 <= *prev {
                    violations.push(format!(
                        "file: worker {} records out of order (seq {} after {})",
                        tag.0, tag.1, prev
                    ));
                }
            }
            last_seq_per_worker.insert(tag.0, tag.1);
        }
        for (tag, count) in &seen {
            if *count > 1 {
                violations.push(format!(
                    "file: record {tag:?} appears {count} times — a retried append \
                     was applied more than once"
                ));
            }
        }
        for (tag, outcome) in &issued {
            if matches!(outcome, Outcome::Acked(_)) && !seen.contains_key(tag) {
                violations.push(format!(
                    "file: acked append {tag:?} is missing from the file"
                ));
            }
        }
        violations
    }

    /// Queue: FIFO per queue, exactly-once up to timed-out dequeues.
    fn check_queues(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let mut workers: Vec<usize> = Vec::new();
        for e in &self.events {
            if matches!(e.op, WorkOp::Enqueue { .. } | WorkOp::Dequeue)
                && !workers.contains(&e.worker)
            {
                workers.push(e.worker);
            }
        }
        for w in workers {
            let enqueues: Vec<&Event> = self
                .events
                .iter()
                .filter(|e| e.worker == w && matches!(e.op, WorkOp::Enqueue { .. }))
                .collect();
            // Items observed leaving the queue, in removal order: acked
            // dequeues during the run, then the final drain.
            let mut observed: Vec<String> = self
                .events
                .iter()
                .filter(|e| e.worker == w && matches!(e.op, WorkOp::Dequeue))
                .filter_map(|e| match &e.outcome {
                    Outcome::Acked(Some(item)) => Some(item.clone()),
                    _ => None,
                })
                .collect();
            let maybe_dequeues = self
                .events
                .iter()
                .filter(|e| e.worker == w && matches!(e.op, WorkOp::Dequeue))
                .filter(|e| matches!(e.outcome, Outcome::Maybe(_)))
                .count();
            if let Some(drained) = self.final_queues.get(&w) {
                observed.extend(drained.iter().cloned());
            }

            let mut issued: HashMap<(usize, u64), &Outcome> = HashMap::new();
            for e in &enqueues {
                if let WorkOp::Enqueue { item } = &e.op {
                    match parse_tag(item) {
                        Some(tag) => {
                            issued.insert(tag, &e.outcome);
                        }
                        None => {
                            violations.push(format!("queue {w}: unparseable issued item {item:?}"))
                        }
                    }
                }
            }
            let mut seen: HashMap<(usize, u64), u32> = HashMap::new();
            let mut last_seq: Option<u64> = None;
            for item in &observed {
                let Some(tag) = parse_tag(item) else {
                    violations.push(format!("queue {w}: unparseable dequeued item {item:?}"));
                    continue;
                };
                *seen.entry(tag).or_insert(0) += 1;
                if !issued.contains_key(&tag) {
                    violations.push(format!(
                        "queue {w}: dequeued item {tag:?} was never enqueued"
                    ));
                }
                if let Some(prev) = last_seq {
                    if tag.1 <= prev {
                        violations.push(format!(
                            "queue {w}: FIFO violated (seq {} dequeued after {})",
                            tag.1, prev
                        ));
                    }
                }
                last_seq = Some(tag.1);
            }
            for (tag, count) in &seen {
                if *count > 1 {
                    violations.push(format!(
                        "queue {w}: item {tag:?} dequeued {count} times — a retried op \
                         was applied more than once"
                    ));
                }
            }
            let missing_acked = issued
                .iter()
                .filter(|(tag, outcome)| {
                    matches!(outcome, Outcome::Acked(_)) && !seen.contains_key(*tag)
                })
                .count();
            if missing_acked > maybe_dequeues {
                violations.push(format!(
                    "queue {w}: {missing_acked} acked enqueues never surfaced but only \
                     {maybe_dequeues} dequeues timed out — acked items were lost"
                ));
            }
        }
        violations
    }
}

/// Parses a `<worker>:<seq>` tag prefix (payload after a second `:` is
/// ignored).
fn parse_tag(s: &str) -> Option<(usize, u64)> {
    let mut parts = s.splitn(3, ':');
    let worker = parts.next()?.strip_prefix('w')?.parse().ok()?;
    let seq = parts.next()?.parse().ok()?;
    Some((worker, seq))
}

/// Encodes the `(worker, seq)` tag all harness payloads carry.
pub fn tag(worker: usize, seq: u64) -> String {
    format!("w{worker}:{seq}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acked_put(worker: usize, seq: u64, key: &str, value: &str, prev: Option<&str>) -> Event {
        Event {
            worker,
            seq,
            op: WorkOp::KvPut {
                key: key.into(),
                value: value.into(),
            },
            outcome: Outcome::Acked(prev.map(String::from)),
            start_us: seq,
            end_us: seq + 1,
        }
    }

    #[test]
    fn kv_lost_acked_write_is_detected() {
        let mut h = History {
            events: vec![acked_put(0, 0, "k", "v1", None)],
            ..History::default()
        };
        h.final_kv.insert("k".into(), None); // v1 vanished
        let v = h.check();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("final value"));
    }

    #[test]
    fn kv_maybe_write_keeps_both_states_legal() {
        let mut h = History {
            events: vec![
                acked_put(0, 0, "k", "v1", None),
                Event {
                    worker: 0,
                    seq: 1,
                    op: WorkOp::KvPut {
                        key: "k".into(),
                        value: "v2".into(),
                    },
                    outcome: Outcome::Maybe("timeout".into()),
                    start_us: 2,
                    end_us: 3,
                },
            ],
            ..History::default()
        };
        h.final_kv.insert("k".into(), Some("v1".into()));
        assert!(h.check().is_empty());
        h.final_kv.insert("k".into(), Some("v2".into()));
        assert!(h.check().is_empty());
        h.final_kv.insert("k".into(), Some("v3".into()));
        assert_eq!(h.check().len(), 1);
    }

    #[test]
    fn kv_stale_observation_is_detected() {
        let h = History {
            events: vec![
                acked_put(0, 0, "k", "v1", None),
                acked_put(0, 1, "k", "v2", Some("v1")),
                Event {
                    worker: 0,
                    seq: 2,
                    op: WorkOp::KvGet { key: "k".into() },
                    outcome: Outcome::Acked(Some("v1".into())), // stale!
                    start_us: 4,
                    end_us: 5,
                },
            ],
            ..History::default()
        };
        let v = h.check();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("observed"));
    }

    #[test]
    fn file_double_and_missing_appends_are_detected() {
        let ev = |seq, outcome| Event {
            worker: 0,
            seq,
            op: WorkOp::FileAppend {
                record: format!("{};", tag(0, seq)),
            },
            outcome,
            start_us: seq,
            end_us: seq + 1,
        };
        // Acked append 0 appears twice, acked append 1 missing.
        let h = History {
            events: vec![ev(0, Outcome::Acked(None)), ev(1, Outcome::Acked(None))],
            final_file: b"w0:0;w0:0;".to_vec(),
            ..History::default()
        };
        let v = h.check();
        assert!(v.iter().any(|m| m.contains("2 times")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("missing")), "{v:?}");
    }

    #[test]
    fn file_order_violation_is_detected() {
        let ev = |seq| Event {
            worker: 0,
            seq,
            op: WorkOp::FileAppend {
                record: format!("{};", tag(0, seq)),
            },
            outcome: Outcome::Acked(None),
            start_us: seq,
            end_us: seq + 1,
        };
        let h = History {
            events: vec![ev(0), ev(1)],
            final_file: b"w0:1;w0:0;".to_vec(),
            ..History::default()
        };
        assert!(h.check().iter().any(|m| m.contains("out of order")));
    }

    #[test]
    fn queue_duplicate_and_fifo_violations_are_detected() {
        let enq = |seq| Event {
            worker: 0,
            seq,
            op: WorkOp::Enqueue { item: tag(0, seq) },
            outcome: Outcome::Acked(None),
            start_us: seq,
            end_us: seq + 1,
        };
        let mut h = History {
            events: vec![enq(0), enq(1)],
            ..History::default()
        };
        // Dequeued out of order, and item 1 twice.
        h.final_queues
            .insert(0, vec![tag(0, 1), tag(0, 0), tag(0, 1)]);
        let v = h.check();
        assert!(v.iter().any(|m| m.contains("FIFO")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("2 times")), "{v:?}");
    }

    #[test]
    fn queue_lost_acked_item_is_detected() {
        let h = History {
            events: vec![Event {
                worker: 0,
                seq: 0,
                op: WorkOp::Enqueue { item: tag(0, 0) },
                outcome: Outcome::Acked(None),
                start_us: 0,
                end_us: 1,
            }],
            ..History::default()
        };
        // No dequeues at all, final drain empty: the acked item vanished.
        let v = h.check();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("lost"));
    }

    #[test]
    fn clean_history_passes() {
        let mut h = History {
            events: vec![
                acked_put(0, 0, "k", "v1", None),
                Event {
                    worker: 0,
                    seq: 1,
                    op: WorkOp::KvGet { key: "k".into() },
                    outcome: Outcome::Acked(Some("v1".into())),
                    start_us: 2,
                    end_us: 3,
                },
            ],
            final_file: b"w0:7;w1:3;w0:9;".to_vec(),
            ..History::default()
        };
        h.final_kv.insert("k".into(), Some("v1".into()));
        h.events.push(Event {
            worker: 0,
            seq: 2,
            op: WorkOp::FileAppend {
                record: "w0:7;".into(),
            },
            outcome: Outcome::Acked(None),
            start_us: 4,
            end_us: 5,
        });
        h.events.push(Event {
            worker: 1,
            seq: 3,
            op: WorkOp::FileAppend {
                record: "w1:3;".into(),
            },
            outcome: Outcome::Acked(None),
            start_us: 5,
            end_us: 6,
        });
        h.events.push(Event {
            worker: 0,
            seq: 9,
            op: WorkOp::FileAppend {
                record: "w0:9;".into(),
            },
            outcome: Outcome::Maybe("timeout".into()),
            start_us: 6,
            end_us: 7,
        });
        assert_eq!(h.check(), Vec::<String>::new());
    }
}
