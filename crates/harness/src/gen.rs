//! Seeded operation generation.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::history::{tag, WorkOp};

/// Which workloads a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// KV put/get/delete traffic.
    pub kv: bool,
    /// File append traffic (reads happen at verification time).
    pub file: bool,
    /// Queue enqueue/dequeue traffic.
    pub queue: bool,
}

impl WorkloadMix {
    /// All three data structures.
    pub fn all() -> Self {
        Self {
            kv: true,
            file: true,
            queue: true,
        }
    }

    /// KV only.
    pub fn kv_only() -> Self {
        Self {
            kv: true,
            file: false,
            queue: false,
        }
    }

    /// File only.
    pub fn file_only() -> Self {
        Self {
            kv: false,
            file: true,
            queue: false,
        }
    }

    /// Queue only.
    pub fn queue_only() -> Self {
        Self {
            kv: false,
            file: false,
            queue: true,
        }
    }

    fn enabled(&self) -> Vec<u8> {
        let mut kinds = Vec::new();
        if self.kv {
            kinds.push(0);
        }
        if self.file {
            kinds.push(1);
        }
        if self.queue {
            kinds.push(2);
        }
        kinds
    }
}

/// Generates `count` operations for `worker`, deterministically from
/// `seed`. Keys are drawn from the worker's private key space so per-key
/// op order is total; file records and queue items carry `(worker, seq)`
/// tags for the exactly-once checks.
pub fn generate_ops(
    seed: u64,
    worker: usize,
    count: usize,
    keys_per_worker: usize,
    mix: WorkloadMix,
) -> Vec<WorkOp> {
    // Decorrelate worker streams with a SplitMix64 step over the seed.
    let stream = seed.wrapping_add((worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        ^ 0x5851_F42D_4C95_7F2D;
    let mut rng = SmallRng::seed_from_u64(stream);
    let kinds = mix.enabled();
    assert!(!kinds.is_empty(), "workload mix enables nothing");
    let mut ops = Vec::with_capacity(count);
    for seq in 0..count as u64 {
        let kind = kinds[rng.random_range(0..kinds.len())];
        let op = match kind {
            0 => {
                let key = format!("w{worker}-k{}", rng.random_range(0..keys_per_worker));
                match rng.random_range(0..10u32) {
                    0..=3 => WorkOp::KvPut {
                        key,
                        value: format!("{}:{:x}", tag(worker, seq), rng.random::<u32>()),
                    },
                    4..=7 => WorkOp::KvGet { key },
                    _ => WorkOp::KvDelete { key },
                }
            }
            1 => WorkOp::FileAppend {
                record: format!("{}:{:x};", tag(worker, seq), rng.random::<u16>()),
            },
            _ => {
                if rng.random_bool(0.55) {
                    WorkOp::Enqueue {
                        item: format!("{}:{:x}", tag(worker, seq), rng.random::<u16>()),
                    }
                } else {
                    WorkOp::Dequeue
                }
            }
        };
        ops.push(op);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed_and_worker() {
        let a = generate_ops(1, 0, 50, 4, WorkloadMix::all());
        let b = generate_ops(1, 0, 50, 4, WorkloadMix::all());
        assert_eq!(a, b);
        assert_ne!(a, generate_ops(2, 0, 50, 4, WorkloadMix::all()));
        assert_ne!(a, generate_ops(1, 1, 50, 4, WorkloadMix::all()));
    }

    #[test]
    fn mix_restricts_op_kinds() {
        for op in generate_ops(3, 0, 100, 4, WorkloadMix::kv_only()) {
            assert!(matches!(
                op,
                WorkOp::KvPut { .. } | WorkOp::KvGet { .. } | WorkOp::KvDelete { .. }
            ));
        }
        for op in generate_ops(3, 0, 100, 4, WorkloadMix::queue_only()) {
            assert!(matches!(op, WorkOp::Enqueue { .. } | WorkOp::Dequeue));
        }
    }

    #[test]
    fn keys_stay_in_the_worker_partition() {
        for op in generate_ops(9, 3, 200, 4, WorkloadMix::kv_only()) {
            let key = match &op {
                WorkOp::KvPut { key, .. } | WorkOp::KvGet { key } | WorkOp::KvDelete { key } => key,
                _ => unreachable!(),
            };
            assert!(key.starts_with("w3-k"), "{key}");
        }
    }
}
