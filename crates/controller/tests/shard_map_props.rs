//! Property tests for control-plane sharding (DESIGN.md §15): the
//! static shard map must send every path to exactly one shard, routing
//! must be a pure function of the map (deterministic across process
//! restarts — a recovered control plane rebuilds the identical map from
//! its static shard count), and a node must co-locate with its
//! hierarchy root so one shard owns a whole lease tree.

// Test-only target: setup helpers outside `#[test]` fns may panic on
// rig construction failure (the workspace `expect_used` lint is aimed
// at production code; `allow-expect-in-tests` doesn't reach free fns).
#![allow(clippy::expect_used)]

use jiffy_common::clock::SystemClock;
use jiffy_common::{JiffyConfig, JobId};
use jiffy_controller::{NoopDataPlane, ShardedController};
use jiffy_persistent::MemObjectStore;
use jiffy_proto::{ControlRequest, ControlResponse, ShardMap};
use jiffy_sync::Arc;
use proptest::prelude::*;

fn router(n: u32) -> ShardedController {
    ShardedController::build(
        JiffyConfig::for_testing(),
        SystemClock::shared(),
        Arc::new(NoopDataPlane),
        Arc::new(MemObjectStore::new()),
        n,
    )
    .expect("router construction")
}

fn register(sc: &ShardedController, name: &str) -> JobId {
    match sc
        .dispatch(ControlRequest::RegisterJob { name: name.into() })
        .expect("register job")
    {
        ControlResponse::JobRegistered { job } => job,
        other => panic!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every `(job, path)` maps to exactly one in-range shard; the
    /// mapping depends only on the path's root component; and a map
    /// rebuilt from the same static shard count (what a restarted
    /// process does) routes identically.
    #[test]
    fn every_path_maps_to_exactly_one_stable_shard(
        job in any::<u64>(),
        root in "[a-z]{1,8}",
        rest in proptest::collection::vec("[a-z]{1,8}", 0..4),
        n in 1u32..=16,
    ) {
        let map = ShardMap { num_shards: n };
        let mut path = root.clone();
        for component in &rest {
            path.push('.');
            path.push_str(component);
        }
        let shard = map.shard_of_path(JobId(job), &path);
        prop_assert!(shard < n, "shard {shard} out of range for {n} shards");
        // Pure function: re-asking gives the same answer.
        prop_assert_eq!(shard, map.shard_of_path(JobId(job), &path));
        // Only the root component matters: the whole subtree is owned
        // by the root's shard.
        prop_assert_eq!(shard, map.shard_of_root(JobId(job), &root));
        // A restarted control plane reconstructs the map from the same
        // static count and must route every path identically.
        let rebuilt = ShardMap { num_shards: n };
        prop_assert_eq!(shard, rebuilt.shard_of_path(JobId(job), &path));
    }

    /// Against a live router: children created with a parent edge land
    /// on their parent's shard (one shard owns the whole lease tree),
    /// and crash-recovering every shard reproduces the exact routing —
    /// including the root table entries that bare-name requests need.
    #[test]
    fn children_colocate_and_routing_survives_restart(
        names in proptest::collection::vec("[a-z]{2,6}", 1..12),
        picks in proptest::collection::vec(any::<usize>(), 12..13),
        n in 2u32..=8,
    ) {
        let sc = router(n);
        let job = register(&sc, "props");
        let mut created: Vec<(String, Option<String>)> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            // Roughly half the nodes hang off an earlier node; the rest
            // are new roots. Duplicate names fail to create and are
            // skipped — the properties only quantify over what exists.
            let parent = created
                .get(picks[i] % (2 * created.len().max(1)))
                .map(|(p, _)| p.clone());
            let req = ControlRequest::CreatePrefix {
                job,
                name: name.clone(),
                parents: parent.clone().into_iter().collect(),
                ds: None,
                initial_blocks: 0,
            };
            if sc.dispatch(req).is_ok() {
                created.push((name.clone(), parent));
            }
        }
        for (name, parent) in &created {
            if let Some(p) = parent {
                prop_assert!(
                    sc.route_path(job, name) == sc.route_path(job, p),
                    "child {} not co-located with parent {}",
                    name,
                    p
                );
            }
        }
        let before: Vec<u32> = created
            .iter()
            .map(|(name, _)| sc.route_path(job, name))
            .collect();
        for i in 0..n as usize {
            sc.crash_shard(i);
            sc.restart_shard(i).expect("shard recovery");
        }
        let after: Vec<u32> = created
            .iter()
            .map(|(name, _)| sc.route_path(job, name))
            .collect();
        prop_assert_eq!(before, after);
        // The recovered shards actually serve their slices: every
        // created node still resolves through the router.
        for (name, _) in &created {
            let resp = sc.dispatch(ControlRequest::ResolvePrefix {
                job,
                name: name.clone(),
            });
            prop_assert!(
                matches!(resp, Ok(ControlResponse::Resolved(_))),
                "{name} unresolvable after restart: {resp:?}"
            );
        }
    }
}
