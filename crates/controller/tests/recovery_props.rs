//! Property tests for controller crash recovery (DESIGN.md §11): for an
//! arbitrary control-plane history, replaying the metadata journal must
//! reproduce the live controller's state exactly — including when a
//! snapshot interleaves the history, and when a crash left the snapshot
//! *and* the journal records it already covers (failed truncation), so
//! records are seen twice.

// Test-only target: setup helpers outside `#[test]` fns may panic on
// rig construction failure (the workspace `expect_used` lint is aimed
// at production code; `allow-expect-in-tests` doesn't reach free fns).
#![allow(clippy::expect_used)]

use jiffy_common::clock::{ManualClock, SharedClock};
use jiffy_common::{BlockId, JiffyConfig};
use jiffy_controller::{Controller, NoopDataPlane};
use jiffy_persistent::{MemObjectStore, ObjectStore};
use jiffy_proto::{ControlRequest, ControlResponse, DsType};
use jiffy_sync::Arc;
use proptest::prelude::*;

/// One random control-plane action, decoded from an `(opcode, arg)` pair.
fn request_for(job: jiffy_common::JobId, opcode: u8, arg: u8) -> ControlRequest {
    let name = format!("n{}", arg % 6);
    match opcode % 8 {
        0 => ControlRequest::CreatePrefix {
            job,
            name,
            parents: vec![],
            ds: Some(match arg % 3 {
                0 => DsType::KvStore,
                1 => DsType::File,
                _ => DsType::Queue,
            }),
            initial_blocks: 1 + u32::from(arg % 2),
        },
        1 => ControlRequest::RemovePrefix { job, name },
        2 => ControlRequest::RenewLease { job, name },
        3 => ControlRequest::FlushPrefix {
            job,
            name,
            external_path: format!("ext/{}", arg % 6),
        },
        4 => ControlRequest::LoadPrefix {
            job,
            name,
            external_path: format!("ext/{}", arg % 6),
        },
        5 => ControlRequest::JoinServer {
            addr: format!("inproc:extra-{arg}"),
            capacity_blocks: 2 + u32::from(arg % 3),
        },
        6 => ControlRequest::ReportOverload {
            block: BlockId(u64::from(arg % 16)),
            used: u64::MAX / 2,
        },
        _ => ControlRequest::ReportUnderload {
            block: BlockId(u64::from(arg % 16)),
            used: 0,
        },
    }
}

struct Rig {
    ctrl: Arc<Controller>,
    clock: Arc<ManualClock>,
    store: Arc<MemObjectStore>,
    cfg: JiffyConfig,
    job: jiffy_common::JobId,
}

fn rig(cfg: JiffyConfig) -> Rig {
    let (clock, shared) = ManualClock::shared();
    let store = Arc::new(MemObjectStore::new());
    let ctrl = Controller::new(cfg.clone(), shared, Arc::new(NoopDataPlane), store.clone())
        .expect("fresh controller");
    ctrl.dispatch(ControlRequest::JoinServer {
        addr: "inproc:seed".into(),
        capacity_blocks: 8,
    })
    .expect("seed server");
    let job = match ctrl
        .dispatch(ControlRequest::RegisterJob {
            name: "prop".into(),
        })
        .expect("register")
    {
        ControlResponse::JobRegistered { job } => job,
        other => panic!("{other:?}"),
    };
    Rig {
        ctrl,
        clock,
        store,
        cfg,
        job,
    }
}

fn recovered(r: &Rig) -> Arc<Controller> {
    let shared: SharedClock = r.clock.clone();
    Controller::recover(
        r.cfg.clone(),
        shared,
        Arc::new(NoopDataPlane),
        r.store.clone(),
    )
    .expect("recovery")
}

fn assert_equivalent(live: &Controller, rec: &Controller) -> Result<(), TestCaseError> {
    let violations = rec.check_invariants();
    prop_assert!(violations.is_empty(), "{:?}", violations);
    prop_assert_eq!(
        live.state_mirror().normalized(),
        rec.state_mirror().normalized()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot-every-3 means random histories routinely straddle
    /// several snapshot+truncate cycles; recovery must land on the live
    /// state regardless of where the last snapshot fell.
    #[test]
    fn random_histories_recover_exactly(
        ops in proptest::collection::vec((0u8..8, any::<u8>()), 1..40))
    {
        let r = rig(JiffyConfig::for_testing().with_meta_snapshot_every(3));
        for (opcode, arg) in &ops {
            // Individual requests may legitimately fail (duplicate
            // create, flush of a bare prefix, unknown block); the
            // invariant under test is journal fidelity, not op success.
            let _ = r.ctrl.dispatch(request_for(r.job, *opcode, *arg));
        }
        assert_equivalent(&r.ctrl, &recovered(&r))?;
    }

    /// Replaying a journal twice yields identical state: resurrect the
    /// truncated records next to the snapshot that covers them, then
    /// recover twice more for good measure.
    #[test]
    fn double_replay_is_idempotent(
        ops in proptest::collection::vec((0u8..8, any::<u8>()), 1..40))
    {
        let r = rig(JiffyConfig::for_testing().with_meta_snapshot_every(0));
        for (opcode, arg) in &ops {
            let _ = r.ctrl.dispatch(request_for(r.job, *opcode, *arg));
        }
        let saved: Vec<(String, Vec<u8>)> = r
            .store
            .list("jiffy-meta/journal/")
            .into_iter()
            .map(|p| {
                let data = r.store.get(&p).expect("listed object exists");
                (p, data)
            })
            .collect();
        r.ctrl.snapshot_now().expect("snapshot");
        for (path, data) in &saved {
            r.store.put(path, data).expect("resurrect record");
        }
        let first = recovered(&r);
        assert_equivalent(&r.ctrl, &first)?;
        // Recovery itself is deterministic and side-effect-free on the
        // journal: doing it again produces the same controller.
        let second = recovered(&r);
        prop_assert_eq!(first.state_mirror(), second.state_mirror());
    }
}
