//! Data-structure partitioning metadata (the "metadata manager").
//!
//! For every prefix with a bound data structure, the controller tracks
//! how that structure is laid out across blocks, plans splits and merges
//! when blocks cross their thresholds, and produces the
//! [`PartitionView`]s clients cache.

use jiffy_common::{BlockId, JiffyError, Result};
use jiffy_proto::{BlockLocation, DsType, MergeSpec, PartitionView, SlotRange, SplitSpec};
use serde::{Deserialize, Serialize};

/// A planned split: what the source gives up, and how the new block must
/// be initialized.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    /// Instruction for the source block.
    pub spec: SplitSpec,
    /// Wire-encoded init parameters for the new block.
    pub target_params: Vec<u8>,
    /// Whether any payload actually moves (KV yes; file/queue no).
    pub moves_data: bool,
}

/// A planned merge: where the source's contents could go.
#[derive(Debug, Clone, PartialEq)]
pub struct MergePlan {
    /// Instruction for the source block.
    pub spec: MergeSpec,
    /// Candidate receiving blocks, in preference order (empty for queue
    /// unlinks, which move no data). The controller picks the first
    /// candidate with enough headroom.
    pub candidates: Vec<BlockLocation>,
}

/// Partition layout of one data structure across its blocks.
///
/// Serializable so the controller's snapshot mirror (crash recovery,
/// DESIGN.md §11) can checkpoint layouts wholesale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DsMeta {
    /// Ordered chunk list; chunk `i` covers `[i·chunk, (i+1)·chunk)`.
    File {
        /// Chunk capacity in bytes (= block size).
        chunk_size: u64,
        /// Chunks in offset order.
        blocks: Vec<BlockLocation>,
    },
    /// Live queue segments, oldest first.
    Queue {
        /// Segments in FIFO order.
        segments: Vec<BlockLocation>,
        /// Ordinal for the next segment (monotonic across unlinks).
        next_ordinal: u64,
    },
    /// Slot-range → block map.
    Kv {
        /// Keyspace size.
        num_slots: u32,
        /// Disjoint (lo, hi, block) entries covering `[0, num_slots)`.
        slots: Vec<(u32, u32, BlockLocation)>,
    },
}

/// Serializable skeleton of a [`DsMeta`] (without block locations), used
/// in flush records so a prefix can be reconstructed on load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DsSkeleton {
    /// File: number of chunks and chunk size.
    File {
        /// Chunk size in bytes.
        chunk_size: u64,
        /// Number of chunks.
        chunks: u64,
    },
    /// Queue: number of live segments and the next ordinal.
    Queue {
        /// Live segment count.
        segments: u64,
        /// Next segment ordinal.
        next_ordinal: u64,
    },
    /// KV: slot ranges in block order.
    Kv {
        /// Keyspace size.
        num_slots: u32,
        /// Per-block owned ranges (the i-th entry set belongs to the
        /// i-th flushed block).
        ranges: Vec<Vec<(u32, u32)>>,
    },
}

impl DsMeta {
    /// Creates empty metadata for a freshly bound structure.
    pub fn new(ds: DsType, block_size: usize, kv_slots: u32) -> Self {
        match ds {
            DsType::File => Self::File {
                chunk_size: block_size as u64,
                blocks: Vec::new(),
            },
            DsType::Queue => Self::Queue {
                segments: Vec::new(),
                next_ordinal: 0,
            },
            DsType::KvStore => Self::Kv {
                num_slots: kv_slots,
                slots: Vec::new(),
            },
        }
    }

    /// The structure type.
    pub fn ds_type(&self) -> DsType {
        match self {
            Self::File { .. } => DsType::File,
            Self::Queue { .. } => DsType::Queue,
            Self::Kv { .. } => DsType::KvStore,
        }
    }

    /// Logical block IDs in layout order.
    pub fn blocks(&self) -> Vec<BlockId> {
        self.locations().iter().map(BlockLocation::id).collect()
    }

    /// Block locations in layout order.
    pub fn locations(&self) -> Vec<BlockLocation> {
        match self {
            Self::File { blocks, .. } => blocks.clone(),
            Self::Queue { segments, .. } => segments.clone(),
            Self::Kv { slots, .. } => {
                let mut out: Vec<BlockLocation> = Vec::new();
                for (_, _, loc) in slots {
                    if !out.iter().any(|l| l.id() == loc.id()) {
                        out.push(loc.clone());
                    }
                }
                out
            }
        }
    }

    /// Swaps the location entry whose head block is `old_head` for
    /// `new_loc` everywhere it appears — the controller-side commit of a
    /// live block migration (or a chain repair after a replica loss).
    /// The structure's layout (chunk order, segment order, slot ranges)
    /// is untouched; only the physical home changes.
    ///
    /// # Errors
    ///
    /// [`jiffy_common::JiffyError::UnknownBlock`] if no entry has
    /// `old_head` as its head block.
    pub fn replace_location(&mut self, old_head: BlockId, new_loc: BlockLocation) -> Result<()> {
        let mut replaced = false;
        let swap = |loc: &mut BlockLocation, replaced: &mut bool| {
            if loc.id() == old_head {
                *loc = new_loc.clone();
                *replaced = true;
            }
        };
        match self {
            Self::File { blocks, .. } => {
                for loc in blocks.iter_mut() {
                    swap(loc, &mut replaced);
                }
            }
            Self::Queue { segments, .. } => {
                for loc in segments.iter_mut() {
                    swap(loc, &mut replaced);
                }
            }
            Self::Kv { slots, .. } => {
                for (_, _, loc) in slots.iter_mut() {
                    swap(loc, &mut replaced);
                }
            }
        }
        if replaced {
            Ok(())
        } else {
            Err(jiffy_common::JiffyError::UnknownBlock(old_head.raw()))
        }
    }

    /// The client-facing partition view.
    pub fn view(&self) -> PartitionView {
        match self {
            Self::File { chunk_size, blocks } => PartitionView::File {
                chunk_size: *chunk_size,
                blocks: blocks.clone(),
            },
            Self::Queue { segments, .. } => PartitionView::Queue {
                segments: segments.clone(),
                head_index: 0,
            },
            Self::Kv { num_slots, slots } => PartitionView::Kv {
                num_slots: *num_slots,
                slots: slots
                    .iter()
                    .map(|(lo, hi, loc)| SlotRange {
                        lo: *lo,
                        hi: *hi,
                        location: loc.clone(),
                    })
                    .collect(),
            },
        }
    }

    /// Init parameters for the *first* block(s) of the structure: the
    /// i-th of `total` initial blocks.
    ///
    /// # Errors
    ///
    /// Codec failures only.
    pub fn initial_params(&self, i: u32, total: u32) -> Result<Vec<u8>> {
        match self {
            Self::File { .. } => jiffy_proto::to_bytes(&InitFile {
                chunk_index: i as u64,
            }),
            Self::Queue { .. } => jiffy_proto::to_bytes(&InitQueue {
                segment_index: i as u64,
            }),
            Self::Kv { num_slots, .. } => {
                // Evenly partition the keyspace over the initial blocks.
                let per = num_slots / total;
                let lo = i * per;
                let hi = if i == total - 1 {
                    num_slots - 1
                } else {
                    (i + 1) * per - 1
                };
                jiffy_proto::to_bytes(&InitKv {
                    ranges: vec![(lo, hi)],
                    num_slots: *num_slots,
                })
            }
        }
    }

    /// Registers the initial blocks after allocation (in the same order
    /// `initial_params` was called).
    pub fn install_initial(&mut self, locs: Vec<BlockLocation>) {
        match self {
            Self::File { blocks, .. } => *blocks = locs,
            Self::Queue {
                segments,
                next_ordinal,
            } => {
                *next_ordinal = locs.len() as u64;
                *segments = locs;
            }
            Self::Kv { num_slots, slots } => {
                let total = locs.len() as u32;
                let per = *num_slots / total;
                *slots = locs
                    .into_iter()
                    .enumerate()
                    .map(|(i, loc)| {
                        let i = i as u32;
                        let lo = i * per;
                        let hi = if i == total - 1 {
                            *num_slots - 1
                        } else {
                            (i + 1) * per - 1
                        };
                        (lo, hi, loc)
                    })
                    .collect();
            }
        }
    }

    /// Plans the split of an overloaded block.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] if the block is not part of this
    /// structure; [`JiffyError::Internal`] if the block cannot split
    /// (e.g. a KV block owning a single slot).
    pub fn plan_split(&self, overloaded: BlockId) -> Result<SplitPlan> {
        match self {
            Self::File { blocks, .. } => {
                if !blocks.iter().any(|l| l.id() == overloaded) {
                    return Err(JiffyError::UnknownBlock(overloaded.raw()));
                }
                let chunk_index = blocks.len() as u64;
                Ok(SplitPlan {
                    spec: SplitSpec::FileAppend { chunk_index },
                    target_params: jiffy_proto::to_bytes(&InitFile { chunk_index })?,
                    moves_data: false,
                })
            }
            Self::Queue {
                segments,
                next_ordinal,
            } => {
                // Only the tail segment grows; splits elsewhere are stale
                // signals.
                let tail = segments
                    .last()
                    .ok_or(JiffyError::UnknownBlock(overloaded.raw()))?;
                if tail.id() != overloaded {
                    return Err(JiffyError::Internal(format!(
                        "block {overloaded} is not the queue tail; ignoring split"
                    )));
                }
                Ok(SplitPlan {
                    spec: SplitSpec::QueueLink,
                    target_params: jiffy_proto::to_bytes(&InitQueue {
                        segment_index: *next_ordinal,
                    })?,
                    moves_data: false,
                })
            }
            Self::Kv { num_slots, slots } => {
                let owned: Vec<(u32, u32)> = slots
                    .iter()
                    .filter(|(_, _, loc)| loc.id() == overloaded)
                    .map(|(lo, hi, _)| (*lo, *hi))
                    .collect();
                if owned.is_empty() {
                    return Err(JiffyError::UnknownBlock(overloaded.raw()));
                }
                let (lo, hi) = Self::choose_split_range(&owned).ok_or_else(|| {
                    JiffyError::Internal(format!(
                        "kv block {overloaded} owns a single slot; cannot split further"
                    ))
                })?;
                Ok(SplitPlan {
                    spec: SplitSpec::KvSlots { lo, hi },
                    target_params: jiffy_proto::to_bytes(&InitKv {
                        ranges: vec![],
                        num_slots: *num_slots,
                    })?,
                    moves_data: true,
                })
            }
        }
    }

    /// Picks the slot range a splitting KV block gives away: the upper
    /// half of its largest owned range, or its entire last range when it
    /// owns several. Returns `None` when every owned range is a single
    /// slot and there is only one of them.
    fn choose_split_range(owned: &[(u32, u32)]) -> Option<(u32, u32)> {
        if owned.len() > 1 {
            #[allow(clippy::expect_used)] // invariant documented in the message
            return Some(*owned.last().expect("invariant: len > 1 checked above"));
        }
        let (lo, hi) = owned[0];
        if lo == hi {
            return None;
        }
        let mid = lo + (hi - lo) / 2;
        Some((mid + 1, hi))
    }

    /// Commits a planned split after the data has moved.
    ///
    /// # Errors
    ///
    /// [`JiffyError::Internal`] on spec/meta mismatch.
    pub fn commit_split(
        &mut self,
        source: BlockId,
        spec: &SplitSpec,
        new_block: BlockLocation,
    ) -> Result<()> {
        match (self, spec) {
            (Self::File { blocks, .. }, SplitSpec::FileAppend { .. }) => {
                blocks.push(new_block);
                Ok(())
            }
            (
                Self::Queue {
                    segments,
                    next_ordinal,
                },
                SplitSpec::QueueLink,
            ) => {
                segments.push(new_block);
                *next_ordinal += 1;
                Ok(())
            }
            (Self::Kv { slots, .. }, SplitSpec::KvSlots { lo, hi }) => {
                // Remove [lo, hi] from the source's entries, then add the
                // new ownership.
                let mut updated = Vec::with_capacity(slots.len() + 1);
                for (a, b, loc) in slots.drain(..) {
                    if loc.id() != source || b < *lo || a > *hi {
                        updated.push((a, b, loc));
                        continue;
                    }
                    if a < *lo {
                        updated.push((a, *lo - 1, loc.clone()));
                    }
                    if b > *hi {
                        updated.push((*hi + 1, b, loc.clone()));
                    }
                }
                updated.push((*lo, *hi, new_block));
                updated.sort_by_key(|(a, _, _)| *a);
                *slots = updated;
                Ok(())
            }
            _ => Err(JiffyError::Internal(
                "split spec does not match data structure".into(),
            )),
        }
    }

    /// Plans the merge of an underloaded block. Returns `Ok(None)` when
    /// no merge applies (files never merge; single-block structures
    /// cannot shrink; non-head queue segments wait their turn).
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] if the block is not part of this
    /// structure.
    pub fn plan_merge(&self, underloaded: BlockId) -> Result<Option<MergePlan>> {
        match self {
            Self::File { blocks, .. } => {
                if !blocks.iter().any(|l| l.id() == underloaded) {
                    return Err(JiffyError::UnknownBlock(underloaded.raw()));
                }
                Ok(None)
            }
            Self::Queue { segments, .. } => {
                let idx = segments
                    .iter()
                    .position(|l| l.id() == underloaded)
                    .ok_or(JiffyError::UnknownBlock(underloaded.raw()))?;
                // Only a drained head unlinks, and only if a newer
                // segment exists to keep serving the queue.
                if idx == 0 && segments.len() > 1 {
                    Ok(Some(MergePlan {
                        spec: MergeSpec::QueueUnlink,
                        candidates: Vec::new(),
                    }))
                } else {
                    Ok(None)
                }
            }
            Self::Kv { slots, .. } => {
                if !slots.iter().any(|(_, _, loc)| loc.id() == underloaded) {
                    return Err(JiffyError::UnknownBlock(underloaded.raw()));
                }
                // Candidates: every sibling block, slot-adjacent ones
                // first (coalescing neighbours keeps the map small).
                let mut candidates: Vec<BlockLocation> = Vec::new();
                for (_, _, loc) in slots {
                    if loc.id() != underloaded && !candidates.iter().any(|c| c.id() == loc.id()) {
                        candidates.push(loc.clone());
                    }
                }
                if candidates.is_empty() {
                    Ok(None)
                } else {
                    Ok(Some(MergePlan {
                        spec: MergeSpec::KvAbsorb,
                        candidates,
                    }))
                }
            }
        }
    }

    /// Commits a planned merge after the data has moved: the source block
    /// leaves the layout; for KV, the target takes over its ranges.
    ///
    /// # Errors
    ///
    /// [`JiffyError::Internal`] on spec/meta mismatch.
    pub fn commit_merge(
        &mut self,
        source: BlockId,
        spec: &MergeSpec,
        target: Option<&BlockLocation>,
    ) -> Result<()> {
        match (self, spec) {
            (Self::Queue { segments, .. }, MergeSpec::QueueUnlink) => {
                segments.retain(|l| l.id() != source);
                Ok(())
            }
            (Self::Kv { slots, .. }, MergeSpec::KvAbsorb) => {
                let target = target
                    .ok_or_else(|| JiffyError::Internal("kv merge requires a target".into()))?;
                for entry in slots.iter_mut() {
                    if entry.2.id() == source {
                        entry.2 = target.clone();
                    }
                }
                // Coalesce adjacent ranges of the same block.
                slots.sort_by_key(|(a, _, _)| *a);
                let mut merged: Vec<(u32, u32, BlockLocation)> = Vec::with_capacity(slots.len());
                for (a, b, loc) in slots.drain(..) {
                    match merged.last_mut() {
                        Some((_, pb, ploc)) if *pb + 1 == a && ploc.id() == loc.id() => {
                            *pb = b;
                        }
                        _ => merged.push((a, b, loc)),
                    }
                }
                *slots = merged;
                Ok(())
            }
            _ => Err(JiffyError::Internal(
                "merge spec does not match data structure".into(),
            )),
        }
    }

    /// Serializable layout skeleton (for flush records).
    pub fn skeleton(&self) -> DsSkeleton {
        match self {
            Self::File { chunk_size, blocks } => DsSkeleton::File {
                chunk_size: *chunk_size,
                chunks: blocks.len() as u64,
            },
            Self::Queue {
                segments,
                next_ordinal,
            } => DsSkeleton::Queue {
                segments: segments.len() as u64,
                next_ordinal: *next_ordinal,
            },
            Self::Kv { num_slots, slots } => {
                let locs = self.locations();
                let ranges = locs
                    .iter()
                    .map(|loc| {
                        slots
                            .iter()
                            .filter(|(_, _, l)| l.id() == loc.id())
                            .map(|(a, b, _)| (*a, *b))
                            .collect()
                    })
                    .collect();
                DsSkeleton::Kv {
                    num_slots: *num_slots,
                    ranges,
                }
            }
        }
    }

    /// Rebuilds metadata from a skeleton and freshly allocated blocks
    /// (in the same order the skeleton's blocks were flushed).
    ///
    /// # Errors
    ///
    /// [`JiffyError::Internal`] if the block count does not match.
    pub fn from_skeleton(skel: &DsSkeleton, locs: Vec<BlockLocation>) -> Result<Self> {
        let expected = match skel {
            DsSkeleton::File { chunks, .. } => *chunks as usize,
            DsSkeleton::Queue { segments, .. } => *segments as usize,
            DsSkeleton::Kv { ranges, .. } => ranges.len(),
        };
        if locs.len() != expected {
            return Err(JiffyError::Internal(format!(
                "skeleton expects {expected} blocks, got {}",
                locs.len()
            )));
        }
        Ok(match skel {
            DsSkeleton::File { chunk_size, .. } => Self::File {
                chunk_size: *chunk_size,
                blocks: locs,
            },
            DsSkeleton::Queue { next_ordinal, .. } => Self::Queue {
                segments: locs,
                next_ordinal: *next_ordinal,
            },
            DsSkeleton::Kv { num_slots, ranges } => {
                let mut slots = Vec::new();
                for (loc, owned) in locs.into_iter().zip(ranges) {
                    for (a, b) in owned {
                        slots.push((*a, *b, loc.clone()));
                    }
                }
                slots.sort_by_key(|(a, _, _)| *a);
                Self::Kv {
                    num_slots: *num_slots,
                    slots,
                }
            }
        })
    }
}

/// Wire-shape mirrors of `jiffy-ds` init params (kept here to avoid a
/// dependency cycle; the byte layout is identical by construction — both
/// sides encode `(u64)` / `(Vec<(u32,u32)>, u32)` tuples with serde).
#[derive(Serialize, Deserialize)]
struct InitFile {
    chunk_index: u64,
}

#[derive(Serialize, Deserialize)]
struct InitQueue {
    segment_index: u64,
}

#[derive(Serialize, Deserialize)]
struct InitKv {
    ranges: Vec<(u32, u32)>,
    num_slots: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::ServerId;

    fn loc(id: u64) -> BlockLocation {
        BlockLocation::single(BlockId(id), ServerId(0), "inproc:0")
    }

    #[test]
    fn file_meta_grows_by_appending_chunks() {
        let mut m = DsMeta::new(DsType::File, 1024, 1024);
        m.install_initial(vec![loc(1)]);
        let plan = m.plan_split(BlockId(1)).unwrap();
        assert_eq!(plan.spec, SplitSpec::FileAppend { chunk_index: 1 });
        assert!(!plan.moves_data);
        m.commit_split(BlockId(1), &plan.spec, loc(2)).unwrap();
        assert_eq!(m.blocks(), vec![BlockId(1), BlockId(2)]);
        // Files never merge.
        assert_eq!(m.plan_merge(BlockId(1)).unwrap(), None);
    }

    #[test]
    fn queue_meta_links_and_unlinks_segments() {
        let mut m = DsMeta::new(DsType::Queue, 1024, 1024);
        m.install_initial(vec![loc(1)]);
        // Split only applies to the tail.
        let plan = m.plan_split(BlockId(1)).unwrap();
        assert_eq!(plan.spec, SplitSpec::QueueLink);
        m.commit_split(BlockId(1), &plan.spec, loc(2)).unwrap();
        assert_eq!(m.blocks(), vec![BlockId(1), BlockId(2)]);
        // Old tail can no longer split.
        assert!(m.plan_split(BlockId(1)).is_err());
        // Drained head unlinks.
        let merge = m.plan_merge(BlockId(1)).unwrap().unwrap();
        assert_eq!(merge.spec, MergeSpec::QueueUnlink);
        assert!(merge.candidates.is_empty());
        m.commit_merge(BlockId(1), &merge.spec, None).unwrap();
        assert_eq!(m.blocks(), vec![BlockId(2)]);
        // The sole remaining segment must not unlink.
        assert_eq!(m.plan_merge(BlockId(2)).unwrap(), None);
    }

    #[test]
    fn non_head_queue_segments_do_not_unlink() {
        let mut m = DsMeta::new(DsType::Queue, 1024, 1024);
        m.install_initial(vec![loc(1), loc(2), loc(3)]);
        assert_eq!(m.plan_merge(BlockId(2)).unwrap(), None);
        assert!(m.plan_merge(BlockId(1)).unwrap().is_some());
    }

    #[test]
    fn kv_meta_splits_upper_half_of_slots() {
        let mut m = DsMeta::new(DsType::KvStore, 1024, 1024);
        m.install_initial(vec![loc(1)]);
        let plan = m.plan_split(BlockId(1)).unwrap();
        assert_eq!(plan.spec, SplitSpec::KvSlots { lo: 512, hi: 1023 });
        assert!(plan.moves_data);
        m.commit_split(BlockId(1), &plan.spec, loc(2)).unwrap();
        match &m {
            DsMeta::Kv { slots, .. } => {
                assert_eq!(slots.len(), 2);
                assert_eq!(slots[0], (0, 511, loc(1)));
                assert_eq!(slots[1], (512, 1023, loc(2)));
            }
            _ => unreachable!(),
        }
        // Splitting again halves the remaining range.
        let plan2 = m.plan_split(BlockId(1)).unwrap();
        assert_eq!(plan2.spec, SplitSpec::KvSlots { lo: 256, hi: 511 });
    }

    #[test]
    fn kv_single_slot_block_cannot_split() {
        let mut m = DsMeta::new(DsType::KvStore, 1024, 2);
        m.install_initial(vec![loc(1), loc(2)]);
        // Each block owns exactly one slot.
        assert!(m.plan_split(BlockId(1)).is_err());
    }

    #[test]
    fn kv_merge_reassigns_and_coalesces_ranges() {
        let mut m = DsMeta::new(DsType::KvStore, 1024, 1024);
        m.install_initial(vec![loc(1)]);
        let plan = m.plan_split(BlockId(1)).unwrap();
        m.commit_split(BlockId(1), &plan.spec, loc(2)).unwrap();
        // Merge block 2 back into block 1.
        let merge = m.plan_merge(BlockId(2)).unwrap().unwrap();
        assert_eq!(merge.spec, MergeSpec::KvAbsorb);
        assert_eq!(merge.candidates[0].id(), BlockId(1));
        m.commit_merge(BlockId(2), &merge.spec, Some(&merge.candidates[0]))
            .unwrap();
        match &m {
            DsMeta::Kv { slots, .. } => {
                assert_eq!(slots.len(), 1, "adjacent ranges coalesce: {slots:?}");
                assert_eq!(slots[0], (0, 1023, loc(1)));
            }
            _ => unreachable!(),
        }
        assert_eq!(m.blocks(), vec![BlockId(1)]);
    }

    #[test]
    fn kv_last_block_cannot_merge() {
        let mut m = DsMeta::new(DsType::KvStore, 1024, 1024);
        m.install_initial(vec![loc(1)]);
        assert_eq!(m.plan_merge(BlockId(1)).unwrap(), None);
    }

    #[test]
    fn unknown_blocks_are_rejected() {
        let mut m = DsMeta::new(DsType::File, 1024, 1024);
        m.install_initial(vec![loc(1)]);
        assert!(m.plan_split(BlockId(99)).is_err());
        assert!(m.plan_merge(BlockId(99)).is_err());
    }

    #[test]
    fn initial_kv_params_cover_the_keyspace() {
        let m = DsMeta::new(DsType::KvStore, 1024, 1000);
        // 3 initial blocks over 1000 slots.
        let mut covered = Vec::new();
        for i in 0..3 {
            let bytes = m.initial_params(i, 3).unwrap();
            let p: (Vec<(u32, u32)>, u32) = jiffy_proto::from_bytes(&bytes).unwrap();
            covered.extend(p.0);
        }
        covered.sort_unstable();
        assert_eq!(covered, vec![(0, 332), (333, 665), (666, 999)]);
    }

    #[test]
    fn skeleton_round_trips_layouts() {
        let mut m = DsMeta::new(DsType::KvStore, 1024, 1024);
        m.install_initial(vec![loc(1)]);
        let plan = m.plan_split(BlockId(1)).unwrap();
        m.commit_split(BlockId(1), &plan.spec, loc(2)).unwrap();
        let skel = m.skeleton();
        let rebuilt = DsMeta::from_skeleton(&skel, vec![loc(10), loc(20)]).unwrap();
        match rebuilt {
            DsMeta::Kv { slots, .. } => {
                assert_eq!(slots.len(), 2);
                assert_eq!(slots[0].2.id(), BlockId(10));
                assert_eq!(slots[1].2.id(), BlockId(20));
            }
            _ => unreachable!(),
        }
        // Block-count mismatch is rejected.
        assert!(DsMeta::from_skeleton(&skel, vec![loc(10)]).is_err());
    }

    #[test]
    fn views_reflect_layout() {
        let mut m = DsMeta::new(DsType::Queue, 1024, 1024);
        m.install_initial(vec![loc(1), loc(2)]);
        match m.view() {
            PartitionView::Queue {
                segments,
                head_index,
            } => {
                assert_eq!(segments.len(), 2);
                assert_eq!(head_index, 0);
            }
            _ => unreachable!(),
        }
    }
}
