//! Per-job hierarchical address space (paper §3.1, Fig. 4).
//!
//! Internal nodes correspond to tasks in the job's DAG; each node owns
//! the blocks holding the intermediate data its task produced. A block's
//! *address* is any dotted path reaching its node (nodes can have several
//! parents — like hard links to an inode, a block can have many
//! addresses). Leases attach to nodes; renewing a node renews its direct
//! parents (the data it consumes) and all of its descendants (the data
//! that will consume it) — paper Fig. 5.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use jiffy_common::{BlockId, JiffyError, Result};

use crate::meta::DsMeta;

/// Fixed per-task metadata charge used for the §6.4 storage-overhead
/// accounting (name pointer, parent/child vectors, timestamps,
/// permissions — the paper reports 64 bytes per task).
pub const PER_TASK_METADATA_BYTES: u64 = 64;

/// Fixed per-block metadata charge (8 bytes: the block ID entry in its
/// node's block map).
pub const PER_BLOCK_METADATA_BYTES: u64 = 8;

/// Access permissions on an address prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permissions {
    /// Tasks of the owning job may read.
    pub read: bool,
    /// Tasks of the owning job may write.
    pub write: bool,
}

impl Default for Permissions {
    fn default() -> Self {
        Self {
            read: true,
            write: true,
        }
    }
}

/// One node in a job's address hierarchy.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node name (unique within the job).
    pub name: String,
    /// Direct parents (empty = hangs off the job root).
    pub parents: Vec<String>,
    /// Direct children.
    pub children: Vec<String>,
    /// Last lease renewal instant (clock-epoch offset).
    pub last_renewal: Duration,
    /// Access permissions.
    pub permissions: Permissions,
    /// Data-structure partitioning metadata, if a structure is bound.
    pub ds: Option<DsMeta>,
    /// Where the prefix's data was flushed on lease expiry (if it was).
    pub flushed_to: Option<String>,
    /// Metadata version; bumps on every partition-map change so clients
    /// can detect staleness.
    pub version: u64,
}

impl Node {
    fn new(name: String, now: Duration) -> Self {
        Self {
            name,
            parents: Vec::new(),
            children: Vec::new(),
            last_renewal: now,
            permissions: Permissions::default(),
            ds: None,
            flushed_to: None,
            version: 0,
        }
    }

    /// Blocks currently allocated to this node.
    pub fn blocks(&self) -> Vec<BlockId> {
        self.ds.as_ref().map(DsMeta::blocks).unwrap_or_default()
    }
}

/// A job's address hierarchy: a named DAG with lease timestamps.
#[derive(Debug, Default)]
pub struct AddressHierarchy {
    nodes: HashMap<String, Node>,
}

impl AddressHierarchy {
    /// Creates an empty hierarchy (just the implicit job root).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node under the given parents (all of which must exist).
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathExists`] if the name is taken,
    /// [`JiffyError::PathNotFound`] if a parent is missing.
    pub fn add_node(&mut self, name: &str, parents: &[String], now: Duration) -> Result<()> {
        if name.is_empty() || name.contains('.') {
            return Err(JiffyError::Internal(format!(
                "invalid node name {name:?}: must be non-empty, no dots"
            )));
        }
        if self.nodes.contains_key(name) {
            return Err(JiffyError::PathExists(name.to_string()));
        }
        for p in parents {
            if !self.nodes.contains_key(p) {
                return Err(JiffyError::PathNotFound(p.clone()));
            }
        }
        let mut node = Node::new(name.to_string(), now);
        node.parents = parents.to_vec();
        self.nodes.insert(name.to_string(), node);
        for p in parents {
            #[allow(clippy::expect_used)] // invariant documented in the message
            self.nodes
                .get_mut(p)
                .expect("invariant: parent existence checked above")
                .children
                .push(name.to_string());
        }
        Ok(())
    }

    /// Adds an extra parent edge to an existing node.
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] if either node is missing;
    /// [`JiffyError::Internal`] if the edge would create a cycle or
    /// already exists.
    pub fn add_parent(&mut self, name: &str, parent: &str) -> Result<()> {
        if !self.nodes.contains_key(name) {
            return Err(JiffyError::PathNotFound(name.to_string()));
        }
        if !self.nodes.contains_key(parent) {
            return Err(JiffyError::PathNotFound(parent.to_string()));
        }
        if self.nodes[name].parents.iter().any(|p| p == parent) {
            return Err(JiffyError::Internal(format!(
                "edge {parent} -> {name} already exists"
            )));
        }
        // A cycle would exist iff `parent` is reachable from `name`.
        if self.descendants(name).contains(parent) || name == parent {
            return Err(JiffyError::Internal(format!(
                "edge {parent} -> {name} would create a cycle"
            )));
        }
        #[allow(clippy::expect_used)] // invariant documented in the message
        self.nodes
            .get_mut(name)
            .expect("invariant: presence checked at function entry")
            .parents
            .push(parent.to_string());
        #[allow(clippy::expect_used)] // invariant documented in the message
        self.nodes
            .get_mut(parent)
            .expect("invariant: presence checked at function entry")
            .children
            .push(name.to_string());
        Ok(())
    }

    /// Removes a node, detaching it from parents and children. Children
    /// that lose their last parent become root-level. Returns the blocks
    /// the node held.
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] if the node is missing.
    pub fn remove_node(&mut self, name: &str) -> Result<Vec<BlockId>> {
        let node = self
            .nodes
            .remove(name)
            .ok_or_else(|| JiffyError::PathNotFound(name.to_string()))?;
        for p in &node.parents {
            if let Some(parent) = self.nodes.get_mut(p) {
                parent.children.retain(|c| c != name);
            }
        }
        for c in &node.children {
            if let Some(child) = self.nodes.get_mut(c) {
                child.parents.retain(|p| p != name);
            }
        }
        Ok(node.blocks())
    }

    /// Resolves a node by name or by dotted path (each consecutive pair
    /// must be a parent→child edge).
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] on missing nodes or invalid edges.
    pub fn resolve(&self, path: &str) -> Result<&Node> {
        let name = self.resolve_name(path)?;
        Ok(&self.nodes[&name])
    }

    /// Mutable variant of [`AddressHierarchy::resolve`].
    ///
    /// # Errors
    ///
    /// Same as [`AddressHierarchy::resolve`].
    pub fn resolve_mut(&mut self, path: &str) -> Result<&mut Node> {
        let name = self.resolve_name(path)?;
        #[allow(clippy::expect_used)] // invariant documented in the message
        Ok(self
            .nodes
            .get_mut(&name)
            .expect("invariant: resolve_name verified the node exists"))
    }

    fn resolve_name(&self, path: &str) -> Result<String> {
        let parts: Vec<&str> = path.split('.').collect();
        if parts.is_empty() || parts.iter().any(|p| p.is_empty()) {
            return Err(JiffyError::PathNotFound(path.to_string()));
        }
        for pair in parts.windows(2) {
            let parent = self
                .nodes
                .get(pair[0])
                .ok_or_else(|| JiffyError::PathNotFound(path.to_string()))?;
            if !parent.children.iter().any(|c| c == pair[1]) {
                return Err(JiffyError::PathNotFound(format!(
                    "{path} (no edge {} -> {})",
                    pair[0], pair[1]
                )));
            }
        }
        #[allow(clippy::expect_used)] // invariant documented in the message
        let last = *parts
            .last()
            .expect("invariant: parts verified non-empty above");
        if !self.nodes.contains_key(last) {
            return Err(JiffyError::PathNotFound(path.to_string()));
        }
        Ok(last.to_string())
    }

    /// All transitive descendants of a node (excluding itself).
    pub fn descendants(&self, name: &str) -> HashSet<String> {
        let mut seen = HashSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        if let Some(n) = self.nodes.get(name) {
            for c in &n.children {
                queue.push_back(c);
            }
        }
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur.to_string()) {
                continue;
            }
            if let Some(n) = self.nodes.get(cur) {
                for c in &n.children {
                    queue.push_back(c);
                }
            }
        }
        seen
    }

    /// The lease-renewal closure of a node: itself, its **direct**
    /// parents (the data it consumes, paper Fig. 5) and **all** of its
    /// descendants (everything that will consume its data).
    pub fn renewal_closure(&self, name: &str) -> Result<Vec<String>> {
        let node = self
            .nodes
            .get(name)
            .ok_or_else(|| JiffyError::PathNotFound(name.to_string()))?;
        let mut out: Vec<String> = vec![name.to_string()];
        out.extend(node.parents.iter().cloned());
        let mut descendants: Vec<String> = self.descendants(name).into_iter().collect();
        descendants.sort_unstable();
        for d in descendants {
            if !out.contains(&d) {
                out.push(d);
            }
        }
        Ok(out)
    }

    /// Renews the lease on `path`'s closure at time `now`; returns the
    /// renewed node names.
    ///
    /// # Errors
    ///
    /// [`JiffyError::PathNotFound`] on bad paths.
    pub fn renew(&mut self, path: &str, now: Duration) -> Result<Vec<String>> {
        let name = self.resolve_name(path)?;
        let closure = self.renewal_closure(&name)?;
        for n in &closure {
            if let Some(node) = self.nodes.get_mut(n) {
                node.last_renewal = now;
            }
        }
        Ok(closure)
    }

    /// Names of nodes whose lease lapsed before `now - lease_duration`.
    pub fn expired(&self, now: Duration, lease_duration: Duration) -> Vec<String> {
        self.nodes
            .values()
            .filter(|n| now.saturating_sub(n.last_renewal) > lease_duration)
            .map(|n| n.name.clone())
            .collect()
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the hierarchy has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node names (sorted, for deterministic listings).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.nodes.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Direct lookup without path validation.
    pub fn get(&self, name: &str) -> Option<&Node> {
        self.nodes.get(name)
    }

    /// Mutable direct lookup without path validation.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.nodes.get_mut(name)
    }

    /// Inserts a fully formed node verbatim — the snapshot-mirror import
    /// path, which restores edges exactly as checkpointed instead of
    /// re-deriving them through [`Self::add_node`].
    pub(crate) fn insert_node(&mut self, node: Node) {
        self.nodes.insert(node.name.clone(), node);
    }

    /// Total blocks allocated across all nodes.
    pub fn total_blocks(&self) -> usize {
        self.nodes.values().map(|n| n.blocks().len()).sum()
    }

    /// Controller metadata footprint for this hierarchy (the §6.4
    /// storage-overhead figure: 64 B per task + 8 B per block).
    pub fn metadata_bytes(&self) -> u64 {
        self.nodes
            .values()
            .map(|n| PER_TASK_METADATA_BYTES + PER_BLOCK_METADATA_BYTES * n.blocks().len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Duration {
        Duration::from_secs(secs)
    }

    /// Builds the paper's Fig. 3/4 DAG:
    /// T1,T2 -> T5; T3 -> T7; T4 -> T6; T5,T6 -> T7; T7 -> T8,T9.
    fn paper_dag() -> AddressHierarchy {
        let mut h = AddressHierarchy::new();
        for n in ["t1", "t2", "t3", "t4"] {
            h.add_node(n, &[], t(0)).unwrap();
        }
        h.add_node("t5", &["t1".into(), "t2".into()], t(0)).unwrap();
        h.add_node("t6", &["t4".into()], t(0)).unwrap();
        h.add_node("t7", &["t3".into(), "t5".into(), "t6".into()], t(0))
            .unwrap();
        h.add_node("t8", &["t7".into()], t(0)).unwrap();
        h.add_node("t9", &["t7".into()], t(0)).unwrap();
        h
    }

    #[test]
    fn duplicate_and_orphan_nodes_rejected() {
        let mut h = AddressHierarchy::new();
        h.add_node("a", &[], t(0)).unwrap();
        assert!(matches!(
            h.add_node("a", &[], t(0)),
            Err(JiffyError::PathExists(_))
        ));
        assert!(matches!(
            h.add_node("b", &["ghost".into()], t(0)),
            Err(JiffyError::PathNotFound(_))
        ));
        assert!(h.add_node("", &[], t(0)).is_err());
        assert!(h.add_node("a.b", &[], t(0)).is_err());
    }

    #[test]
    fn dotted_paths_resolve_along_edges() {
        let h = paper_dag();
        assert_eq!(h.resolve("t7").unwrap().name, "t7");
        assert_eq!(h.resolve("t4.t6.t7").unwrap().name, "t7");
        assert_eq!(h.resolve("t1.t5.t7").unwrap().name, "t7");
        // No edge t1 -> t7.
        assert!(h.resolve("t1.t7").is_err());
        assert!(h.resolve("t7.t1").is_err());
        assert!(h.resolve("missing").is_err());
        assert!(h.resolve("t1..t5").is_err());
    }

    #[test]
    fn renewal_closure_matches_paper_fig5() {
        let h = paper_dag();
        // Renewing T7 renews T7, its direct parents T3/T5/T6, and its
        // descendants T8/T9 — but NOT T1, T2, T4.
        let mut closure = h.renewal_closure("t7").unwrap();
        closure.sort_unstable();
        assert_eq!(closure, vec!["t3", "t5", "t6", "t7", "t8", "t9"]);
    }

    #[test]
    fn renew_updates_exactly_the_closure() {
        let mut h = paper_dag();
        let renewed = h.renew("t4.t6.t7", t(10)).unwrap();
        assert_eq!(renewed.len(), 6);
        for n in ["t3", "t5", "t6", "t7", "t8", "t9"] {
            assert_eq!(h.get(n).unwrap().last_renewal, t(10), "{n}");
        }
        for n in ["t1", "t2", "t4"] {
            assert_eq!(h.get(n).unwrap().last_renewal, t(0), "{n}");
        }
    }

    #[test]
    fn expiry_scans_by_timestamp() {
        let mut h = paper_dag();
        h.renew("t7", t(10)).unwrap();
        // Lease 5s, now = 12s: t1, t2, t4 (stamp 0) are expired.
        let mut e = h.expired(t(12), Duration::from_secs(5));
        e.sort_unstable();
        assert_eq!(e, vec!["t1", "t2", "t4"]);
        // now = 3s: nothing expired yet.
        assert!(h.expired(t(3), Duration::from_secs(5)).is_empty());
    }

    #[test]
    fn removing_a_node_detaches_edges() {
        let mut h = paper_dag();
        h.remove_node("t5").unwrap();
        assert!(h.get("t5").is_none());
        assert!(!h.get("t1").unwrap().children.contains(&"t5".to_string()));
        assert!(!h.get("t7").unwrap().parents.contains(&"t5".to_string()));
        // t7 still resolvable through other paths.
        assert_eq!(h.resolve("t4.t6.t7").unwrap().name, "t7");
        assert!(h.resolve("t1.t5.t7").is_err());
    }

    #[test]
    fn add_parent_rejects_duplicates_and_cycles() {
        let mut h = paper_dag();
        // Duplicate edge.
        assert!(h.add_parent("t7", "t5").is_err());
        // Cycle: t7 -> t8 exists, so t8 cannot become a parent of t7's
        // ancestor t5.
        assert!(h.add_parent("t5", "t8").is_err());
        assert!(h.add_parent("t5", "t5").is_err());
        // Legal new edge: t3 -> t8 (block under t8 gains address t3.t8).
        h.add_parent("t8", "t3").unwrap();
        assert_eq!(h.resolve("t3.t8").unwrap().name, "t8");
    }

    #[test]
    fn multi_address_blocks_one_node() {
        let h = paper_dag();
        // The same node (and thus the same blocks) is reachable by all
        // four addresses the paper lists for B7_1.
        for addr in ["t4.t6.t7", "t3.t7", "t2.t5.t7", "t1.t5.t7"] {
            assert_eq!(h.resolve(addr).unwrap().name, "t7");
        }
    }

    #[test]
    fn metadata_accounting_matches_the_paper_constants() {
        let h = paper_dag();
        // 9 tasks, no blocks yet.
        assert_eq!(h.metadata_bytes(), 9 * PER_TASK_METADATA_BYTES);
        assert_eq!(h.total_blocks(), 0);
    }
}
