//! Controller sharding (paper §4.2.1, Fig. 12b).
//!
//! Jiffy scales its control plane by hash-partitioning address
//! hierarchies (by job) and blocks across controller shards — the same
//! scheme scales across cores of one server and across servers. Shards
//! share nothing, which is exactly why the paper observes near-linear
//! throughput scaling.

use jiffy_sync::Arc;

use jiffy_common::{JiffyError, JobId, TenantId};
use jiffy_proto::{ControlRequest, ControlResponse, Envelope};
use jiffy_rpc::{Service, SessionHandle};

use crate::controller::Controller;

/// Routes control requests to one of several independent [`Controller`]
/// shards by job ID hash. Requests that are not job-scoped (server
/// registration, stats) go to shard 0 or fan out.
pub struct ShardedController {
    shards: Vec<Arc<Controller>>,
}

impl ShardedController {
    /// Wraps existing shards.
    pub fn new(shards: Vec<Arc<Controller>>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        Self { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard responsible for a job.
    pub fn shard_for(&self, job: JobId) -> &Arc<Controller> {
        let idx = (job.raw() as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Direct access to a shard by index (benchmarks drive shards
    /// independently to measure shared-nothing scaling).
    pub fn shard(&self, idx: usize) -> &Arc<Controller> {
        &self.shards[idx]
    }

    /// Routes one request. Job-scoped requests go to the owning shard;
    /// `RegisterJob` round-robins via shard 0's job counter; `GetStats`
    /// aggregates across shards.
    pub fn dispatch(&self, req: ControlRequest) -> Result<ControlResponse, JiffyError> {
        self.dispatch_as(req, TenantId::ANONYMOUS)
    }

    /// Routes one request on behalf of `tenant` (QoS accounting flows
    /// through to the owning shard).
    pub fn dispatch_as(
        &self,
        req: ControlRequest,
        tenant: TenantId,
    ) -> Result<ControlResponse, JiffyError> {
        match &req {
            ControlRequest::RegisterJob { .. } => {
                // Registration must land on the shard that will own the
                // resulting JobId. Controllers assign sequential IDs per
                // shard, so delegate to the shard whose modulus matches:
                // try shards in order until the assigned ID routes back
                // to the same shard. With shard-local IdGens this
                // converges immediately on shard 0 for a fresh cluster;
                // production deployments would partition the ID space.
                // We simply register on shard 0 and accept its ID space
                // being a superset (resolution uses shard_for()).
                self.shards[0].dispatch_as(req, tenant)
            }
            ControlRequest::GetStats => {
                let mut agg = jiffy_proto::ControllerStats::default();
                for s in &self.shards {
                    let st = s.stats();
                    agg.free_blocks += st.free_blocks;
                    agg.total_blocks += st.total_blocks;
                    agg.jobs += st.jobs;
                    agg.prefixes += st.prefixes;
                    agg.ops_served += st.ops_served;
                    agg.leases_expired += st.leases_expired;
                    agg.splits += st.splits;
                    agg.merges += st.merges;
                    agg.metadata_bytes += st.metadata_bytes;
                    agg.servers += st.servers;
                    agg.servers_failed += st.servers_failed;
                    agg.blocks_migrated += st.blocks_migrated;
                    agg.scale_ups += st.scale_ups;
                    agg.scale_downs += st.scale_downs;
                }
                Ok(ControlResponse::Stats(agg))
            }
            // Membership is shard 0's concern: servers join, heartbeat,
            // and leave through the shard that owns the free list.
            // Tenant configuration and stats live with the free list
            // too, since that shard arbitrates allocation under QoS.
            ControlRequest::JoinServer { .. }
            | ControlRequest::LeaveServer { .. }
            | ControlRequest::Heartbeat { .. }
            | ControlRequest::ListServers
            | ControlRequest::TenantStats
            | ControlRequest::SetTenantShare { .. } => self.shards[0].dispatch_as(req, tenant),
            other => {
                let job = job_of(other)
                    .ok_or_else(|| JiffyError::Internal("request has no job scope".into()))?;
                self.route_job(job).dispatch_as(req, tenant)
            }
        }
    }

    fn route_job(&self, job: JobId) -> &Arc<Controller> {
        // Jobs registered through shard 0 keep working on a single-shard
        // cluster; multi-shard deployments route by modulus. Fall back to
        // shard 0 if the owning shard does not know the job (it was
        // registered before sharding was enabled).
        self.shard_for(job)
    }
}

/// Extracts the job scope of a request, if any.
fn job_of(req: &ControlRequest) -> Option<JobId> {
    use ControlRequest::*;
    match req {
        DeregisterJob { job }
        | CreatePrefix { job, .. }
        | AddParent { job, .. }
        | CreateHierarchy { job, .. }
        | RemovePrefix { job, .. }
        | ResolvePrefix { job, .. }
        | RenewLease { job, .. }
        | GetLeaseDuration { job, .. }
        | FlushPrefix { job, .. }
        | LoadPrefix { job, .. }
        | ListPrefixes { job } => Some(*job),
        _ => None,
    }
}

impl Service for ShardedController {
    fn handle(&self, req: Envelope, _session: &SessionHandle) -> Envelope {
        match req {
            Envelope::ControlReq { id, req, tenant } => Envelope::ControlResp {
                id,
                resp: self.dispatch_as(req, tenant),
            },
            other => Envelope::ControlResp {
                id: 0,
                resp: Err(JiffyError::Rpc(format!("unexpected envelope {other:?}"))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::NoopDataPlane;
    use jiffy_common::clock::SystemClock;
    use jiffy_common::JiffyConfig;
    use jiffy_persistent::MemObjectStore;

    fn shards(n: usize) -> ShardedController {
        let mut v = Vec::new();
        for _ in 0..n {
            v.push(
                Controller::new(
                    JiffyConfig::for_testing(),
                    SystemClock::shared(),
                    Arc::new(NoopDataPlane),
                    Arc::new(MemObjectStore::new()),
                )
                .unwrap(),
            );
        }
        ShardedController::new(v)
    }

    #[test]
    fn job_routing_is_deterministic() {
        let sc = shards(4);
        for raw in 0..16u64 {
            let a = Arc::as_ptr(sc.shard_for(JobId(raw)));
            let b = Arc::as_ptr(sc.shard_for(JobId(raw)));
            assert_eq!(a, b);
            assert_eq!(
                Arc::as_ptr(sc.shard_for(JobId(raw))),
                Arc::as_ptr(sc.shard(raw as usize % 4))
            );
        }
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let sc = shards(2);
        // Register servers on both shards directly.
        sc.shard(0)
            .dispatch(ControlRequest::JoinServer {
                addr: "inproc:0".into(),
                capacity_blocks: 3,
            })
            .unwrap();
        sc.shard(1)
            .dispatch(ControlRequest::JoinServer {
                addr: "inproc:1".into(),
                capacity_blocks: 5,
            })
            .unwrap();
        match sc.dispatch(ControlRequest::GetStats).unwrap() {
            ControlResponse::Stats(s) => assert_eq!(s.total_blocks, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shards_operate_independently() {
        let sc = shards(2);
        for i in 0..2 {
            sc.shard(i)
                .dispatch(ControlRequest::JoinServer {
                    addr: format!("inproc:{i}"),
                    capacity_blocks: 4,
                })
                .unwrap();
        }
        // Drive each shard with its own job; no cross-shard interference.
        let mut jobs = Vec::new();
        for i in 0..2 {
            match sc
                .shard(i)
                .dispatch(ControlRequest::RegisterJob {
                    name: format!("job{i}"),
                })
                .unwrap()
            {
                ControlResponse::JobRegistered { job } => jobs.push(job),
                other => panic!("{other:?}"),
            }
        }
        for (i, job) in jobs.iter().enumerate() {
            sc.shard(i)
                .dispatch(ControlRequest::CreatePrefix {
                    job: *job,
                    name: "t".into(),
                    parents: vec![],
                    ds: None,
                    initial_blocks: 0,
                })
                .unwrap();
        }
        assert_eq!(sc.shard(0).stats().prefixes, 1);
        assert_eq!(sc.shard(1).stats().prefixes, 1);
    }
}
