//! Controller sharding (paper §4.2.1, Fig. 12b; DESIGN.md §15).
//!
//! Jiffy scales its control plane by hash-partitioning the hierarchy
//! namespace across shards — the same scheme scales across cores of one
//! server and across servers. Each shard is a full [`Controller`] with
//! its own free list, journal prefix and snapshot stream; shards share
//! nothing but the view epoch, which is exactly why the paper observes
//! near-linear throughput scaling.
//!
//! Partitioning is by *hierarchy root*: a path's first component (and
//! therefore every node reachable from it — parents and children must
//! co-hash, enforced at create time) lives on
//! `fnv(job, root) % num_shards`. Bare node names below a root are
//! routed through a router-maintained root table, rebuilt from shard
//! state after a restart. Server and block ids are minted strided
//! (shard `i` issues ids ≡ `i` mod N), so data-plane reports route by
//! `id % N` with no table at all.

use std::collections::HashMap;

use jiffy_sync::atomic::{AtomicU64, Ordering};
use jiffy_sync::{Arc, RwLock};

use jiffy_common::clock::SharedClock;
use jiffy_common::{JiffyConfig, JiffyError, JobId, Result, TenantId};
use jiffy_persistent::ObjectStore;
use jiffy_proto::{
    ControlRequest, ControlResponse, DagNodeSpec, Envelope, ShardMap, TenantStatsEntry,
};
use jiffy_rpc::{Service, SessionHandle};

use crate::controller::{Controller, DataPlane, ShardIdentity};

/// Everything needed to re-create a shard after a crash. Present only
/// when the router built its own shards (see [`ShardedController::build`]).
struct RebuildCtx {
    cfg: JiffyConfig,
    clock: SharedClock,
    dataplane: Arc<dyn DataPlane>,
    persistent: Arc<dyn ObjectStore>,
}

/// Routes control requests across independent [`Controller`] shards by
/// hierarchy-root hash. A crashed shard's slot goes dark (requests
/// routed to it fail with [`JiffyError::Unavailable`], which clients
/// retry) until [`ShardedController::restart_shard`] recovers it from
/// its journal prefix.
pub struct ShardedController {
    /// One slot per shard; `None` while the shard is crashed.
    slots: Vec<RwLock<Option<Arc<Controller>>>>,
    map: ShardMap,
    /// `(job, node name) → root component name`, so bare-name requests
    /// (renewals, resolves) route to the shard owning the node's root.
    /// Updated on successful creates/removes, rebuilt from shard state
    /// on restart.
    roots: RwLock<HashMap<(u64, String), String>>,
    /// View epoch shared by every shard; stamped on response envelopes.
    epoch: Arc<AtomicU64>,
    /// Round-robin cursor for server placement: each joining server is
    /// owned by exactly one shard, and round-robin keeps per-shard
    /// capacity balanced (an address hash could starve a shard of
    /// servers entirely). The owning shard mints the server's id from
    /// its strided range, so all later by-id routing lands back on it
    /// without consulting this cursor.
    joins: AtomicU64,
    rebuild: Option<RebuildCtx>,
}

impl ShardedController {
    /// Wraps existing, independently-constructed shards (benchmarks
    /// drive shards directly to measure shared-nothing scaling). For a
    /// crash-restartable control plane use [`ShardedController::build`].
    pub fn new(shards: Vec<Arc<Controller>>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let map = ShardMap {
            num_shards: shards.len() as u32,
        };
        let epoch = shards[0].shard_identity().epoch.clone();
        let sc = Self {
            slots: shards.into_iter().map(|s| RwLock::new(Some(s))).collect(),
            map,
            roots: RwLock::new(HashMap::new()),
            epoch,
            joins: AtomicU64::new(0),
            rebuild: None,
        };
        for i in 0..sc.num_shards() {
            if let Some(ctrl) = sc.slots[i].read().as_ref() {
                sc.absorb_roots_of(ctrl);
            }
        }
        sc
    }

    /// Builds a control plane of `num_shards` shards over one persistent
    /// tier, each journaling under `jiffy-meta/shard-{i}/` (plain
    /// `jiffy-meta/` when `num_shards == 1`, matching the unsharded
    /// layout) and all sharing one view epoch. Keeps the construction
    /// inputs so individual shards can be crashed and re-recovered.
    ///
    /// # Errors
    ///
    /// Propagates [`JiffyConfig::validate`] failures.
    pub fn build(
        cfg: JiffyConfig,
        clock: SharedClock,
        dataplane: Arc<dyn DataPlane>,
        persistent: Arc<dyn ObjectStore>,
        num_shards: u32,
    ) -> Result<Self> {
        let num_shards = num_shards.max(1);
        let epoch = Arc::new(AtomicU64::new(0));
        let mut slots = Vec::with_capacity(num_shards as usize);
        for i in 0..num_shards {
            let shard = Controller::new_sharded(
                cfg.clone(),
                clock.clone(),
                dataplane.clone(),
                persistent.clone(),
                ShardIdentity::member(i, num_shards, epoch.clone()),
            )?;
            slots.push(RwLock::new(Some(shard)));
        }
        Ok(Self {
            slots,
            map: ShardMap { num_shards },
            roots: RwLock::new(HashMap::new()),
            epoch,
            joins: AtomicU64::new(0),
            rebuild: Some(RebuildCtx {
                cfg,
                clock,
                dataplane,
                persistent,
            }),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// The static shard map clients use for cross-shard orchestration.
    pub fn shard_map(&self) -> ShardMap {
        self.map
    }

    /// The control plane's current view epoch.
    pub fn view_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Direct access to a shard by index (benchmarks drive shards
    /// independently to measure shared-nothing scaling).
    ///
    /// # Panics
    ///
    /// If the shard is currently crashed.
    pub fn shard(&self, idx: usize) -> Arc<Controller> {
        #[allow(clippy::expect_used)] // invariant documented in the message
        self.slots[idx]
            .read()
            .as_ref()
            .expect("invariant: direct shard access requires a live shard (request routing uses dispatch_as, which maps a dark slot to a retryable error)")
            .clone()
    }

    /// Drops shard `i`'s in-memory state, simulating a crash. Its
    /// journal and snapshots stay in the persistent tier; requests
    /// routed to it fail retryably until [`Self::restart_shard`].
    pub fn crash_shard(&self, idx: usize) {
        *self.slots[idx].write() = None;
    }

    /// Whether shard `i` is currently up.
    pub fn shard_is_up(&self, idx: usize) -> bool {
        self.slots[idx].read().is_some()
    }

    /// Recovers shard `i` from its journal prefix and brings its slot
    /// back up. Only available on routers constructed via
    /// [`ShardedController::build`].
    ///
    /// # Errors
    ///
    /// [`JiffyError::Internal`] if the router wrapped externally-built
    /// shards; otherwise journal recovery failures.
    pub fn restart_shard(&self, idx: usize) -> Result<Arc<Controller>> {
        let ctx = self.rebuild.as_ref().ok_or_else(|| {
            JiffyError::Internal("router wraps external shards; cannot restart".into())
        })?;
        let shard = Controller::recover_sharded(
            ctx.cfg.clone(),
            ctx.clock.clone(),
            ctx.dataplane.clone(),
            ctx.persistent.clone(),
            ShardIdentity::member(idx as u32, self.map.num_shards, self.epoch.clone()),
        )?;
        self.absorb_roots_of(&shard);
        *self.slots[idx].write() = Some(shard.clone());
        Ok(shard)
    }

    /// Merges `(job, node) → root` entries recovered from one shard's
    /// hierarchy state into the routing table. Roots are computed by
    /// chasing parent edges to a parentless node (iterated to a fixed
    /// point because the node list is unordered).
    fn absorb_roots_of(&self, ctrl: &Controller) {
        let mut table = self.roots.write();
        for (job, _name, nodes) in ctrl.hierarchy_edges() {
            let mut local: HashMap<String, String> = HashMap::new();
            for (node, parents) in &nodes {
                if parents.is_empty() {
                    local.insert(node.clone(), node.clone());
                }
            }
            let mut changed = true;
            while changed {
                changed = false;
                for (node, parents) in &nodes {
                    if local.contains_key(node) {
                        continue;
                    }
                    if let Some(first) = parents.first() {
                        if let Some(root) = local.get(first).cloned() {
                            local.insert(node.clone(), root);
                            changed = true;
                        }
                    }
                }
            }
            for (node, root) in local {
                table.insert((job.raw(), node), root);
            }
        }
    }

    /// The shard owning the node (or dotted path) `name` of `job`.
    pub fn route_path(&self, job: JobId, name: &str) -> u32 {
        let first = ShardMap::root_component(name);
        let roots = self.roots.read();
        let root = roots
            .get(&(job.raw(), first.to_string()))
            .map_or(first, String::as_str);
        self.map.shard_of_root(job, root)
    }

    /// The root recorded for `node` of `job`, defaulting to the node
    /// itself (a parentless node is its own root).
    fn root_of(&self, job: JobId, node: &str) -> String {
        self.roots
            .read()
            .get(&(job.raw(), node.to_string()))
            .cloned()
            .unwrap_or_else(|| node.to_string())
    }

    /// Forwards a request to shard `idx`, failing retryably if the
    /// shard is dark. The shard itself journals mutations before
    /// acking, so forwarding through here preserves journal-before-ack
    /// (xtask lint rule 5 recognizes this helper by name).
    fn dispatch_journaled(
        &self,
        idx: u32,
        req: ControlRequest,
        tenant: TenantId,
    ) -> Result<ControlResponse> {
        let slot = self.slots[idx as usize].read();
        let shard = slot
            .as_ref()
            .ok_or_else(|| JiffyError::shard_unavailable(idx))?
            .clone();
        drop(slot);
        shard.dispatch_as(req, tenant)
    }

    /// Routes one request. See [`Self::dispatch_as`].
    pub fn dispatch(&self, req: ControlRequest) -> Result<ControlResponse> {
        self.dispatch_as(req, TenantId::ANONYMOUS)
    }

    /// Routes one request on behalf of `tenant` (QoS accounting flows
    /// through to the owning shard).
    ///
    /// # Errors
    ///
    /// [`JiffyError::Unavailable`] when the owning shard is crashed
    /// (retryable); cross-shard structural errors; whatever the owning
    /// shard returns.
    pub fn dispatch_as(&self, req: ControlRequest, tenant: TenantId) -> Result<ControlResponse> {
        let n = self.map.num_shards;
        match req {
            // Jobs are minted by shard 0 (the only shard whose job-id
            // generator advances) and adopted everywhere else so any
            // shard can own hierarchy roots of any job.
            ControlRequest::RegisterJob { ref name } => {
                let job_name = name.clone();
                let resp = self.dispatch_journaled(0, req, tenant)?;
                if let ControlResponse::JobRegistered { job } = resp {
                    for i in 1..n {
                        self.dispatch_journaled(
                            i,
                            ControlRequest::AdoptJob {
                                job,
                                name: job_name.clone(),
                            },
                            tenant,
                        )?;
                    }
                }
                Ok(resp)
            }
            ControlRequest::AdoptJob { .. } => {
                for i in 0..n {
                    self.dispatch_journaled(i, req.clone(), tenant)?;
                }
                Ok(ControlResponse::Ack)
            }
            ControlRequest::DeregisterJob { job } => {
                for i in 0..n {
                    self.dispatch_journaled(i, req.clone(), tenant)?;
                }
                self.roots.write().retain(|(j, _), _| *j != job.raw());
                Ok(ControlResponse::Ack)
            }
            ControlRequest::SetTenantShare { .. } => {
                let mut resp = ControlResponse::Ack;
                for i in 0..n {
                    resp = self.dispatch_journaled(i, req.clone(), tenant)?;
                }
                Ok(resp)
            }
            ControlRequest::CreatePrefix {
                job,
                ref name,
                ref parents,
                ..
            } => {
                let (shard, root) = self.placement_of(job, name, parents)?;
                let node = name.clone();
                let resp = self.dispatch_journaled(shard, req, tenant)?;
                self.roots.write().insert((job.raw(), node), root);
                Ok(resp)
            }
            ControlRequest::AddParent {
                job,
                ref name,
                ref parent,
            } => {
                // An extra edge may only join nodes whose roots co-hash;
                // otherwise descendants of `name` would route ambiguously.
                let child_shard = self.route_path(job, name);
                let parent_shard = self.route_path(job, parent);
                if child_shard != parent_shard {
                    return Err(JiffyError::Internal(format!(
                        "cross-shard parent edge {parent} -> {name}: shards \
                         {parent_shard} vs {child_shard} (roots must co-hash)"
                    )));
                }
                self.dispatch_journaled(child_shard, req, tenant)
            }
            ControlRequest::CreateHierarchy { job, ref nodes } => {
                match self.hierarchy_placement(job, nodes)? {
                    Ok(shard) => {
                        let placed: Vec<(String, String)> = self.hierarchy_roots(job, nodes);
                        let resp = self.dispatch_journaled(shard, req, tenant)?;
                        let mut table = self.roots.write();
                        for (node, root) in placed {
                            table.insert((job.raw(), node), root);
                        }
                        Ok(resp)
                    }
                    // The DAG spans shards: hand the static map back and
                    // let the client re-issue per-node creates in order
                    // (non-atomic, like the paper's client-driven
                    // repartitioning).
                    Err(owner_shard) => Ok(ControlResponse::CrossShard {
                        owner_shard,
                        map: self.map,
                    }),
                }
            }
            ControlRequest::RemovePrefix { job, ref name } => {
                let shard = self.route_path(job, name);
                let node = name.clone();
                let resp = self.dispatch_journaled(shard, req, tenant)?;
                self.roots.write().remove(&(job.raw(), node));
                Ok(resp)
            }
            // Membership and data-plane reports route by id residue
            // class (shards mint strided server/block ids); a joining
            // server has no id yet, so placement is round-robin over
            // the live shards — its strided id then pins it there.
            ControlRequest::JoinServer { .. } => {
                let start = (self.joins.fetch_add(1, Ordering::Relaxed) % u64::from(n)) as u32;
                let shard = (0..n)
                    .map(|off| (start + off) % n)
                    .find(|&s| self.slots[s as usize].read().is_some())
                    .unwrap_or(start);
                self.dispatch_journaled(shard, req, tenant)
            }
            ControlRequest::LeaveServer { server } | ControlRequest::Heartbeat { server, .. } => {
                self.dispatch_journaled(self.map.shard_of_server(server), req, tenant)
            }
            ControlRequest::ReportOverload { block, .. }
            | ControlRequest::ReportUnderload { block, .. }
            | ControlRequest::CommitRepartition { block, .. } => {
                self.dispatch_journaled(self.map.shard_of_block(block), req, tenant)
            }
            // Observability fans out and aggregates.
            ControlRequest::GetStats => {
                let mut agg = jiffy_proto::ControllerStats::default();
                for i in 0..n {
                    let st = match self.dispatch_journaled(i, ControlRequest::GetStats, tenant)? {
                        ControlResponse::Stats(st) => st,
                        other => {
                            return Err(JiffyError::Internal(format!(
                                "shard {i} returned {other:?} for GetStats"
                            )))
                        }
                    };
                    agg.free_blocks += st.free_blocks;
                    agg.total_blocks += st.total_blocks;
                    agg.jobs += st.jobs;
                    agg.prefixes += st.prefixes;
                    agg.ops_served += st.ops_served;
                    agg.leases_expired += st.leases_expired;
                    agg.splits += st.splits;
                    agg.merges += st.merges;
                    agg.metadata_bytes += st.metadata_bytes;
                    agg.servers += st.servers;
                    agg.servers_failed += st.servers_failed;
                    agg.blocks_migrated += st.blocks_migrated;
                    agg.scale_ups += st.scale_ups;
                    agg.scale_downs += st.scale_downs;
                }
                // Every shard counts each job (shard 0 mints, the rest
                // adopt); report the cluster-wide count once.
                agg.jobs /= u64::from(n);
                Ok(ControlResponse::Stats(agg))
            }
            ControlRequest::ListServers => {
                let mut servers = Vec::new();
                for i in 0..n {
                    match self.dispatch_journaled(i, ControlRequest::ListServers, tenant)? {
                        ControlResponse::Servers(mut s) => servers.append(&mut s),
                        other => {
                            return Err(JiffyError::Internal(format!(
                                "shard {i} returned {other:?} for ListServers"
                            )))
                        }
                    }
                }
                servers.sort_by_key(|s| s.server.raw());
                Ok(ControlResponse::Servers(servers))
            }
            ControlRequest::ListPrefixes { .. } => {
                let mut names = Vec::new();
                for i in 0..n {
                    match self.dispatch_journaled(i, req.clone(), tenant)? {
                        ControlResponse::Prefixes(mut p) => names.append(&mut p),
                        other => {
                            return Err(JiffyError::Internal(format!(
                                "shard {i} returned {other:?} for ListPrefixes"
                            )))
                        }
                    }
                }
                names.sort();
                Ok(ControlResponse::Prefixes(names))
            }
            ControlRequest::TenantStats => {
                let mut by_tenant: HashMap<u64, TenantStatsEntry> = HashMap::new();
                for i in 0..n {
                    match self.dispatch_journaled(i, ControlRequest::TenantStats, tenant)? {
                        ControlResponse::TenantStatsReport(entries) => {
                            for e in entries {
                                let agg = by_tenant.entry(e.tenant.raw()).or_insert_with(|| {
                                    TenantStatsEntry {
                                        tenant: e.tenant,
                                        share: e.share,
                                        quota_bytes: e.quota_bytes,
                                        allocated_blocks: 0,
                                        allocated_bytes: 0,
                                        ops_admitted: 0,
                                        ops_throttled: 0,
                                        bytes_in: 0,
                                        bytes_out: 0,
                                        op_rate_ewma: 0.0,
                                    }
                                });
                                agg.allocated_blocks += e.allocated_blocks;
                                agg.allocated_bytes += e.allocated_bytes;
                                agg.ops_admitted += e.ops_admitted;
                                agg.ops_throttled += e.ops_throttled;
                                agg.bytes_in += e.bytes_in;
                                agg.bytes_out += e.bytes_out;
                                agg.op_rate_ewma += e.op_rate_ewma;
                            }
                        }
                        other => {
                            return Err(JiffyError::Internal(format!(
                                "shard {i} returned {other:?} for TenantStats"
                            )))
                        }
                    }
                }
                let mut entries: Vec<TenantStatsEntry> = by_tenant.into_values().collect();
                entries.sort_by_key(|e| e.tenant.raw());
                Ok(ControlResponse::TenantStatsReport(entries))
            }
            // Remaining requests (resolve, renew, lease queries, flush,
            // load) are node-scoped: forward to the root's shard, which
            // journals its own mutations before acking.
            other => {
                let (job, name) = path_scope(&other).ok_or_else(|| {
                    JiffyError::Internal(format!("request has no shard scope: {other:?}"))
                })?;
                let shard = self.route_path(job, &name);
                self.dispatch_journaled(shard, other, tenant)
            }
        }
    }

    /// Where a new node must live: with its parents (all of whose roots
    /// must co-hash), or — parentless — on its own hash. Returns the
    /// `(shard, root)` to record.
    fn placement_of(&self, job: JobId, name: &str, parents: &[String]) -> Result<(u32, String)> {
        let Some(first) = parents.first() else {
            return Ok((self.map.shard_of_root(job, name), name.to_string()));
        };
        let root = self.root_of(job, first);
        let shard = self.map.shard_of_root(job, &root);
        for p in &parents[1..] {
            let p_shard = self.map.shard_of_root(job, &self.root_of(job, p));
            if p_shard != shard {
                return Err(JiffyError::Internal(format!(
                    "parents of {name} live on different shards ({first} on \
                     {shard}, {p} on {p_shard}); re-root the DAG or co-hash"
                )));
            }
        }
        Ok((shard, root))
    }

    /// Which shard owns an entire DAG spec, or `Err(owner_of_first)` if
    /// it spans shards (the outer `Result` carries structural errors).
    fn hierarchy_placement(
        &self,
        job: JobId,
        nodes: &[DagNodeSpec],
    ) -> Result<std::result::Result<u32, u32>> {
        let mut first_shard = None;
        for (_node, root) in self.hierarchy_roots(job, nodes) {
            let shard = self.map.shard_of_root(job, &root);
            match first_shard {
                None => first_shard = Some(shard),
                Some(s) if s != shard => return Ok(Err(s)),
                Some(_) => {}
            }
        }
        Ok(Ok(first_shard.unwrap_or(0)))
    }

    /// `(node, root)` for every spec in a DAG, resolving parents through
    /// earlier specs (the list is topologically ordered) and, for
    /// parents created earlier, through the routing table.
    fn hierarchy_roots(&self, job: JobId, nodes: &[DagNodeSpec]) -> Vec<(String, String)> {
        let mut local: HashMap<String, String> = HashMap::new();
        let mut out = Vec::with_capacity(nodes.len());
        for spec in nodes {
            let root = match spec.parents.first() {
                None => spec.name.clone(),
                Some(p) => local
                    .get(p)
                    .cloned()
                    .unwrap_or_else(|| self.root_of(job, p)),
            };
            local.insert(spec.name.clone(), root.clone());
            out.push((spec.name.clone(), root));
        }
        out
    }
}

/// Extracts the `(job, node-or-path)` scope of a node-scoped request.
fn path_scope(req: &ControlRequest) -> Option<(JobId, String)> {
    use ControlRequest::*;
    match req {
        ResolvePrefix { job, name }
        | RenewLease { job, name }
        | GetLeaseDuration { job, name }
        | FlushPrefix { job, name, .. }
        | LoadPrefix { job, name, .. } => Some((*job, name.clone())),
        _ => None,
    }
}

impl Service for ShardedController {
    fn handle(&self, req: Envelope, _session: &SessionHandle) -> Envelope {
        match req {
            Envelope::ControlReq { id, req, tenant } => {
                let resp = self.dispatch_as(req, tenant);
                // Epoch loaded after dispatch: a response to the very op
                // that changed placement already carries the bump.
                Envelope::ControlResp {
                    id,
                    resp,
                    epoch: self.view_epoch(),
                }
            }
            other => Envelope::ControlResp {
                id: 0,
                resp: Err(JiffyError::Rpc(format!("unexpected envelope {other:?}"))),
                epoch: self.view_epoch(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::NoopDataPlane;
    use jiffy_common::clock::SystemClock;
    use jiffy_persistent::MemObjectStore;

    fn build(n: u32) -> ShardedController {
        ShardedController::build(
            JiffyConfig::for_testing(),
            SystemClock::shared(),
            Arc::new(NoopDataPlane),
            Arc::new(MemObjectStore::new()),
            n,
        )
        .unwrap()
    }

    fn join_servers(sc: &ShardedController, count: usize, capacity: u32) {
        for i in 0..count {
            sc.dispatch(ControlRequest::JoinServer {
                addr: format!("inproc:{i}"),
                capacity_blocks: capacity,
            })
            .unwrap();
        }
    }

    fn register(sc: &ShardedController, name: &str) -> JobId {
        match sc
            .dispatch(ControlRequest::RegisterJob { name: name.into() })
            .unwrap()
        {
            ControlResponse::JobRegistered { job } => job,
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn root_routing_is_deterministic_and_renames_follow_roots() {
        let sc = build(4);
        let job = register(&sc, "j");
        for i in 0..8 {
            sc.dispatch(ControlRequest::CreatePrefix {
                job,
                name: format!("t{i}"),
                parents: vec![],
                ds: None,
                initial_blocks: 0,
            })
            .unwrap();
        }
        // A child routes to its parent's shard even though its own name
        // would hash elsewhere.
        sc.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "child".into(),
            parents: vec!["t3".into()],
            ds: None,
            initial_blocks: 0,
        })
        .unwrap();
        assert_eq!(sc.route_path(job, "child"), sc.route_path(job, "t3"));
        // Bare-name resolve of the child succeeds (lands on t3's shard).
        match sc
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "t3.child".into(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn jobs_are_adopted_by_every_shard() {
        let sc = build(3);
        let job = register(&sc, "everywhere");
        for i in 0..3 {
            let edges = sc.shard(i).hierarchy_edges();
            assert!(
                edges
                    .iter()
                    .any(|(j, name, _)| *j == job && name == "everywhere"),
                "shard {i} did not adopt the job"
            );
        }
        // Stats report the job once, not once per shard.
        match sc.dispatch(ControlRequest::GetStats).unwrap() {
            ControlResponse::Stats(s) => assert_eq!(s.jobs, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let sc = build(2);
        sc.shard(0)
            .dispatch(ControlRequest::JoinServer {
                addr: "inproc:0".into(),
                capacity_blocks: 3,
            })
            .unwrap();
        sc.shard(1)
            .dispatch(ControlRequest::JoinServer {
                addr: "inproc:1".into(),
                capacity_blocks: 5,
            })
            .unwrap();
        match sc.dispatch(ControlRequest::GetStats).unwrap() {
            ControlResponse::Stats(s) => assert_eq!(s.total_blocks, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cross_shard_hierarchy_returns_the_shard_map() {
        let sc = build(4);
        let job = register(&sc, "dag");
        // Find two parentless roots that hash to different shards.
        let mut names = (0..32).map(|i| format!("r{i}"));
        let a = names.next().unwrap();
        let b = names
            .find(|n| sc.map.shard_of_root(job, n) != sc.map.shard_of_root(job, &a))
            .expect("32 names must span 4 shards");
        let nodes = vec![
            DagNodeSpec {
                name: a,
                parents: vec![],
                ds: None,
                initial_blocks: 0,
            },
            DagNodeSpec {
                name: b,
                parents: vec![],
                ds: None,
                initial_blocks: 0,
            },
        ];
        match sc
            .dispatch(ControlRequest::CreateHierarchy { job, nodes })
            .unwrap()
        {
            ControlResponse::CrossShard { map, .. } => {
                assert_eq!(map.num_shards, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cross_shard_parent_edge_is_rejected() {
        let sc = build(4);
        let job = register(&sc, "j");
        let mut names = (0..32).map(|i| format!("r{i}"));
        let a = names.next().unwrap();
        let b = names
            .find(|n| sc.map.shard_of_root(job, n) != sc.map.shard_of_root(job, &a))
            .unwrap();
        for name in [&a, &b] {
            sc.dispatch(ControlRequest::CreatePrefix {
                job,
                name: name.clone(),
                parents: vec![],
                ds: None,
                initial_blocks: 0,
            })
            .unwrap();
        }
        let err = sc
            .dispatch(ControlRequest::CreatePrefix {
                job,
                name: "kid".into(),
                parents: vec![a, b],
                ds: None,
                initial_blocks: 0,
            })
            .unwrap_err();
        assert!(matches!(err, JiffyError::Internal(_)), "{err:?}");
    }

    #[test]
    fn crashed_shard_is_unavailable_until_restarted() {
        let sc = build(2);
        join_servers(&sc, 4, 4);
        let job = register(&sc, "j");
        // Find a root on shard 1 so we can dark it.
        let name = (0..16)
            .map(|i| format!("t{i}"))
            .find(|n| sc.map.shard_of_root(job, n) == 1)
            .unwrap();
        sc.dispatch(ControlRequest::CreatePrefix {
            job,
            name: name.clone(),
            parents: vec![],
            ds: None,
            initial_blocks: 1,
        })
        .unwrap();
        sc.crash_shard(1);
        let err = sc
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: name.clone(),
            })
            .unwrap_err();
        assert!(err.is_retryable(), "{err:?}");
        sc.restart_shard(1).unwrap();
        match sc
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: name.clone(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(v) => assert_eq!(v.name, name),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn restart_recovers_roots_and_epoch_moves_forward() {
        let sc = build(2);
        join_servers(&sc, 4, 4);
        let job = register(&sc, "j");
        let root = (0..16)
            .map(|i| format!("t{i}"))
            .find(|n| sc.map.shard_of_root(job, n) == 1)
            .unwrap();
        sc.dispatch(ControlRequest::CreatePrefix {
            job,
            name: root.clone(),
            parents: vec![],
            ds: None,
            initial_blocks: 0,
        })
        .unwrap();
        sc.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "leaf".into(),
            parents: vec![root.clone()],
            ds: None,
            initial_blocks: 0,
        })
        .unwrap();
        let before = sc.view_epoch();
        sc.crash_shard(1);
        // Wipe the router's learned roots to prove restart re-learns them.
        sc.roots.write().clear();
        sc.restart_shard(1).unwrap();
        assert!(sc.view_epoch() > before, "recovery must bump the epoch");
        assert_eq!(sc.root_of(job, "leaf"), root);
        match sc
            .dispatch(ControlRequest::RenewLease {
                job,
                name: "leaf".into(),
            })
            .unwrap()
        {
            ControlResponse::LeaseRenewed { renewed, .. } => {
                assert!(renewed.contains(&"leaf".to_string()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shards_operate_independently() {
        let sc = ShardedController::new(
            (0..2)
                .map(|_| {
                    Controller::new(
                        JiffyConfig::for_testing(),
                        SystemClock::shared(),
                        Arc::new(NoopDataPlane),
                        Arc::new(MemObjectStore::new()),
                    )
                    .unwrap()
                })
                .collect(),
        );
        for i in 0..2 {
            sc.shard(i)
                .dispatch(ControlRequest::JoinServer {
                    addr: format!("inproc:{i}"),
                    capacity_blocks: 4,
                })
                .unwrap();
        }
        // Drive each shard with its own job; no cross-shard interference.
        let mut jobs = Vec::new();
        for i in 0..2 {
            match sc
                .shard(i)
                .dispatch(ControlRequest::RegisterJob {
                    name: format!("job{i}"),
                })
                .unwrap()
            {
                ControlResponse::JobRegistered { job } => jobs.push(job),
                other => panic!("{other:?}"),
            }
        }
        for (i, job) in jobs.iter().enumerate() {
            sc.shard(i)
                .dispatch(ControlRequest::CreatePrefix {
                    job: *job,
                    name: "t".into(),
                    parents: vec![],
                    ds: None,
                    initial_blocks: 0,
                })
                .unwrap();
        }
        assert_eq!(sc.shard(0).stats().prefixes, 1);
        assert_eq!(sc.shard(1).stats().prefixes, 1);
    }
}
