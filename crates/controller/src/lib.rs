//! Jiffy's unified control plane (paper §4.2.1, Fig. 7).
//!
//! The controller maintains two pieces of system-wide state: the **free
//! block list** (blocks not yet allocated to any job) and one **address
//! hierarchy per job** (a DAG mirroring the job's execution plan, whose
//! nodes carry permissions, lease timestamps, block maps and
//! data-structure partitioning metadata). On top of that state sit:
//!
//! - [`freelist`] — server registration and block allocation.
//! - [`hierarchy`] — the per-job address DAG and its lease-propagation
//!   closure (renewing a prefix renews its direct parents and all
//!   descendants, §3.2 / Fig. 5).
//! - [`meta`] — per-data-structure partitioning metadata (the "metadata
//!   manager"): file chunk lists, queue segment lists, KV slot maps, and
//!   the split/merge planning used for elastic scaling (§3.3).
//! - [`controller`] — the [`Controller`] service tying it together:
//!   request dispatch, lease expiry (flush to the persistent tier, then
//!   reclaim), and repartition orchestration (Fig. 8).
//! - [`journal`] — the write-ahead metadata journal, snapshots, and
//!   deterministic replay that make the controller crash-recoverable
//!   (DESIGN.md §11).
//! - [`sharding`] — hash-partitioning jobs across multiple controller
//!   shards (multi-core / multi-server scaling, Fig. 12b).
//!
//! [`Controller`]: controller::Controller

pub mod controller;
pub mod freelist;
pub mod hierarchy;
pub mod journal;
pub mod meta;
pub mod sharding;

pub use controller::{
    Controller, ControllerHandle, Counters, DataPlane, NoopDataPlane, RpcDataPlane, ShardIdentity,
};
pub use freelist::{FreeList, FreeListMirror, ServerMirror};
pub use hierarchy::{AddressHierarchy, Node};
pub use journal::{JobMirror, NodeMirror, StateMirror};
pub use meta::DsMeta;
pub use sharding::ShardedController;
