//! Controller crash recovery: metadata journal, snapshots, and replay
//! (DESIGN.md §11).
//!
//! Every mutating control-plane operation appends a typed
//! [`JournalOp`] record to a write-ahead journal in the persistent tier
//! *before* the controller acknowledges it. Records are
//! outcome-carrying — they log the results of non-deterministic choices
//! (allocated chains, chosen merge targets, issued ids) — so replay is a
//! pure fold over metadata: it touches neither the allocator's policy
//! nor the data plane.
//!
//! Layout in the object store:
//!
//! - `jiffy-meta/journal/{first_seq:020}` — one [`JournalBatch`] per
//!   dispatch that mutated state. Object puts are atomic (temp file +
//!   fsync + rename), so the observable crash points are exactly the
//!   batch boundaries.
//! - `jiffy-meta/snapshot/{last_seq:020}` — a [`JournalSnapshot`]
//!   wrapping a wire-encoded [`StateMirror`]. Written every
//!   `meta_snapshot_every` records; once durable, fully-covered journal
//!   batches and older snapshots are deleted (truncation is best-effort:
//!   replay dedupes by sequence number, so stale objects are harmless).
//!
//! Recovery loads the newest snapshot, replays every journal record with
//! a sequence number greater than the snapshot's `last_seq` in order
//! (skipping duplicates), and hands the rebuilt tables to
//! [`Controller::recover`](crate::Controller::recover), which re-arms
//! leases and seeds the failure detector from the recovery clock —
//! the journal is authoritative for metadata, heartbeats for liveness.

use jiffy_sync::Arc;
use std::collections::HashMap;
use std::time::Duration;

use jiffy_common::{BlockId, JiffyError, JobId, Result, TenantId};
use jiffy_persistent::ObjectStore;
use jiffy_proto::{
    from_bytes, to_bytes, JournalBatch, JournalOp, JournalRecord, JournalSnapshot, TenantLimit,
};
use serde::{Deserialize, Serialize};

use crate::controller::{Counters, CtrlState, JobEntry};
use crate::freelist::{FreeList, FreeListMirror};
use crate::hierarchy::{AddressHierarchy, Node, Permissions};
use crate::meta::{DsMeta, DsSkeleton};

/// Object-store prefix under which an unsharded controller's metadata
/// lives. Shard `i` of a sharded control plane uses
/// `jiffy-meta/shard-{i}/` instead, giving every shard its own journal
/// and snapshot stream (see [`Journal::fresh`] / [`recover_from`],
/// which take the prefix explicitly).
pub(crate) const META_PREFIX: &str = "jiffy-meta/";
/// Journal batch objects live at `{meta_prefix}journal/{first_seq:020}`.
const JOURNAL_DIR: &str = "journal/";
/// Snapshot objects live at `{meta_prefix}snapshot/{last_seq:020}`.
const SNAPSHOT_DIR: &str = "snapshot/";

/// A deterministic, order-independent serialization of the controller's
/// entire metadata state: jobs and their address hierarchies, the block
/// freelist/membership table, the block→owner reverse map, counters, and
/// the job-id high-water mark.
///
/// Mirrors built from two controllers with identical logical state are
/// `==` (collections are emitted in sorted order), which is what the
/// crash-point sweep tests lean on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateMirror {
    /// Jobs sorted by id.
    pub jobs: Vec<JobMirror>,
    /// The freelist / server-membership table.
    pub freelist: FreeListMirror,
    /// `(block, job, node)` triples sorted by block id.
    pub block_owner: Vec<(u64, u64, String)>,
    /// Monotonic stats counters.
    pub counters: Counters,
    /// Next job id the generator would issue.
    pub next_job_id: u64,
    /// Explicitly configured tenant QoS limits, sorted by tenant id.
    pub tenants: Vec<TenantLimit>,
}

/// One job's slice of a [`StateMirror`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMirror {
    /// Raw job id.
    pub job: u64,
    /// Client-supplied job name.
    pub name: String,
    /// Hierarchy nodes sorted by name.
    pub nodes: Vec<NodeMirror>,
    /// Raw tenant id the job is accounted against.
    pub tenant: u64,
}

/// One hierarchy node's slice of a [`StateMirror`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeMirror {
    /// Node path.
    pub name: String,
    /// Parent edges in insertion order.
    pub parents: Vec<String>,
    /// Child edges in insertion order.
    pub children: Vec<String>,
    /// Lease clock at last renewal (microseconds).
    pub last_renewal_micros: u64,
    /// Read permission bit.
    pub read: bool,
    /// Write permission bit.
    pub write: bool,
    /// Partitioning metadata, if the node carries a data structure.
    pub ds: Option<DsMeta>,
    /// Persistent-tier path of the last flush, if any.
    pub flushed_to: Option<String>,
    /// Metadata version (bumped on every repartition).
    pub version: u64,
}

impl StateMirror {
    /// A copy with the fields that legitimately differ across a
    /// crash/recover cycle zeroed: `ops_served` (replay does not count
    /// as serving) and every lease clock (recovery re-arms all leases to
    /// the restart instant). Everything else must match exactly.
    #[must_use]
    pub fn normalized(&self) -> StateMirror {
        let mut m = self.clone();
        m.counters.ops_served = 0;
        for job in &mut m.jobs {
            for node in &mut job.nodes {
                node.last_renewal_micros = 0;
            }
        }
        m
    }
}

/// Builds a [`StateMirror`] from live controller tables.
pub(crate) fn mirror_of(st: &CtrlState, next_job_id: u64) -> StateMirror {
    let mut jobs: Vec<JobMirror> = st
        .jobs
        .iter()
        .map(|(id, entry)| {
            let nodes = entry
                .hierarchy
                .names()
                .iter()
                .filter_map(|n| entry.hierarchy.get(n))
                .map(|node| NodeMirror {
                    name: node.name.clone(),
                    parents: node.parents.clone(),
                    children: node.children.clone(),
                    last_renewal_micros: u64::try_from(node.last_renewal.as_micros())
                        .unwrap_or(u64::MAX),
                    read: node.permissions.read,
                    write: node.permissions.write,
                    ds: node.ds.clone(),
                    flushed_to: node.flushed_to.clone(),
                    version: node.version,
                })
                .collect();
            JobMirror {
                job: id.raw(),
                name: entry.name.clone(),
                nodes,
                tenant: entry.tenant.raw(),
            }
        })
        .collect();
    jobs.sort_by_key(|j| j.job);
    let mut block_owner: Vec<(u64, u64, String)> = st
        .block_owner
        .iter()
        .map(|(b, (j, n))| (b.raw(), j.raw(), n.clone()))
        .collect();
    block_owner.sort();
    StateMirror {
        jobs,
        freelist: st.freelist.mirror(),
        block_owner,
        counters: st.counters.clone(),
        next_job_id,
        tenants: st.tenants.snapshot(),
    }
}

/// The metadata tables rebuilt by [`recover_from`], ready to be wrapped
/// into a fresh `CtrlState` by `Controller::recover`.
pub(crate) struct RecoveredState {
    pub(crate) jobs: HashMap<JobId, JobEntry>,
    pub(crate) freelist: FreeList,
    pub(crate) block_owner: HashMap<BlockId, (JobId, String)>,
    pub(crate) counters: Counters,
    pub(crate) next_job_id: u64,
    /// Sequence number the resumed journal should issue next.
    pub(crate) next_seq: u64,
    /// Explicitly configured tenant QoS limits.
    pub(crate) tenants: Vec<TenantLimit>,
}

impl RecoveredState {
    fn empty() -> Self {
        Self {
            jobs: HashMap::new(),
            freelist: FreeList::new(),
            block_owner: HashMap::new(),
            counters: Counters::default(),
            next_job_id: 0,
            next_seq: 0,
            tenants: Vec::new(),
        }
    }

    /// Replaces every table with the contents of `mirror` (snapshot
    /// install and `StateRewritten` replay).
    fn install_mirror(&mut self, mirror: &StateMirror) -> Result<()> {
        let mut jobs = HashMap::new();
        for jm in &mirror.jobs {
            let mut hierarchy = AddressHierarchy::new();
            for nm in &jm.nodes {
                hierarchy.insert_node(Node {
                    name: nm.name.clone(),
                    parents: nm.parents.clone(),
                    children: nm.children.clone(),
                    last_renewal: Duration::from_micros(nm.last_renewal_micros),
                    permissions: Permissions {
                        read: nm.read,
                        write: nm.write,
                    },
                    ds: nm.ds.clone(),
                    flushed_to: nm.flushed_to.clone(),
                    version: nm.version,
                });
            }
            jobs.insert(
                JobId(jm.job),
                JobEntry {
                    name: jm.name.clone(),
                    hierarchy,
                    tenant: TenantId(jm.tenant),
                },
            );
        }
        self.jobs = jobs;
        self.freelist = FreeList::from_mirror(&mirror.freelist)?;
        self.block_owner = mirror
            .block_owner
            .iter()
            .map(|(b, j, n)| (BlockId(*b), (JobId(*j), n.clone())))
            .collect();
        self.counters = mirror.counters.clone();
        self.next_job_id = mirror.next_job_id;
        self.tenants = mirror.tenants.clone();
        Ok(())
    }
}

fn job_mut(jobs: &mut HashMap<JobId, JobEntry>, job: JobId) -> Result<&mut JobEntry> {
    jobs.get_mut(&job).ok_or(JiffyError::UnknownJob(job.raw()))
}

/// Applies one journal record to the recovering tables. Pure metadata:
/// no allocator policy, no data-plane calls, no clock reads.
#[allow(clippy::too_many_lines)] // one arm per record type, linear
pub(crate) fn apply_op(state: &mut RecoveredState, op: &JournalOp) -> Result<()> {
    match op {
        JournalOp::JobRegistered { job, name, tenant } => {
            state.jobs.insert(
                *job,
                JobEntry {
                    name: name.clone(),
                    hierarchy: AddressHierarchy::new(),
                    tenant: *tenant,
                },
            );
            state.next_job_id = state.next_job_id.max(job.raw() + 1);
        }
        JournalOp::JobDeregistered { job } => {
            let entry = state
                .jobs
                .remove(job)
                .ok_or(JiffyError::UnknownJob(job.raw()))?;
            for name in entry.hierarchy.names() {
                let Some(node) = entry.hierarchy.get(&name) else {
                    continue;
                };
                let Some(meta) = &node.ds else { continue };
                for loc in meta.locations() {
                    for replica in &loc.chain {
                        state.block_owner.remove(&replica.block);
                        let _ = state.freelist.release(replica.block);
                    }
                }
            }
        }
        JournalOp::PrefixCreated {
            job,
            name,
            parents,
            locs,
            skeleton,
            now_micros,
        } => {
            let entry = job_mut(&mut state.jobs, *job)?;
            entry
                .hierarchy
                .add_node(name, parents, Duration::from_micros(*now_micros))?;
            if let Some(sk) = skeleton {
                let skel: DsSkeleton = from_bytes(sk)?;
                for loc in locs {
                    for replica in &loc.chain {
                        state.freelist.claim(replica.block)?;
                    }
                    state.block_owner.insert(loc.id(), (*job, name.clone()));
                }
                let meta = DsMeta::from_skeleton(&skel, locs.clone())?;
                let entry = job_mut(&mut state.jobs, *job)?;
                if let Ok(node) = entry.hierarchy.resolve_mut(name) {
                    node.ds = Some(meta);
                }
            }
        }
        JournalOp::ParentAdded { job, name, parent } => {
            job_mut(&mut state.jobs, *job)?
                .hierarchy
                .add_parent(name, parent)?;
        }
        JournalOp::PrefixRemoved { job, name } => {
            let entry = job_mut(&mut state.jobs, *job)?;
            if let Ok(node) = entry.hierarchy.resolve_mut(name) {
                let locs = node.ds.as_ref().map(DsMeta::locations).unwrap_or_default();
                node.ds = None;
                node.version += 1;
                for loc in &locs {
                    for replica in &loc.chain {
                        state.block_owner.remove(&replica.block);
                        let _ = state.freelist.release(replica.block);
                    }
                }
            }
            job_mut(&mut state.jobs, *job)?
                .hierarchy
                .remove_node(name)?;
        }
        JournalOp::LeaseRenewed {
            job,
            name,
            now_micros,
        } => {
            job_mut(&mut state.jobs, *job)?
                .hierarchy
                .renew(name, Duration::from_micros(*now_micros))?;
        }
        JournalOp::PrefixFlushed {
            job,
            name,
            path,
            reclaimed,
            expired,
        } => {
            let entry = job_mut(&mut state.jobs, *job)?;
            let node = entry.hierarchy.resolve_mut(name)?;
            node.flushed_to = Some(path.clone());
            if *reclaimed {
                let locs = node.ds.as_ref().map(DsMeta::locations).unwrap_or_default();
                node.ds = None;
                node.version += 1;
                for loc in &locs {
                    for replica in &loc.chain {
                        state.block_owner.remove(&replica.block);
                        let _ = state.freelist.release(replica.block);
                    }
                }
                if *expired {
                    state.counters.leases_expired += 1;
                }
            }
        }
        JournalOp::PrefixLoaded {
            job,
            name,
            path,
            locs,
            skeleton,
        } => {
            let skel: DsSkeleton = from_bytes(skeleton)?;
            for loc in locs {
                for replica in &loc.chain {
                    state.freelist.claim(replica.block)?;
                }
                state.block_owner.insert(loc.id(), (*job, name.clone()));
            }
            let meta = DsMeta::from_skeleton(&skel, locs.clone())?;
            let entry = job_mut(&mut state.jobs, *job)?;
            let node = entry.hierarchy.resolve_mut(name)?;
            node.ds = Some(meta);
            node.version += 1;
            node.flushed_to = Some(path.clone());
        }
        JournalOp::ServerJoined {
            server,
            addr,
            blocks,
            now_micros: _,
        } => {
            state.freelist.restore_server(*server, addr.clone(), blocks);
        }
        JournalOp::SplitCommitted {
            job,
            name,
            source,
            spec,
            new_loc,
        } => {
            for replica in &new_loc.chain {
                state.freelist.claim(replica.block)?;
            }
            state.block_owner.insert(new_loc.id(), (*job, name.clone()));
            let entry = job_mut(&mut state.jobs, *job)?;
            let node = entry.hierarchy.resolve_mut(name)?;
            let meta = node.ds.as_mut().ok_or_else(|| {
                JiffyError::Internal(format!("split record for ds-less prefix {name}"))
            })?;
            meta.commit_split(*source, spec, new_loc.clone())?;
            node.version += 1;
            state.counters.splits += 1;
        }
        JournalOp::MergeCommitted {
            job,
            name,
            source,
            spec,
            target,
            released,
        } => {
            let entry = job_mut(&mut state.jobs, *job)?;
            let node = entry.hierarchy.resolve_mut(name)?;
            let meta = node.ds.as_mut().ok_or_else(|| {
                JiffyError::Internal(format!("merge record for ds-less prefix {name}"))
            })?;
            meta.commit_merge(*source, spec, target.as_ref())?;
            node.version += 1;
            for block in released {
                state.block_owner.remove(block);
                let _ = state.freelist.release(*block);
            }
            state.counters.merges += 1;
        }
        JournalOp::ScaleEvent { up } => {
            if *up {
                state.counters.scale_ups += 1;
            } else {
                state.counters.scale_downs += 1;
            }
        }
        JournalOp::StateRewritten { mirror } => {
            let mirror: StateMirror = from_bytes(mirror)?;
            state.install_mirror(&mirror)?;
        }
        JournalOp::TenantConfigured {
            tenant,
            share,
            quota_bytes,
            ops_per_sec,
            bytes_per_sec,
        } => {
            let limit = TenantLimit {
                tenant: *tenant,
                share: (*share).max(1),
                quota_bytes: *quota_bytes,
                ops_per_sec: *ops_per_sec,
                bytes_per_sec: *bytes_per_sec,
            };
            // Upsert, keeping the vector sorted by tenant id so the
            // recovered snapshot matches the live directory's order.
            match state.tenants.binary_search_by_key(tenant, |l| l.tenant) {
                Ok(i) => state.tenants[i] = limit,
                Err(i) => state.tenants.insert(i, limit),
            }
        }
    }
    Ok(())
}

/// Extracts the zero-padded sequence suffix from an object path.
fn parse_seq(path: &str, prefix: &str) -> Option<u64> {
    path.strip_prefix(prefix)?.parse().ok()
}

/// Rebuilds controller metadata from the persistent tier: newest
/// snapshot first, then every journal record past it, in order, skipping
/// already-applied sequence numbers (replay is idempotent — applying the
/// same journal twice yields identical state).
pub(crate) fn recover_from(store: &dyn ObjectStore, meta_prefix: &str) -> Result<RecoveredState> {
    let mut state = RecoveredState::empty();
    let mut last_applied: Option<u64> = None;
    let snapshot_prefix = format!("{meta_prefix}{SNAPSHOT_DIR}");
    let journal_prefix = format!("{meta_prefix}{JOURNAL_DIR}");

    // Ignore objects whose names don't parse as sequence numbers (e.g.
    // temp files orphaned by a hard kill mid-rename).
    let mut snapshots: Vec<String> = store
        .list(&snapshot_prefix)
        .into_iter()
        .filter(|p| parse_seq(p, &snapshot_prefix).is_some())
        .collect();
    snapshots.sort();
    if let Some(path) = snapshots.last() {
        let snap: JournalSnapshot = from_bytes(&store.get(path)?)?;
        let mirror: StateMirror = from_bytes(&snap.mirror)?;
        state.install_mirror(&mirror)?;
        last_applied = Some(snap.last_seq);
    }

    let mut batches: Vec<String> = store
        .list(&journal_prefix)
        .into_iter()
        .filter(|p| parse_seq(p, &journal_prefix).is_some())
        .collect();
    batches.sort();
    for path in batches {
        let batch: JournalBatch = from_bytes(&store.get(&path)?)?;
        for record in batch.records {
            if last_applied.is_some_and(|l| record.seq <= l) {
                continue;
            }
            apply_op(&mut state, &record.op)?;
            last_applied = Some(record.seq);
        }
    }

    state.next_seq = last_applied.map_or(0, |l| l + 1);
    Ok(state)
}

/// The controller's write-ahead journal handle: sequence allocation,
/// batch appends, and snapshot/truncate bookkeeping. Lives inside
/// `CtrlState` so appends happen under the same lock as the mutations
/// they log.
pub(crate) struct Journal {
    store: Arc<dyn ObjectStore>,
    next_seq: u64,
    records_since_snapshot: u64,
    snapshot_every: u64,
    /// `{meta_prefix}journal/` — one object per appended batch.
    journal_prefix: String,
    /// `{meta_prefix}snapshot/` — one object per snapshot.
    snapshot_prefix: String,
}

impl Journal {
    /// A journal for a brand-new controller (shard): wipes any stale
    /// objects under `meta_prefix` left by a previous incarnation (a
    /// fresh controller means a fresh cluster — old block ids are
    /// meaningless). A sharded control plane passes
    /// `jiffy-meta/shard-{i}/`, so a fresh shard never touches its
    /// siblings' streams.
    pub(crate) fn fresh(
        store: Arc<dyn ObjectStore>,
        snapshot_every: u64,
        meta_prefix: &str,
    ) -> Self {
        for path in store.list(meta_prefix) {
            let _ = store.delete(&path);
        }
        Self {
            store,
            next_seq: 0,
            records_since_snapshot: 0,
            snapshot_every,
            journal_prefix: format!("{meta_prefix}{JOURNAL_DIR}"),
            snapshot_prefix: format!("{meta_prefix}{SNAPSHOT_DIR}"),
        }
    }

    /// A journal resuming after recovery, issuing `next_seq` onwards.
    pub(crate) fn resuming(
        store: Arc<dyn ObjectStore>,
        snapshot_every: u64,
        next_seq: u64,
        meta_prefix: &str,
    ) -> Self {
        Self {
            store,
            next_seq,
            records_since_snapshot: 0,
            snapshot_every,
            journal_prefix: format!("{meta_prefix}{JOURNAL_DIR}"),
            snapshot_prefix: format!("{meta_prefix}{SNAPSHOT_DIR}"),
        }
    }

    /// Appends one batch (one object) covering `ops`, assigning
    /// contiguous sequence numbers. On error the in-memory state may be
    /// ahead of the journal — that is safe, because the operation is
    /// never acknowledged and a crash discards the memory side anyway.
    pub(crate) fn append(&mut self, ops: Vec<JournalOp>) -> Result<()> {
        let first = self.next_seq;
        let records: Vec<JournalRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| JournalRecord {
                seq: first + i as u64,
                op,
            })
            .collect();
        let count = records.len() as u64;
        let batch = JournalBatch { records };
        self.store.put(
            &format!("{}{first:020}", self.journal_prefix),
            &to_bytes(&batch)?,
        )?;
        self.next_seq = first + count;
        self.records_since_snapshot += count;
        Ok(())
    }

    /// Whether enough records accumulated to warrant a snapshot.
    pub(crate) fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0
            && self.next_seq > 0
            && self.records_since_snapshot >= self.snapshot_every
    }

    /// Writes a snapshot covering everything journaled so far, then
    /// truncates: deletes journal batches fully covered by it and older
    /// snapshots. Truncation is best-effort — replay dedupes by sequence
    /// number, so a crash mid-truncate leaves only harmless stale
    /// objects.
    pub(crate) fn write_snapshot(&mut self, mirror: &StateMirror) -> Result<()> {
        if self.next_seq == 0 {
            return Ok(());
        }
        let last_seq = self.next_seq - 1;
        let snap = JournalSnapshot {
            last_seq,
            mirror: to_bytes(mirror)?,
        };
        self.store.put(
            &format!("{}{last_seq:020}", self.snapshot_prefix),
            &to_bytes(&snap)?,
        )?;
        for path in self.store.list(&self.journal_prefix) {
            if parse_seq(&path, &self.journal_prefix).is_some_and(|s| s <= last_seq) {
                let _ = self.store.delete(&path);
            }
        }
        for path in self.store.list(&self.snapshot_prefix) {
            if parse_seq(&path, &self.snapshot_prefix).is_some_and(|s| s < last_seq) {
                let _ = self.store.delete(&path);
            }
        }
        self.records_since_snapshot = 0;
        Ok(())
    }
}
