//! The Jiffy controller service (paper Fig. 7).

use jiffy_sync::Arc;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use jiffy_common::clock::SharedClock;
use jiffy_common::id::IdGen;
use jiffy_common::{BlockId, JiffyConfig, JiffyError, JobId, Result, ServerId, TenantId};
use jiffy_elastic::{
    AutoscalerPolicy, FailureDetector, ScaleDecision, ServerProvider, ServerState,
};
use jiffy_persistent::ObjectStore;
use jiffy_proto::{
    Blob, BlockLocation, ControlRequest, ControlResponse, ControllerStats, DagNodeSpec,
    DataRequest, DataResponse, DsType, Envelope, JournalOp, MergeSpec, PrefixView, Replica,
    SplitSpec, TenantLoad, TenantStatsEntry, INTERNAL_RID,
};
use jiffy_qos::{weighted_max_min, TenantDirectory};
use jiffy_rpc::{Fabric, Service, SessionHandle};
use jiffy_sync::atomic::{AtomicU64, Ordering};
use jiffy_sync::Mutex;
use serde::{Deserialize, Serialize};

use crate::freelist::FreeList;
use crate::hierarchy::AddressHierarchy;
use crate::journal::{self, Journal, StateMirror};
use crate::meta::{DsMeta, DsSkeleton};

/// Controller-side view of the data plane, so the same control logic
/// runs against real memory servers (RPC), or against nothing at all
/// (controller micro-benchmarks and the discrete-event simulator, which
/// model data movement separately).
pub trait DataPlane: Send + Sync {
    /// Initializes a block (all chain replicas) as a partition.
    ///
    /// # Errors
    ///
    /// Transport or partition-construction failures.
    fn init_block(&self, loc: &BlockLocation, ds: DsType, params: &[u8]) -> Result<()>;

    /// Resets a block (all chain replicas) to the free state.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn reset_block(&self, loc: &BlockLocation) -> Result<()>;

    /// Exports a block's full contents (tail replica) as
    /// `(payload, replay)`: the partition image plus the block's replay
    /// window, snapshotted under one lock. Migration re-imports both so
    /// a retry that lands at the new home after the move still replays
    /// its cached result; flush discards the replay half (persisted
    /// images predate any retry they could answer).
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn export_block(&self, loc: &BlockLocation) -> Result<(Vec<u8>, Vec<u8>)>;

    /// Imports a payload (and replay-window image, possibly empty) into
    /// a block (every chain replica absorbs).
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn import_payload(&self, loc: &BlockLocation, payload: &[u8], replay: &[u8]) -> Result<()>;

    /// Orders a source block to split per `spec`, shipping extracted data
    /// to `target` (paper Fig. 8 step 4).
    ///
    /// # Errors
    ///
    /// Transport or partition failures.
    fn split_block(
        &self,
        loc: &BlockLocation,
        spec: &SplitSpec,
        target: Option<&BlockLocation>,
    ) -> Result<()>;

    /// Orders a source block to merge all its contents into `target`.
    ///
    /// # Errors
    ///
    /// Transport or partition failures.
    fn merge_block(
        &self,
        loc: &BlockLocation,
        spec: &MergeSpec,
        target: Option<&BlockLocation>,
    ) -> Result<()>;

    /// Reports a block's `(used, capacity)` bytes — consulted when
    /// choosing a merge target with enough headroom.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn block_usage(&self, loc: &BlockLocation) -> Result<(u64, u64)>;

    /// Seals (or unseals) the blocks of a chain for live migration:
    /// sealed blocks reject mutations with `StaleMetadata` while reads
    /// keep serving, freezing the image the migration copies.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn seal_block(&self, loc: &BlockLocation, sealed: bool) -> Result<()>;

    /// Retires every replica of a migrated-away chain: each source block
    /// drops its data and keeps a redirect tombstone pointing at
    /// `moved_to` (the new home's head) until the block is reused.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn retire_block(&self, loc: &BlockLocation, moved_to: &Replica) -> Result<()>;
}

/// A no-op data plane: every operation succeeds and exports are empty.
/// Used by controller micro-benchmarks (Fig. 12) and unit tests where
/// only control-plane state matters.
#[derive(Debug, Default)]
pub struct NoopDataPlane;

impl DataPlane for NoopDataPlane {
    fn init_block(&self, _loc: &BlockLocation, _ds: DsType, _params: &[u8]) -> Result<()> {
        Ok(())
    }

    fn reset_block(&self, _loc: &BlockLocation) -> Result<()> {
        Ok(())
    }

    fn export_block(&self, _loc: &BlockLocation) -> Result<(Vec<u8>, Vec<u8>)> {
        Ok((Vec::new(), Vec::new()))
    }

    fn import_payload(&self, _loc: &BlockLocation, _payload: &[u8], _replay: &[u8]) -> Result<()> {
        Ok(())
    }

    fn split_block(
        &self,
        _loc: &BlockLocation,
        _spec: &SplitSpec,
        _target: Option<&BlockLocation>,
    ) -> Result<()> {
        Ok(())
    }

    fn merge_block(
        &self,
        _loc: &BlockLocation,
        _spec: &MergeSpec,
        _target: Option<&BlockLocation>,
    ) -> Result<()> {
        Ok(())
    }

    fn block_usage(&self, _loc: &BlockLocation) -> Result<(u64, u64)> {
        Ok((0, u64::MAX))
    }

    fn seal_block(&self, _loc: &BlockLocation, _sealed: bool) -> Result<()> {
        Ok(())
    }

    fn retire_block(&self, _loc: &BlockLocation, _moved_to: &Replica) -> Result<()> {
        Ok(())
    }
}

/// RPC-backed data plane talking to real memory servers over a
/// [`Fabric`].
pub struct RpcDataPlane {
    fabric: Fabric,
}

impl RpcDataPlane {
    /// Creates a data-plane handle over the given fabric.
    pub fn new(fabric: Fabric) -> Self {
        Self { fabric }
    }

    fn call(&self, addr: &str, req: DataRequest) -> Result<DataResponse> {
        let conn = self.fabric.connect(addr)?;
        match conn.call(Envelope::DataReq {
            id: INTERNAL_RID,
            req,
            tenant: TenantId::ANONYMOUS,
        })? {
            Envelope::DataResp { resp, .. } => resp,
            other => Err(JiffyError::Rpc(format!(
                "unexpected envelope from data plane: {other:?}"
            ))),
        }
    }
}

impl DataPlane for RpcDataPlane {
    fn init_block(&self, loc: &BlockLocation, ds: DsType, params: &[u8]) -> Result<()> {
        for replica in &loc.chain {
            self.call(
                &replica.addr,
                DataRequest::InitBlock {
                    block: replica.block,
                    ds: ds.to_string(),
                    params: params.into(),
                },
            )?;
        }
        Ok(())
    }

    fn reset_block(&self, loc: &BlockLocation) -> Result<()> {
        for replica in &loc.chain {
            self.call(
                &replica.addr,
                DataRequest::ResetBlock {
                    block: replica.block,
                },
            )?;
        }
        Ok(())
    }

    fn export_block(&self, loc: &BlockLocation) -> Result<(Vec<u8>, Vec<u8>)> {
        let tail = loc.tail();
        match self.call(&tail.addr, DataRequest::ExportBlock { block: tail.block })? {
            DataResponse::Exported { payload, replay } => {
                Ok((payload.into_inner(), replay.into_inner()))
            }
            other => Err(JiffyError::Rpc(format!(
                "unexpected export reply: {other:?}"
            ))),
        }
    }

    fn import_payload(&self, loc: &BlockLocation, payload: &[u8], replay: &[u8]) -> Result<()> {
        // Every replica absorbs: reads are served by the tail, and any
        // replica may later be promoted, so a head-only import would
        // lose the payload (or the replay window) on the first failover.
        for replica in &loc.chain {
            self.call(
                &replica.addr,
                DataRequest::ImportPayload {
                    block: replica.block,
                    payload: payload.into(),
                    replay: replay.into(),
                },
            )?;
        }
        Ok(())
    }

    fn split_block(
        &self,
        loc: &BlockLocation,
        spec: &SplitSpec,
        target: Option<&BlockLocation>,
    ) -> Result<()> {
        let head = loc.head();
        self.call(
            &head.addr,
            DataRequest::SplitBlock {
                block: head.block,
                spec: spec.clone(),
                target: target.cloned(),
            },
        )?;
        Ok(())
    }

    fn merge_block(
        &self,
        loc: &BlockLocation,
        spec: &MergeSpec,
        target: Option<&BlockLocation>,
    ) -> Result<()> {
        let head = loc.head();
        self.call(
            &head.addr,
            DataRequest::MergeBlock {
                block: head.block,
                spec: spec.clone(),
                target: target.cloned(),
            },
        )?;
        Ok(())
    }

    fn block_usage(&self, loc: &BlockLocation) -> Result<(u64, u64)> {
        let head = loc.head();
        match self.call(&head.addr, DataRequest::Usage { block: head.block })? {
            DataResponse::Usage { used, capacity } => Ok((used, capacity)),
            other => Err(JiffyError::Rpc(format!(
                "unexpected usage reply: {other:?}"
            ))),
        }
    }

    fn seal_block(&self, loc: &BlockLocation, sealed: bool) -> Result<()> {
        for replica in &loc.chain {
            self.call(
                &replica.addr,
                DataRequest::SealBlock {
                    block: replica.block,
                    sealed,
                },
            )?;
        }
        Ok(())
    }

    fn retire_block(&self, loc: &BlockLocation, moved_to: &Replica) -> Result<()> {
        for replica in &loc.chain {
            self.call(
                &replica.addr,
                DataRequest::RetireBlock {
                    block: replica.block,
                    moved_to: moved_to.clone(),
                },
            )?;
        }
        Ok(())
    }
}

/// A flushed prefix as stored in the persistent tier.
#[derive(Serialize, Deserialize)]
struct FlushRecord {
    ds: DsType,
    skeleton: DsSkeleton,
    payloads: Vec<Blob>,
}

#[derive(Debug)]
pub(crate) struct JobEntry {
    pub(crate) name: String,
    pub(crate) hierarchy: AddressHierarchy,
    /// Tenant that registered the job; every block the job allocates is
    /// accounted against this tenant's quota (DESIGN.md §14).
    pub(crate) tenant: TenantId,
}

/// Monotonic stats counters. Serializable so snapshots and
/// `StateRewritten` journal records carry them across a controller
/// restart (DESIGN.md §11).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Control requests dispatched.
    pub ops_served: u64,
    /// Lease expirations (flush + reclaim cycles).
    pub leases_expired: u64,
    /// Committed block splits.
    pub splits: u64,
    /// Committed block merges.
    pub merges: u64,
    /// Servers declared dead by the failure detector.
    pub servers_failed: u64,
    /// Chain replicas migrated off draining servers.
    pub blocks_migrated: u64,
    /// Autoscaler scale-up actions.
    pub scale_ups: u64,
    /// Autoscaler scale-down actions.
    pub scale_downs: u64,
}

/// What [`Controller::handle_underload`] hands back to the dispatch
/// arm: the surviving block to notify of the merge, the merge spec for
/// the data plane, the journal ops to append, and the drained source
/// block whose reset must wait until the append is durable.
type UnderloadOutcome = (
    Option<BlockLocation>,
    Option<MergeSpec>,
    Vec<JournalOp>,
    Option<BlockLocation>,
);

/// One row per registered job: `(job, job name, [(node, parents)])`.
/// What the shard router consumes to rebuild its root-component table.
pub(crate) type HierarchyEdges = Vec<(JobId, String, Vec<(String, Vec<String>)>)>;

pub(crate) struct CtrlState {
    pub(crate) jobs: HashMap<JobId, JobEntry>,
    pub(crate) freelist: FreeList,
    /// Reverse map: logical block → (job, node) for overload routing.
    pub(crate) block_owner: HashMap<BlockId, (JobId, String)>,
    pub(crate) counters: Counters,
    /// Heartbeat bookkeeping for the failure detector.
    pub(crate) detector: FailureDetector,
    /// Write-ahead metadata journal; appends happen under this same
    /// state lock, after the mutation and before the ack.
    pub(crate) journal: Journal,
    /// Per-tenant QoS configuration (shares, quotas, rate limits);
    /// journaled and mirrored into snapshots.
    pub(crate) tenants: TenantDirectory,
    /// Latest per-tenant data-plane load reported by each server's
    /// heartbeat. Soft state: rebuilt from heartbeats after recovery.
    pub(crate) server_loads: HashMap<ServerId, Vec<TenantLoad>>,
}

/// Autoscaler wiring: the policy plus the provider that actually
/// provisions/decommissions servers. Kept outside [`CtrlState`] because
/// provider calls must run WITHOUT the state lock held (an in-process
/// provider calls straight back into [`Controller::dispatch`]).
#[derive(Default)]
struct ElasticHooks {
    policy: Option<AutoscalerPolicy>,
    provider: Option<Arc<dyn ServerProvider>>,
}

/// A controller's place in a (possibly single-shard) sharded control
/// plane: which shard it is, how many shards exist, and the metadata
/// *view epoch* shared by every shard of one control plane.
///
/// The epoch is bumped whenever any shard commits an operation that can
/// move or retire blocks (splits, merges, failure rewrites, removals,
/// reclaiming flushes, loads, job teardown) and is stamped on every
/// control-plane response envelope; clients use it to invalidate their
/// lease-guarded metadata caches without extra RPCs (DESIGN.md §15).
#[derive(Clone)]
pub struct ShardIdentity {
    /// This shard's index in `[0, count)`.
    pub index: u32,
    /// Total shards in the control plane.
    pub count: u32,
    /// View epoch shared across all shards of one control plane.
    pub epoch: Arc<AtomicU64>,
}

impl ShardIdentity {
    /// The identity of an unsharded (single) controller.
    pub fn solo() -> Self {
        Self {
            index: 0,
            count: 1,
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Shard `index` of `count`, sharing `epoch` with its siblings.
    pub fn member(index: u32, count: u32, epoch: Arc<AtomicU64>) -> Self {
        Self {
            index,
            count: count.max(1),
            epoch,
        }
    }

    /// The persistent-tier prefix under which this shard keeps its
    /// journal and snapshots. A single-shard control plane uses the
    /// historical unsharded layout so existing deployments recover
    /// unchanged; shards use disjoint `jiffy-meta/shard-{i}/` subtrees.
    pub fn meta_prefix(&self) -> String {
        if self.count <= 1 {
            journal::META_PREFIX.to_string()
        } else {
            format!("{}shard-{}/", journal::META_PREFIX, self.index)
        }
    }
}

/// Whether a journaled operation can change block placement as seen by
/// clients (and must therefore bump the shared view epoch so cached
/// metadata is re-resolved).
fn invalidates_placement(op: &JournalOp) -> bool {
    matches!(
        op,
        JournalOp::SplitCommitted { .. }
            | JournalOp::MergeCommitted { .. }
            | JournalOp::StateRewritten { .. }
            | JournalOp::PrefixRemoved { .. }
            | JournalOp::PrefixFlushed {
                reclaimed: true,
                ..
            }
            | JournalOp::PrefixLoaded { .. }
            | JournalOp::JobDeregistered { .. }
    )
}

/// The unified control plane: block allocator + metadata manager + lease
/// manager in one service (paper §4.2).
pub struct Controller {
    cfg: JiffyConfig,
    clock: SharedClock,
    state: Mutex<CtrlState>,
    dataplane: Arc<dyn DataPlane>,
    persistent: Arc<dyn ObjectStore>,
    job_ids: IdGen,
    elastic: Mutex<ElasticHooks>,
    shard: ShardIdentity,
}

impl Controller {
    /// Creates a controller.
    ///
    /// # Errors
    ///
    /// Propagates [`JiffyConfig::validate`] failures.
    pub fn new(
        cfg: JiffyConfig,
        clock: SharedClock,
        dataplane: Arc<dyn DataPlane>,
        persistent: Arc<dyn ObjectStore>,
    ) -> Result<Arc<Self>> {
        Self::new_sharded(cfg, clock, dataplane, persistent, ShardIdentity::solo())
    }

    /// Creates one shard of a sharded control plane. With
    /// [`ShardIdentity::solo`] this is exactly [`Controller::new`].
    ///
    /// Each shard journals under its own persistent-tier prefix and
    /// mints server/block ids in its own residue class (`id ≡ index mod
    /// count`) so shards never collide and block/server ids route back
    /// to their owning shard by `raw % count`. Job ids are minted only
    /// by shard 0 and adopted by the rest (see
    /// [`ControlRequest::AdoptJob`]).
    ///
    /// # Errors
    ///
    /// Propagates [`JiffyConfig::validate`] failures.
    pub fn new_sharded(
        cfg: JiffyConfig,
        clock: SharedClock,
        dataplane: Arc<dyn DataPlane>,
        persistent: Arc<dyn ObjectStore>,
        shard: ShardIdentity,
    ) -> Result<Arc<Self>> {
        cfg.validate()?;
        // A brand-new controller is a brand-new cluster: wipe any stale
        // journal left by a previous incarnation of this shard.
        let journal = Journal::fresh(
            persistent.clone(),
            cfg.meta_snapshot_every,
            &shard.meta_prefix(),
        );
        let tenants = TenantDirectory::new(cfg.qos.clone());
        let freelist = FreeList::new();
        freelist.set_id_stride(u64::from(shard.index), u64::from(shard.count));
        Ok(Arc::new(Self {
            cfg,
            clock,
            state: Mutex::new(CtrlState {
                jobs: HashMap::new(),
                freelist,
                block_owner: HashMap::new(),
                counters: Counters::default(),
                detector: FailureDetector::new(),
                journal,
                tenants,
                server_loads: HashMap::new(),
            }),
            dataplane,
            persistent,
            job_ids: IdGen::new(),
            elastic: Mutex::new(ElasticHooks::default()),
            shard,
        }))
    }

    /// Rebuilds a controller from the metadata journal and snapshots a
    /// previous incarnation left in `persistent` (DESIGN.md §11).
    ///
    /// The journal is authoritative for metadata: jobs, hierarchies,
    /// leases, the freelist/membership table, shard routing and block
    /// placement all come from snapshot + replay. Liveness does not:
    /// every lease is re-armed to the recovery instant (a restart must
    /// never expire data it could not watch), and the failure detector
    /// is seeded at the recovery instant for every non-dead member, so
    /// heartbeats re-establish liveness organically.
    ///
    /// # Errors
    ///
    /// Propagates [`JiffyConfig::validate`] failures, object-store
    /// read failures, and journal decode/replay failures.
    pub fn recover(
        cfg: JiffyConfig,
        clock: SharedClock,
        dataplane: Arc<dyn DataPlane>,
        persistent: Arc<dyn ObjectStore>,
    ) -> Result<Arc<Self>> {
        Self::recover_sharded(cfg, clock, dataplane, persistent, ShardIdentity::solo())
    }

    /// Rebuilds one shard of a sharded control plane from its own
    /// journal prefix. With [`ShardIdentity::solo`] this is exactly
    /// [`Controller::recover`]. Bumps the shared view epoch once: any
    /// placement the restarted shard changed mid-crash is re-resolved
    /// by clients rather than trusted from stale caches.
    ///
    /// # Errors
    ///
    /// Propagates [`JiffyConfig::validate`] failures, object-store
    /// read failures, and journal decode/replay failures.
    pub fn recover_sharded(
        cfg: JiffyConfig,
        clock: SharedClock,
        dataplane: Arc<dyn DataPlane>,
        persistent: Arc<dyn ObjectStore>,
        shard: ShardIdentity,
    ) -> Result<Arc<Self>> {
        cfg.validate()?;
        let rec = journal::recover_from(persistent.as_ref(), &shard.meta_prefix())?;
        let now = clock.now();
        let mut jobs = rec.jobs;
        for entry in jobs.values_mut() {
            for name in entry.hierarchy.names() {
                if let Some(node) = entry.hierarchy.get_mut(&name) {
                    node.last_renewal = now;
                }
            }
        }
        let mut detector = FailureDetector::new();
        for load in rec.freelist.server_loads() {
            if load.state != ServerState::Dead {
                detector.record(load.server, now);
            }
        }
        let journal = Journal::resuming(
            persistent.clone(),
            cfg.meta_snapshot_every,
            rec.next_seq,
            &shard.meta_prefix(),
        );
        let mut tenants = TenantDirectory::new(cfg.qos.clone());
        tenants.install(rec.tenants);
        // Checkpointed id frontiers resume in this shard's residue class
        // (a frontier written by this shard is already in class; the
        // stride re-aligns defensively either way).
        rec.freelist
            .set_id_stride(u64::from(shard.index), u64::from(shard.count));
        // Clients may hold cache entries from before the crash; one bump
        // forces them back through resolve on their next access.
        shard.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(Arc::new(Self {
            cfg,
            clock,
            state: Mutex::new(CtrlState {
                jobs,
                freelist: rec.freelist,
                block_owner: rec.block_owner,
                counters: rec.counters,
                detector,
                journal,
                tenants,
                // Soft state: rebuilt from the next round of heartbeats.
                server_loads: HashMap::new(),
            }),
            dataplane,
            persistent,
            job_ids: IdGen::starting_at(rec.next_job_id),
            elastic: Mutex::new(ElasticHooks::default()),
            shard,
        }))
    }

    /// The metadata view epoch stamped on this controller's response
    /// envelopes (shared across all shards of one control plane).
    pub fn view_epoch(&self) -> u64 {
        self.shard.epoch.load(Ordering::SeqCst)
    }

    /// This controller's shard identity.
    pub fn shard_identity(&self) -> &ShardIdentity {
        &self.shard
    }

    /// Enumerates `(job, job name, [(node, parents)])` for every
    /// registered job. The shard router rebuilds its root-component
    /// table from this after constructing or restarting shards.
    pub(crate) fn hierarchy_edges(&self) -> HierarchyEdges {
        let st = self.state.lock();
        st.jobs
            .iter()
            .map(|(job, entry)| {
                let nodes = entry
                    .hierarchy
                    .names()
                    .into_iter()
                    .filter_map(|name| {
                        entry
                            .hierarchy
                            .get(&name)
                            .map(|node| (name.clone(), node.parents.clone()))
                    })
                    .collect();
                (*job, entry.name.clone(), nodes)
            })
            .collect()
    }

    /// The configuration this controller runs with.
    pub fn config(&self) -> &JiffyConfig {
        &self.cfg
    }

    /// Appends `ops` to the write-ahead journal as one atomic batch,
    /// then snapshots/truncates if the record budget is used up. Called
    /// under the state lock, after the in-memory mutation and before
    /// the ack; an empty batch is a no-op (the operation turned out not
    /// to mutate anything).
    fn journal_append(&self, st: &mut CtrlState, ops: Vec<JournalOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let bumps_epoch = ops.iter().any(invalidates_placement);
        st.journal.append(ops)?;
        if bumps_epoch {
            // Placement changed durably: advance the shared view epoch
            // so every shard's next response invalidates client caches.
            self.shard.epoch.fetch_add(1, Ordering::SeqCst);
        }
        if st.journal.snapshot_due() {
            let mirror = journal::mirror_of(st, self.job_ids.current());
            st.journal.write_snapshot(&mirror)?;
        }
        Ok(())
    }

    /// A `StateRewritten` journal record capturing the full current
    /// state; used by multi-step transitions (drains, failure handling)
    /// whose outcomes are impractical to log record-by-record.
    fn rewrite_op(&self, st: &CtrlState) -> Result<JournalOp> {
        let mirror = journal::mirror_of(st, self.job_ids.current());
        Ok(JournalOp::StateRewritten {
            mirror: jiffy_proto::to_bytes(&mirror)?,
        })
    }

    /// A deterministic serialization of the controller's entire
    /// metadata state (tests compare live vs. recovered controllers).
    pub fn state_mirror(&self) -> StateMirror {
        let st = self.state.lock();
        journal::mirror_of(&st, self.job_ids.current())
    }

    /// The current tenant limit table (what heartbeat acks piggyback to
    /// the memory servers).
    pub fn tenant_limits(&self) -> Vec<jiffy_proto::TenantLimit> {
        self.state.lock().tenants.snapshot()
    }

    /// Forces a snapshot + journal truncation right now, regardless of
    /// the `meta_snapshot_every` budget.
    ///
    /// # Errors
    ///
    /// Object-store write failures.
    pub fn snapshot_now(&self) -> Result<()> {
        let mut st = self.state.lock();
        let mirror = journal::mirror_of(&st, self.job_ids.current());
        // The snapshot write and journal truncation must be atomic
        // w.r.t. concurrent appends, which serialize on this lock.
        // xtask-allow(no-guard-across-rpc): snapshot+truncate is atomic with appends (DESIGN.md §11)
        st.journal.write_snapshot(&mirror)
    }

    /// Cross-table consistency checks, returning one human-readable
    /// string per violation (empty = consistent). Used by the
    /// crash-point sweep tests after every recovery.
    pub fn check_invariants(&self) -> Vec<String> {
        let st = self.state.lock();
        let mut out = Vec::new();
        let mut seen_heads: HashSet<BlockId> = HashSet::new();
        for (job, entry) in &st.jobs {
            for name in entry.hierarchy.names() {
                let Some(node) = entry.hierarchy.get(&name) else {
                    continue;
                };
                // Parent/child edges must be bidirectional.
                for parent in &node.parents {
                    match entry.hierarchy.get(parent) {
                        Some(p) if p.children.contains(&node.name) => {}
                        Some(_) => out.push(format!("{name}: parent {parent} lacks the back-edge")),
                        None => out.push(format!("{name}: dangling parent {parent}")),
                    }
                }
                let Some(meta) = &node.ds else { continue };
                for loc in meta.locations() {
                    seen_heads.insert(loc.id());
                    match st.block_owner.get(&loc.id()) {
                        Some((j, n)) if *j == *job && *n == name => {}
                        Some((j, n)) => out.push(format!(
                            "block {} of {name} owned by ({}, {n}) instead",
                            loc.id().raw(),
                            j.raw()
                        )),
                        None => out.push(format!(
                            "block {} of {name} missing from block_owner",
                            loc.id().raw()
                        )),
                    }
                    for replica in &loc.chain {
                        if st.freelist.is_free(replica.block) {
                            out.push(format!(
                                "replica block {} of {name} is on the freelist",
                                replica.block.raw()
                            ));
                        }
                    }
                }
            }
        }
        for block in st.block_owner.keys() {
            if !seen_heads.contains(block) {
                out.push(format!(
                    "block_owner entry {} points at no live prefix block",
                    block.raw()
                ));
            }
        }
        out
    }

    /// Handles one control request on behalf of the anonymous tenant
    /// (also reachable through the [`Service`] impl; exposed directly
    /// for in-process callers like the simulator).
    pub fn dispatch(&self, req: ControlRequest) -> Result<ControlResponse> {
        self.dispatch_as(req, TenantId::ANONYMOUS)
    }

    /// Handles one control request on behalf of `tenant`. Jobs
    /// registered through this entry point are accounted against the
    /// tenant's memory quota and weighted-fair share (DESIGN.md §14).
    pub fn dispatch_as(&self, req: ControlRequest, tenant: TenantId) -> Result<ControlResponse> {
        let mut deferred_resets: Vec<BlockLocation> = Vec::new();
        let resp = {
            let mut st = self.state.lock();
            st.counters.ops_served += 1;
            // Journal appends must run under the state lock so journal
            // order equals mutation order; flush/load object-store
            // copies ride the same serialization.
            // xtask-allow(no-guard-across-rpc): journal order equals mutation order (DESIGN.md §11)
            self.dispatch_locked(&mut st, req, tenant, &mut deferred_resets)
        };
        // Best-effort data-plane resets run after the guard drops: they
        // are transport calls, and a slow server must not stall every
        // other control op. The journal record is already durable, so a
        // crash here only leaves stale block contents, which
        // re-initialization clears on reallocation.
        for loc in &deferred_resets {
            let _ = self.dataplane.reset_block(loc);
        }
        resp
    }

    /// The lock-held half of [`Controller::dispatch`]. Destructive
    /// data-plane resets are *deferred* via `deferred_resets` so no
    /// transport call runs while the state guard is live.
    fn dispatch_locked(
        &self,
        st: &mut CtrlState,
        req: ControlRequest,
        tenant: TenantId,
        deferred_resets: &mut Vec<BlockLocation>,
    ) -> Result<ControlResponse> {
        match req {
            ControlRequest::RegisterJob { name } => {
                let job: JobId = self.job_ids.next_id();
                st.jobs.insert(
                    job,
                    JobEntry {
                        name: name.clone(),
                        hierarchy: AddressHierarchy::new(),
                        tenant,
                    },
                );
                self.journal_append(st, vec![JournalOp::JobRegistered { job, name, tenant }])?;
                Ok(ControlResponse::JobRegistered { job })
            }
            ControlRequest::DeregisterJob { job } => {
                let entry = st
                    .jobs
                    .remove(&job)
                    .ok_or(JiffyError::UnknownJob(job.raw()))?;
                let mut locs = Vec::new();
                for name in entry.hierarchy.names() {
                    if let Some(node) = entry.hierarchy.get(&name) {
                        if let Some(meta) = &node.ds {
                            for loc in meta.locations() {
                                for replica in &loc.chain {
                                    st.block_owner.remove(&replica.block);
                                    let _ = st.freelist.release(replica.block);
                                }
                                locs.push(loc);
                            }
                        }
                    }
                }
                // Journal before the destructive data-plane resets
                // (which the caller performs after unlocking).
                self.journal_append(st, vec![JournalOp::JobDeregistered { job }])?;
                deferred_resets.extend(locs);
                Ok(ControlResponse::Ack)
            }
            ControlRequest::CreatePrefix {
                job,
                name,
                parents,
                ds,
                initial_blocks,
            } => {
                let ops = self.create_prefix(st, job, &name, &parents, ds, initial_blocks)?;
                self.journal_append(st, ops)?;
                Ok(ControlResponse::PrefixCreated { name })
            }
            ControlRequest::AddParent { job, name, parent } => {
                let entry = st
                    .jobs
                    .get_mut(&job)
                    .ok_or(JiffyError::UnknownJob(job.raw()))?;
                entry.hierarchy.add_parent(&name, &parent)?;
                self.journal_append(st, vec![JournalOp::ParentAdded { job, name, parent }])?;
                Ok(ControlResponse::Ack)
            }
            ControlRequest::CreateHierarchy { job, nodes } => {
                let mut ops = Vec::new();
                for spec in &nodes {
                    let DagNodeSpec {
                        name,
                        parents,
                        ds,
                        initial_blocks,
                    } = spec;
                    ops.extend(self.create_prefix(st, job, name, parents, *ds, *initial_blocks)?);
                }
                self.journal_append(st, ops)?;
                Ok(ControlResponse::Ack)
            }
            ControlRequest::RemovePrefix { job, name } => {
                let locs = self.reclaim_prefix(st, job, &name, false, None)?;
                let entry = st
                    .jobs
                    .get_mut(&job)
                    .ok_or(JiffyError::UnknownJob(job.raw()))?;
                entry.hierarchy.remove_node(&name)?;
                self.journal_append(st, vec![JournalOp::PrefixRemoved { job, name }])?;
                deferred_resets.extend(locs);
                Ok(ControlResponse::Ack)
            }
            ControlRequest::ResolvePrefix { job, name } => {
                let entry = st.jobs.get(&job).ok_or(JiffyError::UnknownJob(job.raw()))?;
                let node = entry.hierarchy.resolve(&name)?;
                Ok(ControlResponse::Resolved(PrefixView {
                    name: node.name.clone(),
                    ds: node.ds.as_ref().map(DsMeta::ds_type),
                    partition: node.ds.as_ref().map(DsMeta::view),
                    lease_duration_micros: self.cfg.lease_duration.as_micros() as u64,
                    parents: node.parents.clone(),
                    children: node.children.clone(),
                    version: node.version,
                }))
            }
            ControlRequest::RenewLease { job, name } => {
                let now = self.clock.now();
                let entry = st
                    .jobs
                    .get_mut(&job)
                    .ok_or(JiffyError::UnknownJob(job.raw()))?;
                let renewed = entry.hierarchy.renew(&name, now)?;
                self.journal_append(
                    st,
                    vec![JournalOp::LeaseRenewed {
                        job,
                        name,
                        now_micros: u64::try_from(now.as_micros()).unwrap_or(u64::MAX),
                    }],
                )?;
                Ok(ControlResponse::LeaseRenewed {
                    renewed,
                    lease_duration_micros: self.cfg.lease_duration.as_micros() as u64,
                })
            }
            ControlRequest::GetLeaseDuration { job, name } => {
                let entry = st.jobs.get(&job).ok_or(JiffyError::UnknownJob(job.raw()))?;
                entry.hierarchy.resolve(&name)?;
                Ok(ControlResponse::LeaseDuration {
                    micros: self.cfg.lease_duration.as_micros() as u64,
                })
            }
            ControlRequest::FlushPrefix {
                job,
                name,
                external_path,
            } => {
                let (bytes, ops) =
                    self.flush_prefix(st, job, &name, &external_path, false, false)?;
                self.journal_append(st, ops)?;
                Ok(ControlResponse::Persisted { bytes })
            }
            ControlRequest::LoadPrefix {
                job,
                name,
                external_path,
            } => {
                let (bytes, ops) = self.load_prefix(st, job, &name, &external_path)?;
                self.journal_append(st, ops)?;
                Ok(ControlResponse::Persisted { bytes })
            }
            ControlRequest::JoinServer {
                addr,
                capacity_blocks,
            } => {
                let now = self.clock.now();
                let (server, blocks) = st.freelist.register_server(addr.clone(), capacity_blocks);
                st.detector.record(server, now);
                self.journal_append(
                    st,
                    vec![JournalOp::ServerJoined {
                        server,
                        addr,
                        blocks: blocks.clone(),
                        now_micros: u64::try_from(now.as_micros()).unwrap_or(u64::MAX),
                    }],
                )?;
                Ok(ControlResponse::ServerJoined { server, blocks })
            }
            ControlRequest::LeaveServer { server } => {
                let blocks_migrated = self.drain_server_locked(st, server)?;
                st.freelist.deregister_server(server)?;
                st.detector.forget(server);
                // Drained state is a multi-step outcome; checkpoint it
                // wholesale rather than record-by-record.
                let op = self.rewrite_op(st)?;
                self.journal_append(st, vec![op])?;
                Ok(ControlResponse::Drained {
                    server,
                    blocks_migrated,
                })
            }
            ControlRequest::Heartbeat {
                server,
                tenant_loads,
                ..
            } => {
                // Only live members may heartbeat; a departed or dead
                // server gets UnknownServer and must re-join.
                match st.freelist.state_of(server)? {
                    ServerState::Alive | ServerState::Draining => {
                        st.detector.record(server, self.clock.now());
                        // Piggyback the QoS control loop on the existing
                        // heartbeat: absorb the server's per-tenant load
                        // report (soft state) and push back the current
                        // limits so rate changes propagate within one
                        // heartbeat interval.
                        st.server_loads.insert(server, tenant_loads);
                        Ok(ControlResponse::HeartbeatAck {
                            limits: st.tenants.snapshot(),
                        })
                    }
                    ServerState::Dead => Err(JiffyError::UnknownServer(server.raw())),
                }
            }
            ControlRequest::ListServers => Ok(ControlResponse::Servers(st.freelist.server_infos())),
            ControlRequest::ReportOverload { block, .. } => {
                let (target, spec, ops) = self.handle_overload(st, block)?;
                self.journal_append(st, ops)?;
                Ok(ControlResponse::SplitTarget { target, spec })
            }
            ControlRequest::ReportUnderload { block, .. } => {
                let (target, spec, ops, reclaim) = self.handle_underload(st, block)?;
                // Journal the merge before the data-plane reset of the
                // source (deferred to after unlock): once the record is
                // durable, replay routes the merged keyspace to the
                // target, so clearing the source's stale copy can never
                // orphan acked data.
                self.journal_append(st, ops)?;
                deferred_resets.extend(reclaim);
                Ok(ControlResponse::MergeTarget { target, spec })
            }
            ControlRequest::CommitRepartition { .. } => {
                // Repartitions are controller-orchestrated and commit
                // inline; this message is accepted for compatibility.
                Ok(ControlResponse::Ack)
            }
            ControlRequest::GetStats => Ok(ControlResponse::Stats(self.stats_locked(st))),
            ControlRequest::ListPrefixes { job } => {
                let entry = st.jobs.get(&job).ok_or(JiffyError::UnknownJob(job.raw()))?;
                Ok(ControlResponse::Prefixes(entry.hierarchy.names()))
            }
            ControlRequest::TenantStats => Ok(ControlResponse::TenantStatsReport(
                self.tenant_stats_locked(st),
            )),
            ControlRequest::SetTenantShare {
                tenant: target,
                share,
                quota_bytes,
                ops_per_sec,
                bytes_per_sec,
            } => {
                st.tenants
                    .set(target, share, quota_bytes, ops_per_sec, bytes_per_sec);
                self.journal_append(
                    st,
                    vec![JournalOp::TenantConfigured {
                        tenant: target,
                        share: share.max(1),
                        quota_bytes,
                        ops_per_sec,
                        bytes_per_sec,
                    }],
                )?;
                Ok(ControlResponse::Ack)
            }
            ControlRequest::AdoptJob { job, name } => {
                // A sibling shard (shard 0) minted this job id; record
                // it here so path operations routed to this shard
                // resolve the job. Idempotent: re-adoption of a job we
                // already know is an ack without a journal record.
                match st.jobs.get(&job) {
                    Some(existing) if existing.name == name => {}
                    Some(existing) => {
                        return Err(JiffyError::Internal(format!(
                            "adopt {job}: registered as {:?}, not {name:?}",
                            existing.name
                        )));
                    }
                    None => {
                        st.jobs.insert(
                            job,
                            JobEntry {
                                name: name.clone(),
                                hierarchy: AddressHierarchy::new(),
                                tenant,
                            },
                        );
                        // Never mint below an adopted id, even on the
                        // (job-minting) shard 0 after a replayed adopt.
                        self.job_ids.bump_to(job.raw() + 1);
                        self.journal_append(
                            st,
                            vec![JournalOp::JobRegistered { job, name, tenant }],
                        )?;
                    }
                }
                Ok(ControlResponse::Ack)
            }
        }
    }

    /// Blocks currently allocated to `tenant`, counting every replica in
    /// every chain of every prefix of the tenant's jobs.
    fn tenant_usage_blocks(st: &CtrlState, tenant: TenantId) -> u64 {
        let mut blocks = 0u64;
        for entry in st.jobs.values() {
            if entry.tenant != tenant {
                continue;
            }
            for name in entry.hierarchy.names() {
                let Some(node) = entry.hierarchy.get(&name) else {
                    continue;
                };
                let Some(meta) = &node.ds else { continue };
                for loc in meta.locations() {
                    blocks += loc.chain.len() as u64;
                }
            }
        }
        blocks
    }

    /// Admission check for allocating `new_blocks` more blocks on behalf
    /// of `tenant` (DESIGN.md §14). Two gates, both skipped when QoS is
    /// disabled or the caller is anonymous:
    ///
    /// 1. **Hard quota** — current usage plus the request must fit in
    ///    the tenant's `quota_bytes` (fatal [`JiffyError::QuotaExceeded`]).
    /// 2. **Weighted-fair arbitration under pressure** — once the free
    ///    pool drops below `pressure_free_fraction` of capacity, block
    ///    grants follow a weighted max-min division of total capacity by
    ///    tenant share; a tenant already at or beyond its fair share is
    ///    deferred with a retryable [`JiffyError::Throttled`] instead of
    ///    draining the pool first-come-first-served.
    fn check_allocation(&self, st: &CtrlState, tenant: TenantId, new_blocks: u64) -> Result<()> {
        if !self.cfg.qos.enabled || tenant.is_anonymous() || new_blocks == 0 {
            return Ok(());
        }
        let usage = Self::tenant_usage_blocks(st, tenant);
        let limit = st.tenants.effective(tenant);
        if limit.quota_bytes > 0 {
            let want_bytes = (usage + new_blocks).saturating_mul(self.cfg.block_size as u64);
            if want_bytes > limit.quota_bytes {
                return Err(JiffyError::QuotaExceeded {
                    tenant: tenant.raw(),
                    quota_bytes: limit.quota_bytes,
                    requested_bytes: want_bytes,
                });
            }
        }
        let total = st.freelist.total_count() as u64;
        let free = st.freelist.free_count() as u64;
        if total == 0 {
            return Ok(());
        }
        let free_fraction = free as f64 / total as f64;
        if free_fraction >= self.cfg.qos.pressure_free_fraction {
            return Ok(());
        }
        // Pressure: divide the whole capacity (minus the anonymous
        // tenant's untracked usage) across the active tenants by share,
        // and hold this tenant to its fair slice.
        let mut demands: BTreeMap<TenantId, (u32, u64)> = BTreeMap::new();
        let anonymous_usage = Self::tenant_usage_blocks(st, TenantId::ANONYMOUS);
        for entry in st.jobs.values() {
            if entry.tenant.is_anonymous() || demands.contains_key(&entry.tenant) {
                continue;
            }
            let share = st.tenants.effective(entry.tenant).share;
            demands.insert(
                entry.tenant,
                (share, Self::tenant_usage_blocks(st, entry.tenant)),
            );
        }
        let slot = demands.entry(tenant).or_insert((limit.share, usage));
        slot.1 = usage + new_blocks;
        let capacity = total.saturating_sub(anonymous_usage);
        let flat: Vec<(u32, u64)> = demands.values().copied().collect();
        let grants = weighted_max_min(capacity, &flat);
        #[allow(clippy::expect_used)] // invariant documented in the message
        let idx = demands
            .keys()
            .position(|t| *t == tenant)
            .expect("invariant: requesting tenant inserted into demands above");
        if grants[idx] < usage + new_blocks {
            // Over fair share while the pool is under pressure: defer.
            // Retryable — blocks free up as peers deallocate or the
            // cluster scales out.
            return Err(JiffyError::Throttled { retry_after_ms: 50 });
        }
        Ok(())
    }

    /// One [`TenantStatsEntry`] per tenant known to the control plane:
    /// explicitly configured tenants, tenants owning jobs, and tenants
    /// appearing in server load reports.
    fn tenant_stats_locked(&self, st: &CtrlState) -> Vec<TenantStatsEntry> {
        let mut ids: BTreeSet<TenantId> = BTreeSet::new();
        ids.extend(st.tenants.configured().map(|l| l.tenant));
        ids.extend(
            st.jobs
                .values()
                .map(|e| e.tenant)
                .filter(|t| !t.is_anonymous()),
        );
        for loads in st.server_loads.values() {
            ids.extend(loads.iter().map(|l| l.tenant));
        }
        ids.into_iter()
            .map(|tenant| {
                let limit = st.tenants.effective(tenant);
                let blocks = Self::tenant_usage_blocks(st, tenant);
                let mut entry = TenantStatsEntry {
                    tenant,
                    share: limit.share,
                    quota_bytes: limit.quota_bytes,
                    allocated_blocks: blocks,
                    allocated_bytes: blocks.saturating_mul(self.cfg.block_size as u64),
                    ops_admitted: 0,
                    ops_throttled: 0,
                    bytes_in: 0,
                    bytes_out: 0,
                    op_rate_ewma: 0.0,
                };
                for loads in st.server_loads.values() {
                    for load in loads.iter().filter(|l| l.tenant == tenant) {
                        entry.ops_admitted += load.ops_admitted;
                        entry.ops_throttled += load.ops_throttled;
                        entry.bytes_in += load.bytes_in;
                        entry.bytes_out += load.bytes_out;
                        entry.op_rate_ewma += load.op_rate_ewma;
                    }
                }
                entry
            })
            .collect()
    }

    fn create_prefix(
        &self,
        st: &mut CtrlState,
        job: JobId,
        name: &str,
        parents: &[String],
        ds: Option<DsType>,
        initial_blocks: u32,
    ) -> Result<Vec<JournalOp>> {
        let now = self.clock.now();
        let owner = st
            .jobs
            .get(&job)
            .map(|e| e.tenant)
            .ok_or(JiffyError::UnknownJob(job.raw()))?;
        // Quota/fair-share gate runs before any mutation so a denied
        // request leaves no half-created node to roll back.
        if ds.is_some() {
            let chains = u64::from(initial_blocks.max(1));
            self.check_allocation(st, owner, chains * self.cfg.chain_length as u64)?;
        }
        let entry = st
            .jobs
            .get_mut(&job)
            .ok_or(JiffyError::UnknownJob(job.raw()))?;
        entry.hierarchy.add_node(name, parents, now)?;
        if let Some(ds) = ds {
            let total = initial_blocks.max(1);
            let mut meta = DsMeta::new(ds, self.cfg.block_size, self.cfg.kv_hash_slots);
            let mut locs = Vec::with_capacity(total as usize);
            for i in 0..total {
                let params = meta.initial_params(i, total)?;
                let loc = match st.freelist.allocate_chain(self.cfg.chain_length) {
                    Ok(l) => l,
                    Err(e) => {
                        // Roll back: free what we grabbed and drop the node.
                        for loc in &locs {
                            let l: &BlockLocation = loc;
                            for r in &l.chain {
                                let _ = st.freelist.release(r.block);
                            }
                        }
                        let _ = entry.hierarchy.remove_node(name);
                        return Err(e);
                    }
                };
                self.dataplane.init_block(&loc, ds, &params)?;
                st.block_owner.insert(loc.id(), (job, name.to_string()));
                locs.push(loc);
            }
            let recorded_locs = locs.clone();
            meta.install_initial(locs);
            let skeleton = jiffy_proto::to_bytes(&meta.skeleton())?;
            #[allow(clippy::expect_used)] // invariant documented in the message
            let entry = st
                .jobs
                .get_mut(&job)
                .expect("invariant: job presence verified above under the same state lock");
            #[allow(clippy::expect_used)] // invariant documented in the message
            let node = entry
                .hierarchy
                .get_mut(name)
                .expect("invariant: node inserted above under the same state lock");
            node.ds = Some(meta);
            return Ok(vec![JournalOp::PrefixCreated {
                job,
                name: name.to_string(),
                parents: parents.to_vec(),
                locs: recorded_locs,
                skeleton: Some(skeleton),
                now_micros: u64::try_from(now.as_micros()).unwrap_or(u64::MAX),
            }]);
        }
        Ok(vec![JournalOp::PrefixCreated {
            job,
            name: name.to_string(),
            parents: parents.to_vec(),
            locs: Vec::new(),
            skeleton: None,
            now_micros: u64::try_from(now.as_micros()).unwrap_or(u64::MAX),
        }])
    }

    /// Flushes a prefix's blocks to the persistent tier, returning bytes
    /// written plus the journal ops for the caller to append. With
    /// `reclaim` (lease-expiry path), also frees the blocks — in that
    /// case the journal record is appended *here*, after the flush
    /// object is durable and before the data-plane resets, so a crash
    /// anywhere in between never loses the only copy; the returned op
    /// list is then empty.
    fn flush_prefix(
        &self,
        st: &mut CtrlState,
        job: JobId,
        name: &str,
        external_path: &str,
        reclaim: bool,
        expired: bool,
    ) -> Result<(u64, Vec<JournalOp>)> {
        let entry = st
            .jobs
            .get_mut(&job)
            .ok_or(JiffyError::UnknownJob(job.raw()))?;
        let node = entry.hierarchy.resolve_mut(name)?;
        let Some(meta) = &node.ds else {
            return Ok((0, Vec::new()));
        };
        let ds = meta.ds_type();
        let skeleton = meta.skeleton();
        let locations = meta.locations();
        let mut payloads = Vec::with_capacity(locations.len());
        let mut bytes = 0u64;
        for loc in &locations {
            // Flush persists the partition image only: the replay
            // window guards in-flight retries, which cannot outlive the
            // data structure's eviction to external storage.
            let (payload, _replay) = self.dataplane.export_block(loc)?;
            bytes += payload.len() as u64;
            payloads.push(Blob::new(payload));
        }
        let record = FlushRecord {
            ds,
            skeleton,
            payloads,
        };
        self.persistent
            .put(external_path, &jiffy_proto::to_bytes(&record)?)?;
        #[allow(clippy::expect_used)] // invariant documented in the message
        let node = st
            .jobs
            .get_mut(&job)
            .expect("invariant: job resolved above under the same state lock")
            .hierarchy
            .resolve_mut(name)
            .expect("invariant: prefix resolved above under the same state lock");
        node.flushed_to = Some(external_path.to_string());
        let op = JournalOp::PrefixFlushed {
            job,
            name: name.to_string(),
            path: external_path.to_string(),
            reclaimed: reclaim,
            expired,
        };
        if !reclaim {
            return Ok((bytes, vec![op]));
        }
        node.ds = None;
        node.version += 1;
        for loc in &locations {
            for r in &loc.chain {
                st.block_owner.remove(&r.block);
                let _ = st.freelist.release(r.block);
            }
        }
        if expired {
            st.counters.leases_expired += 1;
        }
        // The flush object is durable and the metadata reflects the
        // reclaim; journal now, then clear the blocks. A crash before
        // the append replays to the pre-reclaim state, whose blocks
        // still hold the data; a crash after it only leaves stale block
        // contents for re-initialization to clear.
        self.journal_append(st, vec![op])?;
        for loc in &locations {
            let _ = self.dataplane.reset_block(loc);
        }
        Ok((bytes, Vec::new()))
    }

    /// Loads a previously flushed prefix back into fresh blocks,
    /// returning bytes read plus the journal ops for the caller to
    /// append.
    fn load_prefix(
        &self,
        st: &mut CtrlState,
        job: JobId,
        name: &str,
        external_path: &str,
    ) -> Result<(u64, Vec<JournalOp>)> {
        let record_bytes = self.persistent.get(external_path)?;
        let record: FlushRecord = jiffy_proto::from_bytes(&record_bytes)?;
        {
            let entry = st
                .jobs
                .get_mut(&job)
                .ok_or(JiffyError::UnknownJob(job.raw()))?;
            let node = entry.hierarchy.resolve_mut(name)?;
            if node.ds.is_some() {
                return Err(JiffyError::Internal(format!(
                    "prefix {name} already has a live data structure; cannot load over it"
                )));
            }
        }
        let n = record.payloads.len();
        let owner = st.jobs.get(&job).map(|e| e.tenant).unwrap_or_default();
        self.check_allocation(st, owner, (n as u64) * self.cfg.chain_length as u64)?;
        let mut locs = Vec::with_capacity(n);
        for _ in 0..n {
            locs.push(st.freelist.allocate_chain(self.cfg.chain_length)?);
        }
        let meta = DsMeta::from_skeleton(&record.skeleton, locs.clone())?;
        let mut bytes = 0u64;
        for (loc, payload) in locs.iter().zip(&record.payloads) {
            // Initialize empty, then absorb the flushed contents.
            let params = match &record.skeleton {
                DsSkeleton::Kv { num_slots, .. } => jiffy_proto::to_bytes(&InitKvMirror {
                    ranges: vec![],
                    num_slots: *num_slots,
                })?,
                _ => Vec::new(),
            };
            self.dataplane.init_block(loc, record.ds, &params)?;
            self.dataplane.import_payload(loc, payload, &[])?;
            bytes += payload.len() as u64;
            st.block_owner.insert(loc.id(), (job, name.to_string()));
        }
        #[allow(clippy::expect_used)] // invariant documented in the message
        let entry = st
            .jobs
            .get_mut(&job)
            .expect("invariant: job resolved above under the same state lock");
        #[allow(clippy::expect_used)] // invariant documented in the message
        let node = entry
            .hierarchy
            .resolve_mut(name)
            .expect("invariant: prefix resolved above under the same state lock");
        node.ds = Some(meta);
        node.version += 1;
        node.flushed_to = Some(external_path.to_string());
        // The record captures the skeleton as loaded: the flush object
        // may be overwritten later, so replay must not re-read it.
        let op = JournalOp::PrefixLoaded {
            job,
            name: name.to_string(),
            path: external_path.to_string(),
            locs,
            skeleton: jiffy_proto::to_bytes(&record.skeleton)?,
        };
        Ok((bytes, vec![op]))
    }

    /// Reclaims a prefix's blocks (optionally flushing first). Used by
    /// `RemovePrefix` and lease expiry. Returns the reclaimed locations
    /// whose data-plane resets the caller must issue *after* journaling
    /// the removal (the flush-first path journals internally and
    /// returns an empty list).
    fn reclaim_prefix(
        &self,
        st: &mut CtrlState,
        job: JobId,
        name: &str,
        flush_first: bool,
        flush_path: Option<String>,
    ) -> Result<Vec<BlockLocation>> {
        if flush_first {
            let path =
                flush_path.unwrap_or_else(|| format!("jiffy-expired/{}/{}", job.raw(), name));
            self.flush_prefix(st, job, name, &path, true, true)?;
            return Ok(Vec::new());
        }
        let entry = st
            .jobs
            .get_mut(&job)
            .ok_or(JiffyError::UnknownJob(job.raw()))?;
        let Ok(node) = entry.hierarchy.resolve_mut(name) else {
            return Ok(Vec::new());
        };
        let locations = node.ds.as_ref().map(DsMeta::locations).unwrap_or_default();
        node.ds = None;
        node.version += 1;
        for loc in &locations {
            for r in &loc.chain {
                st.block_owner.remove(&r.block);
                let _ = st.freelist.release(r.block);
            }
        }
        Ok(locations)
    }

    /// Handles an overload signal: allocate, initialize, order the split,
    /// commit the new layout (paper Fig. 8). Also returns the journal
    /// ops for the caller to append.
    fn handle_overload(
        &self,
        st: &mut CtrlState,
        block: BlockId,
    ) -> Result<(Option<BlockLocation>, Option<SplitSpec>, Vec<JournalOp>)> {
        let Some((job, name)) = st.block_owner.get(&block).cloned() else {
            return Err(JiffyError::UnknownBlock(block.raw()));
        };
        let entry = st.jobs.get(&job).ok_or(JiffyError::UnknownJob(job.raw()))?;
        let node = entry.hierarchy.resolve(&name)?;
        let Some(meta) = &node.ds else {
            return Err(JiffyError::UnknownBlock(block.raw()));
        };
        let plan = match meta.plan_split(block) {
            Ok(p) => p,
            // Unsplittable (single hot slot / stale signal): no target.
            Err(_) => return Ok((None, None, Vec::new())),
        };
        let ds = meta.ds_type();
        // A split grows the owning tenant's footprint by one chain; a
        // quota- or share-bound tenant keeps serving from the hot block
        // instead of splitting (same graceful no-split as OutOfBlocks).
        let owner = entry.tenant;
        if self
            .check_allocation(st, owner, self.cfg.chain_length as u64)
            .is_err()
        {
            return Ok((None, None, Vec::new()));
        }
        let source_loc = st.freelist.location_of(block)?;
        let new_loc = match st.freelist.allocate_chain(self.cfg.chain_length) {
            Ok(l) => l,
            // Capacity exhausted: the block keeps serving; writes beyond
            // its capacity will fail and spill at the tier above.
            Err(JiffyError::OutOfBlocks) => return Ok((None, None, Vec::new())),
            Err(e) => return Err(e),
        };
        self.dataplane
            .init_block(&new_loc, ds, &plan.target_params)?;
        self.dataplane
            .split_block(&source_loc, &plan.spec, plan.moves_data.then_some(&new_loc))?;
        // Commit the layout.
        #[allow(clippy::expect_used)] // invariant documented in the message
        let entry = st
            .jobs
            .get_mut(&job)
            .expect("invariant: job resolved above under the same state lock");
        #[allow(clippy::expect_used)] // invariant documented in the message
        let node = entry
            .hierarchy
            .resolve_mut(&name)
            .expect("invariant: prefix resolved above under the same state lock");
        #[allow(clippy::expect_used)] // invariant documented in the message
        let meta = node
            .ds
            .as_mut()
            .expect("invariant: ds presence verified when planning the split");
        meta.commit_split(block, &plan.spec, new_loc.clone())?;
        node.version += 1;
        st.block_owner.insert(new_loc.id(), (job, name.clone()));
        st.counters.splits += 1;
        let op = JournalOp::SplitCommitted {
            job,
            name,
            source: block,
            spec: plan.spec.clone(),
            new_loc: new_loc.clone(),
        };
        Ok((Some(new_loc), Some(plan.spec), vec![op]))
    }

    /// Handles an underload signal: order the merge, commit, reclaim the
    /// drained block's metadata. Also returns the journal ops for the
    /// caller to append, plus the source location whose *data-plane*
    /// reset the caller must defer until after the append (resetting
    /// before the merge record is durable could orphan acked data).
    fn handle_underload(&self, st: &mut CtrlState, block: BlockId) -> Result<UnderloadOutcome> {
        let Some((job, name)) = st.block_owner.get(&block).cloned() else {
            return Err(JiffyError::UnknownBlock(block.raw()));
        };
        let entry = st.jobs.get(&job).ok_or(JiffyError::UnknownJob(job.raw()))?;
        let node = entry.hierarchy.resolve(&name)?;
        let Some(meta) = &node.ds else {
            return Err(JiffyError::UnknownBlock(block.raw()));
        };
        let Some(plan) = meta.plan_merge(block)? else {
            return Ok((None, None, Vec::new(), None));
        };
        let source_loc = st.freelist.location_of(block)?;
        // Pick the first candidate with room for the source's contents
        // without immediately re-crossing the high threshold.
        let target = if plan.candidates.is_empty() {
            None
        } else {
            let (src_used, _) = self.dataplane.block_usage(&source_loc)?;
            let mut chosen = None;
            for cand in &plan.candidates {
                let (used, capacity) = self.dataplane.block_usage(cand)?;
                let limit = (capacity as f64 * self.cfg.high_threshold) as u64;
                if used.saturating_add(src_used) < limit {
                    chosen = Some(cand.clone());
                    break;
                }
            }
            match chosen {
                Some(c) => Some(c),
                // No sibling has headroom: skip the merge.
                None => return Ok((None, None, Vec::new(), None)),
            }
        };
        // The merge can fail benignly (e.g. queue head not yet drained,
        // or the target filled concurrently): abort without touching
        // metadata — the server rolls the source back losslessly.
        if let Err(e) = self
            .dataplane
            .merge_block(&source_loc, &plan.spec, target.as_ref())
        {
            return match e {
                JiffyError::Internal(_) | JiffyError::BlockFull { .. } => {
                    Ok((None, None, Vec::new(), None))
                }
                other => Err(other),
            };
        }
        #[allow(clippy::expect_used)] // invariant documented in the message
        let entry = st
            .jobs
            .get_mut(&job)
            .expect("invariant: job resolved above under the same state lock");
        #[allow(clippy::expect_used)] // invariant documented in the message
        let node = entry
            .hierarchy
            .resolve_mut(&name)
            .expect("invariant: prefix resolved above under the same state lock");
        #[allow(clippy::expect_used)] // invariant documented in the message
        let meta = node
            .ds
            .as_mut()
            .expect("invariant: ds presence verified when planning the merge");
        meta.commit_merge(block, &plan.spec, target.as_ref())?;
        node.version += 1;
        let mut released = Vec::with_capacity(source_loc.chain.len());
        for r in &source_loc.chain {
            st.block_owner.remove(&r.block);
            let _ = st.freelist.release(r.block);
            released.push(r.block);
        }
        st.counters.merges += 1;
        let op = JournalOp::MergeCommitted {
            job,
            name,
            source: block,
            spec: plan.spec.clone(),
            target: target.clone(),
            released,
        };
        Ok((target, Some(plan.spec), vec![op], Some(source_loc)))
    }

    /// Finds the logical chain a physical block belongs to, along with
    /// its owning job and prefix. Linear in the number of live chains;
    /// only walked on the (rare) drain and failure paths.
    fn find_chain_of(st: &CtrlState, block: BlockId) -> Option<(JobId, String, BlockLocation)> {
        for (job, entry) in &st.jobs {
            for name in entry.hierarchy.names() {
                let Some(node) = entry.hierarchy.get(&name) else {
                    continue;
                };
                let Some(meta) = &node.ds else {
                    continue;
                };
                for loc in meta.locations() {
                    if loc.chain.iter().any(|r| r.block == block) {
                        return Some((*job, name, loc));
                    }
                }
            }
        }
        None
    }

    /// Live-migrates one logical chain to freshly allocated blocks
    /// (paper §3.3 discipline): seal the source so its image freezes
    /// while reads keep serving, copy it out, stand the copy up
    /// elsewhere, atomically swap the metadata entry under the state
    /// lock, then retire the source behind a `BlockMoved` redirect. A
    /// client op racing the move lands exactly once — at the old home
    /// before the seal, or at the new home after a retryable error
    /// (`StaleMetadata` / `BlockMoved`) and a refresh.
    fn migrate_logical(
        &self,
        st: &mut CtrlState,
        job: JobId,
        name: &str,
        old_loc: &BlockLocation,
    ) -> Result<BlockLocation> {
        // Target init params mirror the load path: initialize empty and
        // absorb the frozen image (the export carries all chunk / range
        // state, so KV mirrors start with no owned ranges).
        let (ds, params) = {
            let entry = st.jobs.get(&job).ok_or(JiffyError::UnknownJob(job.raw()))?;
            let node = entry.hierarchy.resolve(name)?;
            let meta = node
                .ds
                .as_ref()
                .ok_or(JiffyError::UnknownBlock(old_loc.id().raw()))?;
            let params = match meta.skeleton() {
                DsSkeleton::Kv { num_slots, .. } => jiffy_proto::to_bytes(&InitKvMirror {
                    ranges: vec![],
                    num_slots,
                })?,
                _ => Vec::new(),
            };
            (meta.ds_type(), params)
        };
        // 1. Seal: mutations bounce with StaleMetadata (clients refresh
        //    and retry); reads keep serving from the old tail.
        self.dataplane.seal_block(old_loc, true)?;
        // 2. Copy the now-frozen image out of the old tail, replay
        //    window included: a write retried across the migration
        //    re-resolves to the new home and must still be answered
        //    from the window rather than re-executed.
        let (payload, replay) = match self.dataplane.export_block(old_loc) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.dataplane.seal_block(old_loc, false);
                return Err(e);
            }
        };
        // 3. Stand up the replacement chain and absorb the image.
        let new_loc = match st.freelist.allocate_chain(old_loc.chain.len()) {
            Ok(l) => l,
            Err(e) => {
                let _ = self.dataplane.seal_block(old_loc, false);
                return Err(e);
            }
        };
        let staged = self
            .dataplane
            .init_block(&new_loc, ds, &params)
            .and_then(|()| {
                self.dataplane
                    .import_payload(&new_loc, &Blob::new(payload), &replay)
            });
        if let Err(e) = staged {
            let _ = self.dataplane.reset_block(&new_loc);
            for r in &new_loc.chain {
                let _ = st.freelist.release(r.block);
            }
            let _ = self.dataplane.seal_block(old_loc, false);
            return Err(e);
        }
        // 4. Swap the metadata entry. The state lock is already held, so
        //    clients observe either the old or the new location, never a
        //    gap; the version bump invalidates cached views.
        let swap = (|| -> Result<()> {
            let entry = st
                .jobs
                .get_mut(&job)
                .ok_or(JiffyError::UnknownJob(job.raw()))?;
            let node = entry.hierarchy.resolve_mut(name)?;
            let meta = node
                .ds
                .as_mut()
                .ok_or(JiffyError::UnknownBlock(old_loc.id().raw()))?;
            meta.replace_location(old_loc.id(), new_loc.clone())?;
            node.version += 1;
            Ok(())
        })();
        if let Err(e) = swap {
            let _ = self.dataplane.reset_block(&new_loc);
            for r in &new_loc.chain {
                let _ = st.freelist.release(r.block);
            }
            let _ = self.dataplane.seal_block(old_loc, false);
            return Err(e);
        }
        st.block_owner.remove(&old_loc.id());
        st.block_owner.insert(new_loc.id(), (job, name.to_string()));
        // 4b. Journal the new placement before the sources are retired:
        //     past this append the image's only copy may live on the
        //     new chain, so replay must already route there. (The old
        //     chain is still allocated in this record; the caller's
        //     closing rewrite covers its release.)
        let op = self.rewrite_op(st)?;
        self.journal_append(st, vec![op])?;
        // 5. Retire the sources: each keeps a redirect tombstone, so an
        //    op that raced the swap gets BlockMoved (retryable) rather
        //    than a stale answer. Best-effort — a dead source just means
        //    the client refreshes via Unavailable instead.
        let _ = self.dataplane.retire_block(old_loc, new_loc.head());
        // 6. Give the sources back (parked when their home is leaving).
        for r in &old_loc.chain {
            st.block_owner.remove(&r.block);
            let _ = st.freelist.release(r.block);
        }
        st.counters.blocks_migrated += old_loc.chain.len() as u64;
        Ok(new_loc)
    }

    /// Migrates every live chain off `server` (marked Draining first so
    /// nothing new lands there), returning how many of its physical
    /// blocks were moved. The server still holds no data afterwards and
    /// can be deregistered.
    fn drain_server_locked(&self, st: &mut CtrlState, server: ServerId) -> Result<u32> {
        st.freelist.mark_draining(server)?;
        let mut migrated = 0u32;
        loop {
            let used = st.freelist.used_blocks_on(server)?;
            let Some(block) = used.first().copied() else {
                break;
            };
            let Some((job, name, loc)) = Self::find_chain_of(st, block) else {
                return Err(JiffyError::Internal(format!(
                    "block blk-{} on draining srv-{} has no owning prefix",
                    block.raw(),
                    server.raw()
                )));
            };
            self.migrate_logical(st, job, &name, &loc)?;
            migrated += loc.chain.iter().filter(|r| r.server == server).count() as u32;
        }
        Ok(migrated)
    }

    /// Re-routes everything homed on a failed server (heartbeat timeout
    /// or explicit kill). Chains with surviving replicas are promoted in
    /// place; wholly-lost chains reload the whole prefix from the
    /// persistent tier when it was flushed and nothing else of it
    /// survives, and otherwise keep their stale location so clients see
    /// a clean, bounded `Unavailable` instead of a hang.
    pub fn handle_server_failure(&self, server: ServerId) -> Result<()> {
        let mut st = self.state.lock();
        // Failure handling journals its re-routing under the state lock.
        // xtask-allow(no-guard-across-rpc): journal order equals mutation order (DESIGN.md §11)
        self.handle_server_failure_locked(&mut st, server)
    }

    fn handle_server_failure_locked(&self, st: &mut CtrlState, server: ServerId) -> Result<()> {
        let lost = st.freelist.mark_dead(server)?;
        st.detector.forget(server);
        st.counters.servers_failed += 1;
        let mut seen: HashSet<BlockId> = HashSet::new();
        let mut promotions: Vec<(JobId, String, BlockLocation, BlockLocation)> = Vec::new();
        let mut wholly_dead: Vec<(JobId, String, BlockLocation)> = Vec::new();
        for block in &lost {
            let Some((job, name, loc)) = Self::find_chain_of(st, *block) else {
                continue;
            };
            if !seen.insert(loc.id()) {
                continue;
            }
            let survivors: Vec<Replica> = loc
                .chain
                .iter()
                .filter(|r| {
                    st.freelist
                        .state_of(r.server)
                        .is_ok_and(|s| s != ServerState::Dead)
                })
                .cloned()
                .collect();
            if survivors.is_empty() {
                wholly_dead.push((job, name, loc));
            } else if survivors.len() < loc.chain.len() {
                promotions.push((job, name, loc.clone(), BlockLocation { chain: survivors }));
            }
        }
        for (job, name, old, new) in promotions {
            let swapped = {
                let Some(entry) = st.jobs.get_mut(&job) else {
                    continue;
                };
                let Ok(node) = entry.hierarchy.resolve_mut(&name) else {
                    continue;
                };
                let Some(meta) = node.ds.as_mut() else {
                    continue;
                };
                let ok = meta.replace_location(old.id(), new.clone()).is_ok();
                if ok {
                    node.version += 1;
                }
                ok
            };
            if swapped && old.id() != new.id() {
                st.block_owner.remove(&old.id());
                st.block_owner.insert(new.id(), (job, name.clone()));
            }
            for r in old.chain.iter().filter(|r| r.server == server) {
                st.block_owner.remove(&r.block);
                let _ = st.freelist.release(r.block);
            }
        }
        let mut reload_candidates: HashSet<(JobId, String)> = HashSet::new();
        for (job, name, old) in &wholly_dead {
            for r in &old.chain {
                st.block_owner.remove(&r.block);
                let _ = st.freelist.release(r.block);
            }
            reload_candidates.insert((*job, name.clone()));
        }
        for (job, name) in reload_candidates {
            let (reloadable, path) = {
                let Some(entry) = st.jobs.get(&job) else {
                    continue;
                };
                let Ok(node) = entry.hierarchy.resolve(&name) else {
                    continue;
                };
                let Some(meta) = &node.ds else {
                    continue;
                };
                let all_dead = meta.locations().iter().all(|loc| {
                    loc.chain.iter().all(|r| {
                        !st.freelist
                            .state_of(r.server)
                            .is_ok_and(|s| s != ServerState::Dead)
                    })
                });
                (
                    all_dead && node.flushed_to.is_some(),
                    node.flushed_to.clone(),
                )
            };
            let (true, Some(path)) = (reloadable, path) else {
                continue;
            };
            // Drop the dead incarnation, then restore the flushed image
            // into fresh blocks on live servers.
            let locations = {
                let Some(entry) = st.jobs.get(&job) else {
                    continue;
                };
                let Ok(node) = entry.hierarchy.resolve(&name) else {
                    continue;
                };
                node.ds.as_ref().map(DsMeta::locations).unwrap_or_default()
            };
            for loc in &locations {
                for r in &loc.chain {
                    st.block_owner.remove(&r.block);
                    let _ = st.freelist.release(r.block);
                }
            }
            {
                let Some(entry) = st.jobs.get_mut(&job) else {
                    continue;
                };
                let Ok(node) = entry.hierarchy.resolve_mut(&name) else {
                    continue;
                };
                node.ds = None;
                node.version += 1;
            }
            let _ = self.load_prefix(st, job, &name, &path);
        }
        // Failure handling is a multi-step transition (promotions,
        // releases, reloads); checkpoint the outcome wholesale.
        let op = self.rewrite_op(st)?;
        self.journal_append(st, vec![op])?;
        Ok(())
    }

    /// One failure-detector sweep: servers whose last heartbeat is older
    /// than `cfg.heartbeat_timeout` are declared dead and their blocks
    /// re-routed. Returns the servers that expired this pass.
    pub fn run_failure_detector_once(&self) -> Vec<ServerId> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        let expired = st.detector.expired(now, self.cfg.heartbeat_timeout);
        for server in &expired {
            // xtask-allow(no-guard-across-rpc): journal order equals mutation order (DESIGN.md §11)
            let _ = self.handle_server_failure_locked(&mut st, *server);
        }
        expired
    }

    /// Installs (or replaces) the autoscaler policy and the provider it
    /// acts through. Until this is called, [`Controller::run_autoscaler_once`]
    /// always holds.
    pub fn set_autoscaler(&self, policy: AutoscalerPolicy, provider: Arc<dyn ServerProvider>) {
        let mut hooks = self.elastic.lock();
        hooks.policy = Some(policy);
        hooks.provider = Some(provider);
    }

    /// One pass of the demand-driven autoscaler: the decision is
    /// computed under the state lock from per-server free-block
    /// watermarks, but the provider acts WITHOUT it held — an
    /// in-process provider calls straight back into
    /// [`Controller::dispatch`] and would deadlock otherwise.
    pub fn run_autoscaler_once(&self) -> ScaleDecision {
        let (policy, provider) = {
            let hooks = self.elastic.lock();
            match (hooks.policy, hooks.provider.clone()) {
                (Some(p), Some(pr)) => (p, pr),
                _ => return ScaleDecision::Hold,
            }
        };
        let decision = {
            let st = self.state.lock();
            policy.decide(&st.freelist.server_loads())
        };
        match decision {
            ScaleDecision::Hold => {}
            ScaleDecision::ScaleUp => {
                if provider.provision().is_ok() {
                    let mut st = self.state.lock();
                    st.counters.scale_ups += 1;
                    // xtask-allow(no-guard-across-rpc): journal order equals mutation order (DESIGN.md §11)
                    let _ = self.journal_append(&mut st, vec![JournalOp::ScaleEvent { up: true }]);
                }
            }
            ScaleDecision::ScaleDown { victim } => {
                // Drain first (LeaveServer migrates every live chain off
                // the victim), then hand the empty server back.
                if self
                    .dispatch(ControlRequest::LeaveServer { server: victim })
                    .is_ok()
                {
                    let _ = provider.decommission(victim);
                    let mut st = self.state.lock();
                    st.counters.scale_downs += 1;
                    // xtask-allow(no-guard-across-rpc): journal order equals mutation order (DESIGN.md §11)
                    let _ = self.journal_append(&mut st, vec![JournalOp::ScaleEvent { up: false }]);
                }
            }
        }
        decision
    }

    /// Spawns the elasticity worker: every `cfg.elasticity_interval` it
    /// sweeps the failure detector and runs one autoscaler pass. Stops
    /// when the returned handle drops. Only meaningful with a real-time
    /// clock.
    pub fn start_elasticity_worker(self: &Arc<Self>) -> ControllerHandle {
        let stop = Arc::new(jiffy_sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let ctrl = Arc::clone(self);
        let interval = self.cfg.elasticity_interval;
        #[allow(clippy::expect_used)] // invariant documented in the message
        let thread = std::thread::Builder::new()
            .name("jiffy-elasticity".into())
            .spawn(move || {
                while !stop2.load(jiffy_sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    ctrl.run_failure_detector_once();
                    ctrl.run_autoscaler_once();
                }
            })
            .expect("invariant: thread spawn fails only on OS resource exhaustion");
        ControllerHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// One pass of the lease-expiry worker: flush and reclaim every
    /// prefix whose lease lapsed. Returns the reclaimed prefix names.
    pub fn run_expiry_once(&self) -> Vec<(JobId, String)> {
        let now = self.clock.now();
        let mut st = self.state.lock();
        let mut expired: Vec<(JobId, String)> = Vec::new();
        for (job, entry) in &st.jobs {
            for name in entry.hierarchy.expired(now, self.cfg.lease_duration) {
                // Only prefixes that still hold memory need reclamation.
                if entry.hierarchy.get(&name).is_some_and(|n| n.ds.is_some()) {
                    expired.push((*job, name));
                }
            }
        }
        for (job, name) in &expired {
            let _ = self.reclaim_prefix(&mut st, *job, name, true, None);
        }
        expired
    }

    /// Spawns a background thread running [`Controller::run_expiry_once`]
    /// every `cfg.lease_scan_interval` until the returned handle is
    /// dropped. Only meaningful with a real-time clock.
    pub fn start_expiry_worker(self: &Arc<Self>) -> ControllerHandle {
        let stop = Arc::new(jiffy_sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let ctrl = Arc::clone(self);
        let interval = self.cfg.lease_scan_interval;
        #[allow(clippy::expect_used)] // invariant documented in the message
        let thread = std::thread::Builder::new()
            .name("jiffy-lease-expiry".into())
            .spawn(move || {
                while !stop2.load(jiffy_sync::atomic::Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    ctrl.run_expiry_once();
                }
            })
            .expect("invariant: thread spawn fails only on OS resource exhaustion");
        ControllerHandle {
            stop,
            thread: Some(thread),
        }
    }

    fn stats_locked(&self, st: &CtrlState) -> ControllerStats {
        let prefixes: u64 = st.jobs.values().map(|j| j.hierarchy.len() as u64).sum();
        let metadata_bytes: u64 = st.jobs.values().map(|j| j.hierarchy.metadata_bytes()).sum();
        let servers = st
            .freelist
            .server_loads()
            .iter()
            .filter(|l| l.state == ServerState::Alive)
            .count() as u64;
        ControllerStats {
            free_blocks: st.freelist.free_count() as u64,
            total_blocks: st.freelist.total_count() as u64,
            jobs: st.jobs.len() as u64,
            prefixes,
            ops_served: st.counters.ops_served,
            leases_expired: st.counters.leases_expired,
            splits: st.counters.splits,
            merges: st.counters.merges,
            metadata_bytes,
            servers,
            servers_failed: st.counters.servers_failed,
            blocks_migrated: st.counters.blocks_migrated,
            scale_ups: st.counters.scale_ups,
            scale_downs: st.counters.scale_downs,
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ControllerStats {
        let st = self.state.lock();
        self.stats_locked(&st)
    }
}

/// Mirror of `jiffy-ds`'s KV init params for the load path (same wire
/// layout; see `crate::meta` for the rationale).
#[derive(Serialize, Deserialize)]
struct InitKvMirror {
    ranges: Vec<(u32, u32)>,
    num_slots: u32,
}

impl Service for Controller {
    fn handle(&self, req: Envelope, _session: &SessionHandle) -> Envelope {
        match req {
            Envelope::ControlReq { id, req, tenant } => {
                let resp = self.dispatch_as(req, tenant);
                // Load the epoch AFTER dispatch so a response to the
                // very op that moved placement already carries the bump.
                Envelope::ControlResp {
                    id,
                    resp,
                    epoch: self.view_epoch(),
                }
            }
            Envelope::DataReq { id, .. } => Envelope::DataResp {
                id,
                resp: Err(JiffyError::Rpc(
                    "data request sent to the controller".into(),
                )),
            },
            other => Envelope::ControlResp {
                id: 0,
                resp: Err(JiffyError::Rpc(format!("unexpected envelope {other:?}"))),
                epoch: self.view_epoch(),
            },
        }
    }
}

/// Handle keeping the lease-expiry worker alive; stops it on drop.
pub struct ControllerHandle {
    stop: Arc<jiffy_sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ControllerHandle {
    /// Stops the worker and waits for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, jiffy_sync::atomic::Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ControllerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::clock::ManualClock;
    use jiffy_persistent::MemObjectStore;
    use std::time::Duration;

    fn controller() -> (Arc<Controller>, Arc<ManualClock>, Arc<MemObjectStore>) {
        let (clock, shared) = ManualClock::shared();
        let store = Arc::new(MemObjectStore::new());
        let cfg = JiffyConfig::for_testing();
        let ctrl = Controller::new(cfg, shared, Arc::new(NoopDataPlane), store.clone()).unwrap();
        (ctrl, clock, store)
    }

    fn register(ctrl: &Controller) -> JobId {
        match ctrl
            .dispatch(ControlRequest::RegisterJob {
                name: "test".into(),
            })
            .unwrap()
        {
            ControlResponse::JobRegistered { job } => job,
            other => panic!("{other:?}"),
        }
    }

    fn add_server(ctrl: &Controller, blocks: u32) {
        ctrl.dispatch(ControlRequest::JoinServer {
            addr: "inproc:0".into(),
            capacity_blocks: blocks,
        })
        .unwrap();
    }

    #[test]
    fn job_lifecycle_and_stats() {
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "t1".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 2,
        })
        .unwrap();
        let stats = ctrl.stats();
        assert_eq!(stats.jobs, 1);
        assert_eq!(stats.prefixes, 1);
        assert_eq!(stats.total_blocks, 8);
        assert_eq!(stats.free_blocks, 6);
        ctrl.dispatch(ControlRequest::DeregisterJob { job })
            .unwrap();
        let stats = ctrl.stats();
        assert_eq!(stats.jobs, 0);
        assert_eq!(stats.free_blocks, 8);
    }

    #[test]
    fn resolve_returns_partition_views() {
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 2,
        })
        .unwrap();
        match ctrl
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(view) => {
                assert_eq!(view.ds, Some(DsType::KvStore));
                match view.partition.unwrap() {
                    jiffy_proto::PartitionView::Kv { num_slots, slots } => {
                        assert_eq!(num_slots, 1024);
                        assert_eq!(slots.len(), 2);
                        assert_eq!(slots[0].lo, 0);
                        assert_eq!(slots[1].hi, 1023);
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_job_and_prefix_errors() {
        let (ctrl, _clock, _) = controller();
        assert!(matches!(
            ctrl.dispatch(ControlRequest::ResolvePrefix {
                job: JobId(9),
                name: "x".into()
            }),
            Err(JiffyError::UnknownJob(9))
        ));
        let job = register(&ctrl);
        assert!(matches!(
            ctrl.dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "ghost".into()
            }),
            Err(JiffyError::PathNotFound(_))
        ));
    }

    #[test]
    fn create_hierarchy_builds_the_dag() {
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 16);
        let job = register(&ctrl);
        let nodes = vec![
            DagNodeSpec {
                name: "map".into(),
                parents: vec![],
                ds: Some(DsType::File),
                initial_blocks: 1,
            },
            DagNodeSpec {
                name: "reduce".into(),
                parents: vec!["map".into()],
                ds: Some(DsType::File),
                initial_blocks: 1,
            },
        ];
        ctrl.dispatch(ControlRequest::CreateHierarchy { job, nodes })
            .unwrap();
        match ctrl.dispatch(ControlRequest::ListPrefixes { job }).unwrap() {
            ControlResponse::Prefixes(p) => assert_eq!(p, vec!["map", "reduce"]),
            other => panic!("{other:?}"),
        }
        // Dotted path resolution works.
        assert!(matches!(
            ctrl.dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "map.reduce".into()
            }),
            Ok(ControlResponse::Resolved(_))
        ));
    }

    #[test]
    fn lease_renewal_propagates_and_expiry_reclaims() {
        let (ctrl, clock, store) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        for (name, parents) in [("a", vec![]), ("b", vec!["a".to_string()])] {
            ctrl.dispatch(ControlRequest::CreatePrefix {
                job,
                name: name.into(),
                parents,
                ds: Some(DsType::File),
                initial_blocks: 1,
            })
            .unwrap();
        }
        // Renew "a": renews a and its descendant b.
        clock.advance(Duration::from_millis(500));
        match ctrl
            .dispatch(ControlRequest::RenewLease {
                job,
                name: "a".into(),
            })
            .unwrap()
        {
            ControlResponse::LeaseRenewed { renewed, .. } => {
                assert_eq!(renewed.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        // Advance past the lease (1 s for the test config).
        clock.advance(Duration::from_secs(2));
        let expired = ctrl.run_expiry_once();
        assert_eq!(expired.len(), 2);
        let stats = ctrl.stats();
        assert_eq!(stats.leases_expired, 2);
        assert_eq!(stats.free_blocks, 8, "blocks reclaimed");
        // Data was flushed to the auto path before reclamation.
        assert!(store.exists(&format!("jiffy-expired/{}/a", job.raw())));
        assert!(store.exists(&format!("jiffy-expired/{}/b", job.raw())));
        // A second pass reclaims nothing further.
        assert!(ctrl.run_expiry_once().is_empty());
    }

    #[test]
    fn renewals_prevent_expiry() {
        let (ctrl, clock, _) = controller();
        add_server(&ctrl, 4);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "live".into(),
            parents: vec![],
            ds: Some(DsType::Queue),
            initial_blocks: 1,
        })
        .unwrap();
        for _ in 0..5 {
            clock.advance(Duration::from_millis(800));
            ctrl.dispatch(ControlRequest::RenewLease {
                job,
                name: "live".into(),
            })
            .unwrap();
            assert!(ctrl.run_expiry_once().is_empty());
        }
    }

    #[test]
    fn flush_and_load_round_trip_via_persistent_tier() {
        let (ctrl, _clock, store) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "t".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 1,
        })
        .unwrap();
        match ctrl
            .dispatch(ControlRequest::FlushPrefix {
                job,
                name: "t".into(),
                external_path: "s3/ckpt".into(),
            })
            .unwrap()
        {
            ControlResponse::Persisted { .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(store.exists("s3/ckpt"));
        // Remove and reload.
        ctrl.dispatch(ControlRequest::RemovePrefix {
            job,
            name: "t".into(),
        })
        .unwrap();
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "t".into(),
            parents: vec![],
            ds: None,
            initial_blocks: 0,
        })
        .unwrap();
        ctrl.dispatch(ControlRequest::LoadPrefix {
            job,
            name: "t".into(),
            external_path: "s3/ckpt".into(),
        })
        .unwrap();
        match ctrl
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "t".into(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(view) => {
                assert_eq!(view.ds, Some(DsType::KvStore));
                assert!(view.partition.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overload_allocates_and_commits_split() {
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 4);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 1,
        })
        .unwrap();
        let block = match ctrl
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(v) => v.partition.unwrap().blocks()[0].id(),
            other => panic!("{other:?}"),
        };
        match ctrl
            .dispatch(ControlRequest::ReportOverload { block, used: 999 })
            .unwrap()
        {
            ControlResponse::SplitTarget { target, spec } => {
                assert!(target.is_some());
                assert_eq!(spec, Some(SplitSpec::KvSlots { lo: 512, hi: 1023 }));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ctrl.stats().splits, 1);
        // The view now shows two blocks and a bumped version.
        match ctrl
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(v) => {
                assert_eq!(v.partition.unwrap().blocks().len(), 2);
                assert_eq!(v.version, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overload_without_free_blocks_returns_no_target() {
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 1);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 1,
        })
        .unwrap();
        let block = BlockId(0);
        match ctrl
            .dispatch(ControlRequest::ReportOverload { block, used: 999 })
            .unwrap()
        {
            ControlResponse::SplitTarget { target, spec } => {
                assert!(target.is_none());
                assert!(spec.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn underload_merges_kv_blocks() {
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 4);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 2,
        })
        .unwrap();
        let blocks = match ctrl
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "kv".into(),
            })
            .unwrap()
        {
            ControlResponse::Resolved(v) => v
                .partition
                .unwrap()
                .blocks()
                .iter()
                .map(|l| l.id())
                .collect::<Vec<_>>(),
            other => panic!("{other:?}"),
        };
        match ctrl
            .dispatch(ControlRequest::ReportUnderload {
                block: blocks[1],
                used: 1,
            })
            .unwrap()
        {
            ControlResponse::MergeTarget { target, spec } => {
                assert_eq!(target.unwrap().id(), blocks[0]);
                assert_eq!(spec, Some(MergeSpec::KvAbsorb));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ctrl.stats().merges, 1);
        assert_eq!(ctrl.stats().free_blocks, 3, "merged block reclaimed");
    }

    #[test]
    fn metadata_overhead_matches_the_paper() {
        // §6.4: 64 B per task + 8 B per block. For 128 MB blocks this is
        // < 0.0001 % of stored data.
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "t1".into(),
            parents: vec![],
            ds: Some(DsType::File),
            initial_blocks: 4,
        })
        .unwrap();
        let stats = ctrl.stats();
        assert_eq!(stats.metadata_bytes, 64 + 4 * 8);
        let data_bytes = 4u64 * 128 * 1024 * 1024;
        let overhead = stats.metadata_bytes as f64 / data_bytes as f64;
        assert!(overhead < 0.000_001, "{overhead}");
    }

    #[test]
    fn out_of_blocks_on_create_rolls_back() {
        let (ctrl, _clock, _) = controller();
        add_server(&ctrl, 2);
        let job = register(&ctrl);
        let err = ctrl
            .dispatch(ControlRequest::CreatePrefix {
                job,
                name: "big".into(),
                parents: vec![],
                ds: Some(DsType::KvStore),
                initial_blocks: 5,
            })
            .unwrap_err();
        assert!(matches!(err, JiffyError::OutOfBlocks));
        // Nothing leaked: blocks free, node gone.
        assert_eq!(ctrl.stats().free_blocks, 2);
        assert!(ctrl
            .dispatch(ControlRequest::ResolvePrefix {
                job,
                name: "big".into()
            })
            .is_err());
    }

    // ----- crash recovery (DESIGN.md §11) -------------------------------

    /// Recovers a controller from whatever `store` holds, sharing the
    /// original manual clock.
    fn recover(clock: &Arc<ManualClock>, store: &Arc<MemObjectStore>) -> Arc<Controller> {
        let shared: SharedClock = clock.clone();
        Controller::recover(
            JiffyConfig::for_testing(),
            shared,
            Arc::new(NoopDataPlane),
            store.clone(),
        )
        .unwrap()
    }

    fn assert_recovered_matches(live: &Controller, recovered: &Controller) {
        let violations = recovered.check_invariants();
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(
            live.state_mirror().normalized(),
            recovered.state_mirror().normalized()
        );
    }

    #[test]
    fn recovery_rebuilds_the_exact_state_mirror() {
        let (ctrl, _clock, store) = controller();
        add_server(&ctrl, 8);
        add_server(&ctrl, 4);
        let job = register(&ctrl);
        for (name, ds) in [
            ("kv", Some(DsType::KvStore)),
            ("file", Some(DsType::File)),
            ("bare", None),
        ] {
            ctrl.dispatch(ControlRequest::CreatePrefix {
                job,
                name: name.into(),
                parents: vec![],
                ds,
                initial_blocks: u32::from(ds.is_some()) * 2,
            })
            .unwrap();
        }
        ctrl.dispatch(ControlRequest::AddParent {
            job,
            name: "kv".into(),
            parent: "bare".into(),
        })
        .unwrap();
        ctrl.dispatch(ControlRequest::FlushPrefix {
            job,
            name: "file".into(),
            external_path: "ext/file".into(),
        })
        .unwrap();
        ctrl.dispatch(ControlRequest::RemovePrefix {
            job,
            name: "file".into(),
        })
        .unwrap();

        let recovered = recover(&_clock, &store);
        assert_recovered_matches(&ctrl, &recovered);
        // Structural stats agree too (ops_served is liveness, not state).
        let (a, b) = (ctrl.stats(), recovered.stats());
        assert_eq!(a.free_blocks, b.free_blocks);
        assert_eq!(a.total_blocks, b.total_blocks);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.prefixes, b.prefixes);
        // And the recovered controller keeps working: fresh ids don't
        // collide, allocation proceeds from the recovered freelist.
        let job2 = register(&recovered);
        assert!(job2.raw() > job.raw());
        recovered
            .dispatch(ControlRequest::CreatePrefix {
                job: job2,
                name: "more".into(),
                parents: vec![],
                ds: Some(DsType::KvStore),
                initial_blocks: 2,
            })
            .unwrap();
        assert!(recovered.check_invariants().is_empty());
    }

    #[test]
    fn recovery_resumes_from_a_snapshot_plus_journal_suffix() {
        let (ctrl, _clock, store) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 2,
        })
        .unwrap();
        ctrl.snapshot_now().unwrap();
        // Mutations after the snapshot land in the journal suffix.
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "post".into(),
            parents: vec![],
            ds: Some(DsType::File),
            initial_blocks: 1,
        })
        .unwrap();
        let recovered = recover(&_clock, &store);
        assert_recovered_matches(&ctrl, &recovered);
    }

    #[test]
    fn recovery_rearms_leases_instead_of_inheriting_stale_ones() {
        let (ctrl, clock, store) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 2,
        })
        .unwrap();
        // Let the lease lapse *on the wire*: the journal still records
        // the creation-time renewal, but a restart must not trust it.
        clock.advance(Duration::from_millis(1500));
        let recovered = recover(&clock, &store);
        assert!(
            recovered.run_expiry_once().is_empty(),
            "a recovered lease must get a fresh full TTL"
        );
        // From the recovery instant the normal TTL applies again.
        clock.advance(Duration::from_millis(1100));
        let expired = recovered.run_expiry_once();
        assert_eq!(expired, vec![(job, "kv".to_string())]);
        assert_eq!(recovered.stats().leases_expired, 1);
    }

    #[test]
    fn expiry_flush_and_reclaim_happen_exactly_once_across_restart() {
        let (ctrl, clock, store) = controller();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 2,
        })
        .unwrap();
        clock.advance(Duration::from_millis(1100));
        assert_eq!(ctrl.run_expiry_once().len(), 1);
        assert_eq!(ctrl.stats().leases_expired, 1);
        assert_eq!(ctrl.stats().free_blocks, 8);

        // Crash after the expiry was journaled: the new incarnation
        // must see the prefix as already flushed+reclaimed, not expire
        // it a second time (double release would corrupt the freelist).
        let recovered = recover(&clock, &store);
        assert_recovered_matches(&ctrl, &recovered);
        clock.advance(Duration::from_millis(1100));
        assert!(recovered.run_expiry_once().is_empty());
        assert_eq!(recovered.stats().leases_expired, 1);
        assert_eq!(recovered.stats().free_blocks, 8);
    }

    #[test]
    fn replay_is_idempotent_when_truncation_failed_mid_snapshot() {
        // A crash can leave a snapshot *and* the journal records it
        // covers (truncation is best-effort). Replay must dedupe by
        // sequence number, not double-apply.
        let (clock, shared) = ManualClock::shared();
        let store = Arc::new(MemObjectStore::new());
        let cfg = JiffyConfig::for_testing().with_meta_snapshot_every(0);
        let ctrl = Controller::new(cfg, shared, Arc::new(NoopDataPlane), store.clone()).unwrap();
        add_server(&ctrl, 8);
        let job = register(&ctrl);
        ctrl.dispatch(ControlRequest::CreatePrefix {
            job,
            name: "kv".into(),
            parents: vec![],
            ds: Some(DsType::KvStore),
            initial_blocks: 2,
        })
        .unwrap();
        // Save the pre-snapshot journal, snapshot (which truncates it),
        // then resurrect the stale records.
        let saved: Vec<(String, Vec<u8>)> = store
            .list("jiffy-meta/journal/")
            .into_iter()
            .map(|p| (p.clone(), store.get(&p).unwrap()))
            .collect();
        assert!(!saved.is_empty());
        ctrl.snapshot_now().unwrap();
        for (path, data) in &saved {
            store.put(path, data).unwrap();
        }
        let recovered = recover(&clock, &store);
        assert_recovered_matches(&ctrl, &recovered);
    }

    #[test]
    fn recovery_ignores_orphaned_non_record_objects() {
        let (ctrl, _clock, store) = controller();
        add_server(&ctrl, 4);
        register(&ctrl);
        // A hard kill can strand a half-written temp file in the
        // journal directory (DirObjectStore's crash-safe put); recovery
        // must skip anything whose name is not a sequence number.
        store
            .put("jiffy-meta/journal/.tmp-1234", b"garbage")
            .unwrap();
        store.put("jiffy-meta/snapshot/.tmp-99", b"junk").unwrap();
        let recovered = recover(&_clock, &store);
        assert_recovered_matches(&ctrl, &recovered);
    }
}
