//! The free block list and memory-server membership.

use std::collections::{HashMap, VecDeque};

use jiffy_common::id::IdGen;
use jiffy_common::{BlockId, JiffyError, Result, ServerId};
use jiffy_proto::{BlockLocation, Endpoint, Replica};

/// Tracks every registered memory server, every block in the cluster,
/// and which blocks are currently free.
///
/// Assignment of blocks to address prefixes is exactly the paper's
/// virtual-memory analogy: the data plane's physical blocks are
/// multiplexed across prefixes at block granularity, while tasks operate
/// under the illusion of unbounded prefix capacity.
#[derive(Debug, Default)]
pub struct FreeList {
    servers: HashMap<ServerId, Endpoint>,
    /// Every block's home server (free or not).
    homes: HashMap<BlockId, ServerId>,
    free: VecDeque<BlockId>,
    server_ids: IdGen,
    block_ids: IdGen,
}

impl FreeList {
    /// Creates an empty free list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a memory server contributing `capacity_blocks` blocks;
    /// returns its ID and the IDs assigned to its blocks.
    pub fn register_server(
        &mut self,
        addr: impl Into<String>,
        capacity_blocks: u32,
    ) -> (ServerId, Vec<BlockId>) {
        let server: ServerId = self.server_ids.next_id();
        let addr = addr.into();
        self.servers.insert(server, Endpoint { server, addr });
        let mut blocks = Vec::with_capacity(capacity_blocks as usize);
        for _ in 0..capacity_blocks {
            let id: BlockId = self.block_ids.next_id();
            self.homes.insert(id, server);
            self.free.push_back(id);
            blocks.push(id);
        }
        (server, blocks)
    }

    /// Allocates one free block, preferring round-robin order across
    /// servers (FIFO over the free list achieves this for equal-size
    /// servers).
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfBlocks`] when nothing is free.
    pub fn allocate(&mut self) -> Result<BlockLocation> {
        let block = self.free.pop_front().ok_or(JiffyError::OutOfBlocks)?;
        Ok(self.location_of(block))
    }

    /// Allocates a replication chain of `n` blocks on as many distinct
    /// servers as possible (head first).
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfBlocks`] if fewer than `n` blocks are free; no
    /// partial allocation occurs.
    pub fn allocate_chain(&mut self, n: usize) -> Result<BlockLocation> {
        if n == 0 {
            return Err(JiffyError::Internal("chain length must be >= 1".into()));
        }
        if self.free.len() < n {
            return Err(JiffyError::OutOfBlocks);
        }
        // Greedy pass preferring distinct servers; fall back to whatever
        // is free if the cluster has fewer servers than replicas.
        let mut chosen: Vec<BlockId> = Vec::with_capacity(n);
        let mut used_servers: Vec<ServerId> = Vec::with_capacity(n);
        for pass in 0..2 {
            if chosen.len() == n {
                break;
            }
            let mut i = 0;
            while i < self.free.len() && chosen.len() < n {
                let candidate = self.free[i];
                let home = self.homes[&candidate];
                let distinct_ok = pass == 1 || !used_servers.contains(&home);
                if distinct_ok && !chosen.contains(&candidate) {
                    chosen.push(candidate);
                    used_servers.push(home);
                }
                i += 1;
            }
        }
        debug_assert_eq!(chosen.len(), n);
        self.free.retain(|b| !chosen.contains(b));
        let chain = chosen
            .into_iter()
            .map(|block| {
                let ep = &self.servers[&self.homes[&block]];
                Replica {
                    block,
                    server: ep.server,
                    addr: ep.addr.clone(),
                }
            })
            .collect();
        Ok(BlockLocation { chain })
    }

    /// Returns a block to the free pool.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] for blocks the cluster never had;
    /// [`JiffyError::Internal`] for double-frees.
    pub fn release(&mut self, block: BlockId) -> Result<()> {
        if !self.homes.contains_key(&block) {
            return Err(JiffyError::UnknownBlock(block.raw()));
        }
        if self.free.contains(&block) {
            return Err(JiffyError::Internal(format!("double free of {block}")));
        }
        self.free.push_back(block);
        Ok(())
    }

    /// Location (single-replica) of any known block.
    ///
    /// # Panics
    ///
    /// Panics if the block was never registered.
    pub fn location_of(&self, block: BlockId) -> BlockLocation {
        let home = self.homes[&block];
        let ep = &self.servers[&home];
        BlockLocation::single(block, ep.server, ep.addr.clone())
    }

    /// Whether the block is currently free.
    pub fn is_free(&self, block: BlockId) -> bool {
        self.free.contains(&block)
    }

    /// Number of free blocks.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total blocks across all servers.
    pub fn total_count(&self) -> usize {
        self.homes.len()
    }

    /// Registered server endpoints.
    pub fn servers(&self) -> Vec<Endpoint> {
        let mut v: Vec<Endpoint> = self.servers.values().cloned().collect();
        v.sort_by_key(|e| e.server);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_allocate_release_cycle() {
        let mut fl = FreeList::new();
        let (s1, blocks) = fl.register_server("inproc:0", 4);
        assert_eq!(blocks.len(), 4);
        assert_eq!(fl.free_count(), 4);
        assert_eq!(fl.total_count(), 4);

        let loc = fl.allocate().unwrap();
        assert_eq!(loc.head().server, s1);
        assert_eq!(fl.free_count(), 3);
        assert!(!fl.is_free(loc.id()));

        fl.release(loc.id()).unwrap();
        assert_eq!(fl.free_count(), 4);
    }

    #[test]
    fn exhaustion_yields_out_of_blocks() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 2);
        fl.allocate().unwrap();
        fl.allocate().unwrap();
        assert!(matches!(fl.allocate(), Err(JiffyError::OutOfBlocks)));
    }

    #[test]
    fn double_free_and_unknown_free_are_rejected() {
        let mut fl = FreeList::new();
        let (_, blocks) = fl.register_server("inproc:0", 1);
        assert!(matches!(
            fl.release(BlockId(99)),
            Err(JiffyError::UnknownBlock(99))
        ));
        // blocks[0] is free already.
        assert!(fl.release(blocks[0]).is_err());
    }

    #[test]
    fn block_ids_are_unique_across_servers() {
        let mut fl = FreeList::new();
        let (_, b1) = fl.register_server("inproc:0", 3);
        let (_, b2) = fl.register_server("inproc:1", 3);
        for b in &b1 {
            assert!(!b2.contains(b));
        }
        assert_eq!(fl.total_count(), 6);
    }

    #[test]
    fn chains_prefer_distinct_servers() {
        let mut fl = FreeList::new();
        let (s1, _) = fl.register_server("inproc:0", 2);
        let (s2, _) = fl.register_server("inproc:1", 2);
        let (s3, _) = fl.register_server("inproc:2", 2);
        let loc = fl.allocate_chain(3).unwrap();
        let servers: Vec<ServerId> = loc.chain.iter().map(|r| r.server).collect();
        assert_eq!(servers.len(), 3);
        for s in [s1, s2, s3] {
            assert!(servers.contains(&s), "{s} missing from chain");
        }
        assert_eq!(fl.free_count(), 3);
    }

    #[test]
    fn chains_fall_back_to_shared_servers_when_needed() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 3);
        let loc = fl.allocate_chain(2).unwrap();
        assert_eq!(loc.chain.len(), 2);
        assert_ne!(loc.chain[0].block, loc.chain[1].block);
    }

    #[test]
    fn chain_allocation_is_all_or_nothing() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 1);
        assert!(matches!(fl.allocate_chain(2), Err(JiffyError::OutOfBlocks)));
        assert_eq!(fl.free_count(), 1);
    }

    #[test]
    fn allocation_round_robins_across_servers() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 2);
        fl.register_server("inproc:1", 2);
        // FIFO order: s0, s0, s1, s1 registered in that order; releases
        // go to the back.
        let a = fl.allocate().unwrap();
        fl.release(a.id()).unwrap();
        let b = fl.allocate().unwrap();
        assert_ne!(
            a.id(),
            b.id(),
            "released block goes to the back of the queue"
        );
    }
}
