//! The free block list and memory-server membership table.

use std::collections::{HashMap, HashSet, VecDeque};

use jiffy_common::id::IdGen;
use jiffy_common::{BlockId, JiffyError, Result, ServerId};
use jiffy_elastic::{ServerLoad, ServerState};
use jiffy_proto::{BlockLocation, Endpoint, ServerInfo};
use serde::{Deserialize, Serialize};

/// One registered memory server and the blocks it contributed.
#[derive(Debug, Clone)]
struct ServerEntry {
    endpoint: Endpoint,
    state: ServerState,
    /// Every block homed on this server, in registration order.
    blocks: Vec<BlockId>,
}

/// Tracks every registered memory server, every block in the cluster,
/// and which blocks are currently free.
///
/// Assignment of blocks to address prefixes is exactly the paper's
/// virtual-memory analogy: the data plane's physical blocks are
/// multiplexed across prefixes at block granularity, while tasks operate
/// under the illusion of unbounded prefix capacity.
///
/// With cluster elasticity this doubles as the **membership table**:
/// each server carries a [`ServerState`]. Only `Alive` servers receive
/// new allocations; the free blocks of `Draining`/`Dead` servers are
/// *parked* (unallocatable but remembered). Server IDs come from a
/// monotonic [`IdGen`] and departed IDs are tombstoned, so an ID is
/// never re-issued — a stale heartbeat or lease from a previous
/// incarnation can never be confused with a new server.
#[derive(Debug, Default)]
pub struct FreeList {
    servers: HashMap<ServerId, ServerEntry>,
    /// Every block's home server (free or not).
    homes: HashMap<BlockId, ServerId>,
    /// Allocatable blocks (homes are all `Alive`), FIFO for round-robin.
    free: VecDeque<BlockId>,
    /// Unallocated blocks whose home server is draining or dead.
    parked: HashSet<BlockId>,
    /// IDs of servers that left the cluster (drained and removed).
    departed: HashSet<ServerId>,
    server_ids: IdGen,
    block_ids: IdGen,
}

impl FreeList {
    /// Creates an empty free list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Strides the server and block id generators so this free list
    /// (one controller shard's) mints ids ≡ `index` (mod `count`) —
    /// disjoint from every sibling shard's ids, and `id % count`
    /// recovers the owning shard for request routing. Safe to call on a
    /// table rebuilt from a checkpoint: frontiers already in class stay
    /// put.
    pub fn set_id_stride(&self, index: u64, count: u64) {
        self.server_ids.set_stride(index, count);
        self.block_ids.set_stride(index, count);
    }

    /// Registers a memory server contributing `capacity_blocks` blocks;
    /// returns its ID and the IDs assigned to its blocks.
    pub fn register_server(
        &mut self,
        addr: impl Into<String>,
        capacity_blocks: u32,
    ) -> (ServerId, Vec<BlockId>) {
        let server: ServerId = self.server_ids.next_id();
        let addr = addr.into();
        let mut blocks = Vec::with_capacity(capacity_blocks as usize);
        for _ in 0..capacity_blocks {
            let id: BlockId = self.block_ids.next_id();
            self.homes.insert(id, server);
            self.free.push_back(id);
            blocks.push(id);
        }
        self.servers.insert(
            server,
            ServerEntry {
                endpoint: Endpoint { server, addr },
                state: ServerState::Alive,
                blocks: blocks.clone(),
            },
        );
        (server, blocks)
    }

    /// Allocates one free block, preferring round-robin order across
    /// servers (FIFO over the free list achieves this for equal-size
    /// servers).
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfBlocks`] when nothing is free.
    pub fn allocate(&mut self) -> Result<BlockLocation> {
        let block = self.free.pop_front().ok_or(JiffyError::OutOfBlocks)?;
        self.location_of(block)
    }

    /// Allocates a replication chain of `n` blocks on as many distinct
    /// servers as possible (head first). Only `Alive` servers are
    /// eligible (the free list never holds blocks of draining or dead
    /// servers).
    ///
    /// # Errors
    ///
    /// [`JiffyError::OutOfBlocks`] if fewer than `n` blocks are free; no
    /// partial allocation occurs.
    pub fn allocate_chain(&mut self, n: usize) -> Result<BlockLocation> {
        if n == 0 {
            return Err(JiffyError::Internal("chain length must be >= 1".into()));
        }
        if self.free.len() < n {
            return Err(JiffyError::OutOfBlocks);
        }
        // Greedy pass preferring distinct servers; fall back to whatever
        // is free if the cluster has fewer servers than replicas.
        let mut chosen: Vec<BlockId> = Vec::with_capacity(n);
        let mut used_servers: Vec<ServerId> = Vec::with_capacity(n);
        for pass in 0..2 {
            if chosen.len() == n {
                break;
            }
            let mut i = 0;
            while i < self.free.len() && chosen.len() < n {
                let candidate = self.free[i];
                let home = self.homes[&candidate];
                let distinct_ok = pass == 1 || !used_servers.contains(&home);
                if distinct_ok && !chosen.contains(&candidate) {
                    chosen.push(candidate);
                    used_servers.push(home);
                }
                i += 1;
            }
        }
        debug_assert_eq!(chosen.len(), n);
        self.free.retain(|b| !chosen.contains(b));
        let mut chain = Vec::with_capacity(n);
        for block in chosen {
            let loc = self.location_of(block)?;
            chain.extend(loc.chain);
        }
        Ok(BlockLocation { chain })
    }

    /// Returns a block to the free pool. If the block's home server is
    /// draining or dead the block is *parked* instead: it stays
    /// unallocatable until the server is removed.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] for blocks the cluster never had (or
    /// whose server already departed); [`JiffyError::Internal`] for
    /// double-frees.
    pub fn release(&mut self, block: BlockId) -> Result<()> {
        let home = *self
            .homes
            .get(&block)
            .ok_or(JiffyError::UnknownBlock(block.raw()))?;
        let entry = self
            .servers
            .get(&home)
            .ok_or(JiffyError::UnknownServer(home.raw()))?;
        if self.free.contains(&block) || self.parked.contains(&block) {
            return Err(JiffyError::Internal(format!("double free of {block}")));
        }
        match entry.state {
            ServerState::Alive => self.free.push_back(block),
            ServerState::Draining | ServerState::Dead => {
                self.parked.insert(block);
            }
        }
        Ok(())
    }

    /// Location (single-replica) of any known block.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] if the block was never registered
    /// (or its server departed); [`JiffyError::UnknownServer`] if the
    /// membership entry is gone (internal inconsistency).
    pub fn location_of(&self, block: BlockId) -> Result<BlockLocation> {
        let home = self
            .homes
            .get(&block)
            .ok_or(JiffyError::UnknownBlock(block.raw()))?;
        let ep = &self
            .servers
            .get(home)
            .ok_or(JiffyError::UnknownServer(home.raw()))?
            .endpoint;
        Ok(BlockLocation::single(block, ep.server, ep.addr.clone()))
    }

    /// Whether the block is currently unallocated (free or parked).
    pub fn is_free(&self, block: BlockId) -> bool {
        self.free.contains(&block) || self.parked.contains(&block)
    }

    /// Number of allocatable free blocks (excludes parked blocks).
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total blocks across all current servers.
    pub fn total_count(&self) -> usize {
        self.homes.len()
    }

    /// Registered server endpoints (any state), sorted by ID.
    pub fn servers(&self) -> Vec<Endpoint> {
        let mut v: Vec<Endpoint> = self.servers.values().map(|e| e.endpoint.clone()).collect();
        v.sort_by_key(|e| e.server);
        v
    }

    /// The endpoint of one server.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownServer`] for unknown or departed servers.
    pub fn endpoint_of(&self, server: ServerId) -> Result<Endpoint> {
        self.servers
            .get(&server)
            .map(|e| e.endpoint.clone())
            .ok_or(JiffyError::UnknownServer(server.raw()))
    }

    /// The membership state of one server.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownServer`] for unknown or departed servers.
    pub fn state_of(&self, server: ServerId) -> Result<ServerState> {
        self.servers
            .get(&server)
            .map(|e| e.state)
            .ok_or(JiffyError::UnknownServer(server.raw()))
    }

    /// Whether this ID belonged to a server that has left the cluster.
    pub fn is_departed(&self, server: ServerId) -> bool {
        self.departed.contains(&server)
    }

    /// Home server of a block, if known.
    pub fn home_of(&self, block: BlockId) -> Option<ServerId> {
        self.homes.get(&block).copied()
    }

    /// Blocks homed on `server` that are currently allocated to a data
    /// structure (i.e. neither free nor parked).
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownServer`] for unknown or departed servers.
    pub fn used_blocks_on(&self, server: ServerId) -> Result<Vec<BlockId>> {
        let entry = self
            .servers
            .get(&server)
            .ok_or(JiffyError::UnknownServer(server.raw()))?;
        Ok(entry
            .blocks
            .iter()
            .copied()
            .filter(|b| !self.free.contains(b) && !self.parked.contains(b))
            .collect())
    }

    /// Marks a server as draining: its free blocks are parked and it
    /// receives no new allocations. Idempotent for already-draining
    /// servers.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownServer`] for unknown or departed servers;
    /// [`JiffyError::Internal`] for dead servers (they cannot drain).
    pub fn mark_draining(&mut self, server: ServerId) -> Result<()> {
        let entry = self
            .servers
            .get_mut(&server)
            .ok_or(JiffyError::UnknownServer(server.raw()))?;
        match entry.state {
            ServerState::Dead => {
                return Err(JiffyError::Internal(format!(
                    "cannot drain dead server {server}"
                )))
            }
            ServerState::Draining => return Ok(()),
            ServerState::Alive => entry.state = ServerState::Draining,
        }
        self.park_free_blocks_of(server);
        Ok(())
    }

    /// Marks a server dead (failure detector), parking its free blocks.
    /// Returns the blocks on it that were allocated to data structures —
    /// the set the controller must re-route or declare lost.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownServer`] for unknown or departed servers.
    pub fn mark_dead(&mut self, server: ServerId) -> Result<Vec<BlockId>> {
        let entry = self
            .servers
            .get_mut(&server)
            .ok_or(JiffyError::UnknownServer(server.raw()))?;
        entry.state = ServerState::Dead;
        self.park_free_blocks_of(server);
        self.used_blocks_on(server)
    }

    /// Removes a fully drained server from the membership table. Its
    /// block IDs disappear from the cluster and its server ID is
    /// tombstoned (never re-issued).
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownServer`] for unknown or departed servers;
    /// [`JiffyError::Internal`] if any of its blocks is still allocated.
    pub fn deregister_server(&mut self, server: ServerId) -> Result<Endpoint> {
        let still_used = self.used_blocks_on(server)?;
        if !still_used.is_empty() {
            return Err(JiffyError::Internal(format!(
                "server {server} still hosts {} live blocks",
                still_used.len()
            )));
        }
        #[allow(clippy::expect_used)] // invariant: used_blocks_on checked membership above
        let entry = self
            .servers
            .remove(&server)
            .expect("invariant: membership entry exists, checked above");
        for b in &entry.blocks {
            self.homes.remove(b);
            self.parked.remove(b);
            if let Some(pos) = self.free.iter().position(|x| x == b) {
                self.free.remove(pos);
            }
        }
        self.departed.insert(server);
        Ok(entry.endpoint)
    }

    /// Per-server load snapshot for the autoscaler and `ListServers`.
    pub fn server_loads(&self) -> Vec<ServerLoad> {
        let mut v: Vec<ServerLoad> = self
            .servers
            .iter()
            .map(|(&server, entry)| {
                let free = entry
                    .blocks
                    .iter()
                    .filter(|b| self.free.contains(b) || self.parked.contains(b))
                    .count() as u32;
                ServerLoad {
                    server,
                    state: entry.state,
                    used_blocks: entry.blocks.len() as u32 - free,
                    free_blocks: free,
                }
            })
            .collect();
        v.sort_unstable_by_key(|l| l.server.raw());
        v
    }

    /// Wire-format membership rows (`ListServers`).
    pub fn server_infos(&self) -> Vec<ServerInfo> {
        self.server_loads()
            .iter()
            .map(|l| {
                let addr = self
                    .servers
                    .get(&l.server)
                    .map(|e| e.endpoint.addr.clone())
                    .unwrap_or_default();
                ServerInfo {
                    server: l.server,
                    addr,
                    state: l.state.as_str().to_string(),
                    total_blocks: l.total_blocks(),
                    used_blocks: l.used_blocks,
                    free_blocks: l.free_blocks,
                }
            })
            .collect()
    }

    /// Rehomes a replica entry after a migration: `block` keeps its ID
    /// only on the wire — physically the data now lives in a *different*
    /// block on another server, so nothing changes here; the caller
    /// releases the source block instead. Provided as a seam for future
    /// in-place rehoming; currently just validates both ends exist.
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] / [`JiffyError::UnknownServer`] when
    /// either end is not registered.
    pub fn validate_blocks(&self, blocks: &[BlockId]) -> Result<()> {
        for b in blocks {
            self.location_of(*b)?;
        }
        Ok(())
    }

    /// Removes one *specific* block from the free pool — journal replay
    /// re-applies a recorded allocation outcome instead of asking the
    /// allocator to choose again (FIFO position is irrelevant to the
    /// outcome being replayed).
    ///
    /// # Errors
    ///
    /// [`JiffyError::UnknownBlock`] if the cluster never had the block;
    /// [`JiffyError::Internal`] if it is not currently free.
    pub fn claim(&mut self, block: BlockId) -> Result<()> {
        if !self.homes.contains_key(&block) {
            return Err(JiffyError::UnknownBlock(block.raw()));
        }
        if let Some(pos) = self.free.iter().position(|b| *b == block) {
            self.free.remove(pos);
            return Ok(());
        }
        if self.parked.remove(&block) {
            return Ok(());
        }
        Err(JiffyError::Internal(format!(
            "claim of non-free block {block}"
        )))
    }

    /// Re-inserts a server with a *recorded* identity: the exact id,
    /// address and block ids a `ServerJoined` journal record captured.
    /// All blocks start free (replayed allocations then [`Self::claim`]
    /// them); both id generators are bumped past the restored ids so
    /// fresh registrations never collide.
    pub fn restore_server(
        &mut self,
        server: ServerId,
        addr: impl Into<String>,
        blocks: &[BlockId],
    ) {
        let addr = addr.into();
        for &b in blocks {
            self.homes.insert(b, server);
            self.free.push_back(b);
            self.block_ids.bump_to(b.raw() + 1);
        }
        self.servers.insert(
            server,
            ServerEntry {
                endpoint: Endpoint { server, addr },
                state: ServerState::Alive,
                blocks: blocks.to_vec(),
            },
        );
        self.departed.remove(&server);
        self.server_ids.bump_to(server.raw() + 1);
    }

    /// Serializable checkpoint of the whole table (snapshot mirror).
    /// Deterministic: servers/parked/departed are sorted, the free list
    /// keeps its FIFO order (allocation order must survive recovery).
    pub fn mirror(&self) -> FreeListMirror {
        let mut servers: Vec<ServerMirror> = self
            .servers
            .values()
            .map(|e| ServerMirror {
                server: e.endpoint.server,
                addr: e.endpoint.addr.clone(),
                state: match e.state {
                    ServerState::Alive => 0,
                    ServerState::Draining => 1,
                    ServerState::Dead => 2,
                },
                blocks: e.blocks.clone(),
            })
            .collect();
        servers.sort_by_key(|s| s.server);
        let mut parked: Vec<BlockId> = self.parked.iter().copied().collect();
        parked.sort_unstable();
        let mut departed: Vec<ServerId> = self.departed.iter().copied().collect();
        departed.sort_unstable();
        FreeListMirror {
            servers,
            free: self.free.iter().copied().collect(),
            parked,
            departed,
            next_server_id: self.server_ids.current(),
            next_block_id: self.block_ids.current(),
        }
    }

    /// Rebuilds a table from a checkpoint.
    ///
    /// # Errors
    ///
    /// [`JiffyError::Codec`] on an unknown server-state tag.
    pub fn from_mirror(m: &FreeListMirror) -> Result<Self> {
        let mut fl = Self::new();
        for s in &m.servers {
            let state = match s.state {
                0 => ServerState::Alive,
                1 => ServerState::Draining,
                2 => ServerState::Dead,
                other => {
                    return Err(JiffyError::Codec(format!(
                        "unknown server state tag {other} in freelist mirror"
                    )))
                }
            };
            for &b in &s.blocks {
                fl.homes.insert(b, s.server);
            }
            fl.servers.insert(
                s.server,
                ServerEntry {
                    endpoint: Endpoint {
                        server: s.server,
                        addr: s.addr.clone(),
                    },
                    state,
                    blocks: s.blocks.clone(),
                },
            );
        }
        fl.free = m.free.iter().copied().collect();
        fl.parked = m.parked.iter().copied().collect();
        fl.departed = m.departed.iter().copied().collect();
        fl.server_ids = IdGen::starting_at(m.next_server_id);
        fl.block_ids = IdGen::starting_at(m.next_block_id);
        Ok(fl)
    }

    fn park_free_blocks_of(&mut self, server: ServerId) {
        let block_set: Vec<BlockId> = match self.servers.get(&server) {
            Some(e) => e.blocks.clone(),
            None => return,
        };
        self.free.retain(|b| {
            if block_set.contains(b) {
                self.parked.insert(*b);
                false
            } else {
                true
            }
        });
    }
}

/// Serializable checkpoint of a [`FreeList`] (membership + free pool +
/// id-generator frontiers). Field order is the wire layout; see
/// [`FreeList::mirror`] for the determinism guarantees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FreeListMirror {
    /// Membership rows, sorted by server id.
    pub servers: Vec<ServerMirror>,
    /// Allocatable blocks in FIFO order.
    pub free: Vec<BlockId>,
    /// Parked blocks, sorted.
    pub parked: Vec<BlockId>,
    /// Tombstoned server ids, sorted.
    pub departed: Vec<ServerId>,
    /// Next server id the generator would issue.
    pub next_server_id: u64,
    /// Next block id the generator would issue.
    pub next_block_id: u64,
}

/// One membership row of a [`FreeListMirror`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerMirror {
    /// Server id.
    pub server: ServerId,
    /// Transport address.
    pub addr: String,
    /// Membership state: 0 = alive, 1 = draining, 2 = dead.
    pub state: u32,
    /// Blocks homed on this server, in registration order.
    pub blocks: Vec<BlockId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_allocate_release_cycle() {
        let mut fl = FreeList::new();
        let (s1, blocks) = fl.register_server("inproc:0", 4);
        assert_eq!(blocks.len(), 4);
        assert_eq!(fl.free_count(), 4);
        assert_eq!(fl.total_count(), 4);

        let loc = fl.allocate().unwrap();
        assert_eq!(loc.head().server, s1);
        assert_eq!(fl.free_count(), 3);
        assert!(!fl.is_free(loc.id()));

        fl.release(loc.id()).unwrap();
        assert_eq!(fl.free_count(), 4);
    }

    #[test]
    fn exhaustion_yields_out_of_blocks() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 2);
        fl.allocate().unwrap();
        fl.allocate().unwrap();
        assert!(matches!(fl.allocate(), Err(JiffyError::OutOfBlocks)));
    }

    #[test]
    fn double_free_and_unknown_free_are_rejected() {
        let mut fl = FreeList::new();
        let (_, blocks) = fl.register_server("inproc:0", 1);
        assert!(matches!(
            fl.release(BlockId(99)),
            Err(JiffyError::UnknownBlock(99))
        ));
        // blocks[0] is free already.
        assert!(fl.release(blocks[0]).is_err());
    }

    #[test]
    fn block_ids_are_unique_across_servers() {
        let mut fl = FreeList::new();
        let (_, b1) = fl.register_server("inproc:0", 3);
        let (_, b2) = fl.register_server("inproc:1", 3);
        for b in &b1 {
            assert!(!b2.contains(b));
        }
        assert_eq!(fl.total_count(), 6);
    }

    #[test]
    fn chains_prefer_distinct_servers() {
        let mut fl = FreeList::new();
        let (s1, _) = fl.register_server("inproc:0", 2);
        let (s2, _) = fl.register_server("inproc:1", 2);
        let (s3, _) = fl.register_server("inproc:2", 2);
        let loc = fl.allocate_chain(3).unwrap();
        let servers: Vec<ServerId> = loc.chain.iter().map(|r| r.server).collect();
        assert_eq!(servers.len(), 3);
        for s in [s1, s2, s3] {
            assert!(servers.contains(&s), "{s} missing from chain");
        }
        assert_eq!(fl.free_count(), 3);
    }

    #[test]
    fn chains_fall_back_to_shared_servers_when_needed() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 3);
        let loc = fl.allocate_chain(2).unwrap();
        assert_eq!(loc.chain.len(), 2);
        assert_ne!(loc.chain[0].block, loc.chain[1].block);
    }

    #[test]
    fn chain_allocation_is_all_or_nothing() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 1);
        assert!(matches!(fl.allocate_chain(2), Err(JiffyError::OutOfBlocks)));
        assert_eq!(fl.free_count(), 1);
    }

    #[test]
    fn allocation_round_robins_across_servers() {
        let mut fl = FreeList::new();
        fl.register_server("inproc:0", 2);
        fl.register_server("inproc:1", 2);
        // FIFO order: s0, s0, s1, s1 registered in that order; releases
        // go to the back.
        let a = fl.allocate().unwrap();
        fl.release(a.id()).unwrap();
        let b = fl.allocate().unwrap();
        assert_ne!(
            a.id(),
            b.id(),
            "released block goes to the back of the queue"
        );
    }

    #[test]
    fn location_of_unknown_block_errors_instead_of_panicking() {
        let fl = FreeList::new();
        assert!(matches!(
            fl.location_of(BlockId(7)),
            Err(JiffyError::UnknownBlock(7))
        ));
    }

    #[test]
    fn draining_parks_free_blocks_and_blocks_allocation() {
        let mut fl = FreeList::new();
        let (s1, _) = fl.register_server("inproc:0", 2);
        let (s2, _) = fl.register_server("inproc:1", 2);
        let loc = fl.allocate().unwrap(); // lands on s1 (FIFO)
        assert_eq!(loc.head().server, s1);
        fl.mark_draining(s1).unwrap();
        assert_eq!(fl.state_of(s1).unwrap(), ServerState::Draining);
        // Only s2's blocks remain allocatable.
        assert_eq!(fl.free_count(), 2);
        for _ in 0..2 {
            assert_eq!(fl.allocate().unwrap().head().server, s2);
        }
        // Releasing s1's used block parks it rather than freeing it.
        fl.release(loc.id()).unwrap();
        assert_eq!(fl.free_count(), 0);
        assert!(fl.is_free(loc.id()));
        assert_eq!(fl.used_blocks_on(s1).unwrap().len(), 0);
    }

    #[test]
    fn dead_server_reports_its_live_blocks() {
        let mut fl = FreeList::new();
        let (s1, _) = fl.register_server("inproc:0", 3);
        let a = fl.allocate().unwrap();
        let b = fl.allocate().unwrap();
        let live = fl.mark_dead(s1).unwrap();
        assert_eq!(live.len(), 2);
        assert!(live.contains(&a.id()) && live.contains(&b.id()));
        assert_eq!(fl.free_count(), 0);
        // A dead server still resolves (clients get its dead address and
        // a clean transport error), but allocation never touches it.
        assert!(fl.location_of(a.id()).is_ok());
        assert!(matches!(fl.allocate(), Err(JiffyError::OutOfBlocks)));
    }

    #[test]
    fn deregister_requires_empty_server_and_tombstones_the_id() {
        let mut fl = FreeList::new();
        let (s1, _) = fl.register_server("inproc:0", 2);
        let loc = fl.allocate().unwrap();
        fl.mark_draining(s1).unwrap();
        // Still hosting a live block: refuse.
        assert!(fl.deregister_server(s1).is_err());
        fl.release(loc.id()).unwrap();
        let ep = fl.deregister_server(s1).unwrap();
        assert_eq!(ep.server, s1);
        assert!(fl.is_departed(s1));
        assert_eq!(fl.total_count(), 0);
        assert!(matches!(
            fl.location_of(loc.id()),
            Err(JiffyError::UnknownBlock(_))
        ));
        // The departed ID is never re-issued.
        let (s2, _) = fl.register_server("inproc:1", 1);
        assert_ne!(s1, s2);
        assert!(s2.raw() > s1.raw());
    }

    #[test]
    fn server_loads_reflect_states_and_occupancy() {
        let mut fl = FreeList::new();
        let (s1, _) = fl.register_server("inproc:0", 2);
        let (s2, _) = fl.register_server("inproc:1", 2);
        fl.allocate().unwrap();
        fl.mark_draining(s2).unwrap();
        let loads = fl.server_loads();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].server, s1);
        assert_eq!(loads[0].used_blocks, 1);
        assert_eq!(loads[0].free_blocks, 1);
        assert_eq!(loads[1].state, ServerState::Draining);
        assert_eq!(loads[1].free_blocks, 2);
        let infos = fl.server_infos();
        assert_eq!(infos[1].state, "draining");
    }

    #[test]
    fn claim_removes_a_specific_block_and_rejects_allocated_ones() {
        let mut fl = FreeList::new();
        let (_, blocks) = fl.register_server("inproc:0", 3);
        fl.claim(blocks[1]).unwrap();
        assert_eq!(fl.free_count(), 2);
        assert!(!fl.is_free(blocks[1]));
        // FIFO order of the remaining blocks is preserved.
        assert_eq!(fl.allocate().unwrap().id(), blocks[0]);
        assert!(fl.claim(blocks[0]).is_err(), "already allocated");
        assert!(matches!(
            fl.claim(BlockId(99)),
            Err(JiffyError::UnknownBlock(99))
        ));
    }

    #[test]
    fn restore_server_reinstates_identity_and_bumps_generators() {
        let mut fl = FreeList::new();
        fl.restore_server(ServerId(5), "inproc:9", &[BlockId(10), BlockId(11)]);
        assert_eq!(fl.free_count(), 2);
        assert_eq!(fl.endpoint_of(ServerId(5)).unwrap().addr, "inproc:9");
        // Fresh registrations never collide with restored ids.
        let (s, blocks) = fl.register_server("inproc:1", 1);
        assert!(s.raw() > 5);
        assert!(blocks[0].raw() > 11);
    }

    #[test]
    fn mirror_round_trips_the_whole_table() {
        let mut fl = FreeList::new();
        let (_s1, _) = fl.register_server("inproc:0", 3);
        let (s2, _) = fl.register_server("inproc:1", 2);
        let a = fl.allocate().unwrap();
        fl.allocate().unwrap();
        fl.release(a.id()).unwrap(); // goes to the back of the queue
        fl.mark_draining(s2).unwrap();
        let m = fl.mirror();
        let back = FreeList::from_mirror(&m).unwrap();
        assert_eq!(back.mirror(), m);
        assert_eq!(back.free_count(), fl.free_count());
        assert_eq!(back.state_of(s2).unwrap(), ServerState::Draining);
        // Allocation order survives the round trip.
        let mut orig = fl;
        let mut rest = back;
        assert_eq!(orig.allocate().unwrap().id(), rest.allocate().unwrap().id());
    }
}
