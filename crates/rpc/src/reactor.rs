//! A small vendored epoll reactor — the c10k core under the TCP
//! transport.
//!
//! The thread-per-connection transport this replaces spawned one OS
//! thread per accepted session with blocking reads: fine for dozens of
//! connections, fatal for the paper's workload of thousands of
//! short-lived serverless lambdas fanning into one memory server. This
//! module provides the readiness-driven machinery [`crate::tcp`] is
//! built on, with **no async runtime dependency** — just nonblocking
//! sockets, `epoll`, and a fixed worker pool:
//!
//! - [`Reactor`] — one thread around `epoll_wait`; nonblocking fds are
//!   registered with an [`EventHandler`] and a level-triggered interest
//!   set, and readiness callbacks run on the reactor thread. Request
//!   *execution* never runs there — handlers only move bytes and
//!   schedule work.
//! - [`WorkerPool`] — a fixed set of executor threads fed through a
//!   condvar queue; the TCP server dispatches decoded request frames
//!   here, bounding execution concurrency regardless of connection
//!   count.
//! - [`EgressQueue`] — the PR 4 corked writer evolved into a per-socket
//!   egress queue: senders append length-prefixed frames under a short
//!   lock and the queue drains through the nonblocking socket, parking
//!   on `WouldBlock` until the reactor reports writability. Frame
//!   ordering is the append order; frames are never torn or reordered.
//! - [`WaiterTable`] / [`WaiterSlot`] — the PR 4 sharded rendezvous for
//!   pending client calls, unchanged in design: the reactor demuxes
//!   response frames into it instead of a per-connection demux thread.
//!
//! The syscall surface is five functions (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `close`, plus a `UnixStream` self-wake pipe) declared
//! directly against the platform libc — nothing to vendor, nothing to
//! install.
//!
//! Concurrency invariants (verified by `tests/loom_reactor.rs` models):
//!
//! - a registered waiter always observes exactly one terminal outcome —
//!   delivery, connection-failure, or its own timeout unregistration —
//!   and its pooled slot is recycled at most once;
//! - egress frames drain in append order across any interleaving of
//!   senders and writability events, without loss or tearing.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use jiffy_common::{JiffyError, Result};
use jiffy_proto::{frame, Envelope};
use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::{Arc, Condvar, Mutex};

/// Raw epoll bindings. The symbols live in the platform libc, which
/// every Rust binary on Linux links already; declaring them here avoids
/// both an external crate and a vendored stand-in.
mod sys {
    use std::io;
    use std::os::unix::io::RawFd;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// `EPOLL_CLOEXEC` == `O_CLOEXEC` (same value on every Linux arch).
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// The kernel ABI packs `struct epoll_event` on x86-64 (and only
    /// there); everywhere else it has natural layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub fn create() -> io::Result<RawFd> {
        // SAFETY: epoll_create1 takes a flag word and returns an fd or
        // -1; no pointers are involved.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `ev` is a valid epoll_event for the duration of the
        // call; DEL ignores the pointer on modern kernels but passing a
        // valid one is correct on all of them.
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn wait(epfd: RawFd, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer pointer/length pair describes `events`,
            // which outlives the call.
            let n =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
            if n >= 0 {
                return Ok(n as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }

    pub fn close_fd(fd: RawFd) {
        // SAFETY: the caller owns `fd` and never uses it again.
        let _ = unsafe { close(fd) };
    }
}

/// Reserved token for the reactor's self-wake pipe.
const WAKE_TOKEN: u64 = u64::MAX;

/// How many readiness events one `epoll_wait` call collects.
const EVENT_BATCH: usize = 256;

/// Readiness callback target: one registered nonblocking fd (a listener,
/// a server session, or a client connection).
///
/// `on_ready` runs on the reactor thread, so implementations must only
/// move bytes and schedule work — never execute a request or block.
pub trait EventHandler: Send + Sync {
    /// The fd this handler was registered with. Must stay valid until
    /// the handler is deregistered (the handler owns the socket).
    fn fd(&self) -> RawFd;

    /// Called with the readiness of the fd (level-triggered; error/hangup
    /// conditions report as both readable and writable so both paths
    /// observe the failure). Return `false` to have the reactor
    /// deregister the fd and drop its handler reference.
    fn on_ready(&self, readable: bool, writable: bool) -> bool;
}

/// A readiness-driven event loop: one thread multiplexing any number of
/// nonblocking fds through `epoll_wait`.
pub struct Reactor {
    epfd: RawFd,
    wake_w: UnixStream,
    handlers: Mutex<HashMap<u64, Arc<dyn EventHandler>>>,
    next_token: AtomicU64,
    stop: AtomicBool,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    /// Creates the epoll instance, the self-wake pipe, and the reactor
    /// thread (named `jiffy-reactor-{name}`).
    ///
    /// # Errors
    ///
    /// Fails if the epoll instance, the wake pipe, or the thread cannot
    /// be created.
    pub fn start(name: &str) -> Result<Arc<Self>> {
        let epfd = sys::create().map_err(|e| JiffyError::Rpc(format!("epoll_create1: {e}")))?;
        let (wake_r, wake_w) = match UnixStream::pair() {
            Ok(p) => p,
            Err(e) => {
                sys::close_fd(epfd);
                return Err(JiffyError::Rpc(format!("wake pipe: {e}")));
            }
        };
        let arm = (|| -> std::io::Result<()> {
            wake_r.set_nonblocking(true)?;
            wake_w.set_nonblocking(true)?;
            sys::ctl(
                epfd,
                sys::EPOLL_CTL_ADD,
                std::os::unix::io::AsRawFd::as_raw_fd(&wake_r),
                sys::EPOLLIN,
                WAKE_TOKEN,
            )
        })();
        if let Err(e) = arm {
            sys::close_fd(epfd);
            return Err(JiffyError::Rpc(format!("arm wake pipe: {e}")));
        }
        let reactor = Arc::new(Self {
            epfd,
            wake_w,
            handlers: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            stop: AtomicBool::new(false),
            thread: Mutex::new(None),
        });
        let r2 = reactor.clone();
        let thread = std::thread::Builder::new()
            .name(format!("jiffy-reactor-{name}"))
            .spawn(move || r2.run(wake_r))
            .map_err(|e| JiffyError::Rpc(format!("spawn reactor thread: {e}")))?;
        *reactor.thread.lock() = Some(thread);
        Ok(reactor)
    }

    fn run(&self, mut wake_r: UnixStream) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; EVENT_BATCH];
        let mut drain = [0u8; 64];
        while let Ok(n) = sys::wait(self.epfd, &mut events, -1) {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            for ev in &events[..n] {
                let token = ev.data;
                let bits = ev.events;
                if token == WAKE_TOKEN {
                    while matches!(wake_r.read(&mut drain), Ok(n) if n > 0) {}
                    continue;
                }
                let handler = self.handlers.lock().get(&token).cloned();
                let Some(h) = handler else { continue };
                let failed = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                let readable = failed || bits & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0;
                let writable = failed || bits & sys::EPOLLOUT != 0;
                if !h.on_ready(readable, writable) {
                    self.deregister(token, h.fd());
                }
            }
        }
    }

    /// Reserves a registration token. Handing the token out *before*
    /// [`Reactor::register_at`] lets a handler learn its own token prior
    /// to the first readiness dispatch (which can arrive the instant the
    /// fd is armed).
    pub fn token(&self) -> u64 {
        self.next_token.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers `handler`'s fd under a token from [`Reactor::token`]
    /// with the given initial interest.
    ///
    /// # Errors
    ///
    /// Fails if the reactor is stopped or the kernel rejects the fd.
    pub fn register_at(
        &self,
        token: u64,
        handler: Arc<dyn EventHandler>,
        read: bool,
        write: bool,
    ) -> Result<()> {
        if self.stop.load(Ordering::SeqCst) {
            return Err(JiffyError::Rpc("reactor stopped".into()));
        }
        let fd = handler.fd();
        self.handlers.lock().insert(token, handler);
        if let Err(e) = sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            interest_bits(read, write),
            token,
        ) {
            self.handlers.lock().remove(&token);
            return Err(JiffyError::Rpc(format!("epoll register: {e}")));
        }
        Ok(())
    }

    /// Registers `handler`'s fd with the given initial interest and
    /// returns its token.
    ///
    /// # Errors
    ///
    /// Fails if the reactor is stopped or the kernel rejects the fd.
    pub fn register(&self, handler: Arc<dyn EventHandler>, read: bool, write: bool) -> Result<u64> {
        let token = self.token();
        self.register_at(token, handler, read, write)?;
        Ok(token)
    }

    /// Replaces the interest set of a registered fd. Callable from any
    /// thread (epoll is thread-safe); used by workers and egress senders
    /// to arm/disarm writability without bouncing through the reactor.
    ///
    /// # Errors
    ///
    /// Fails if the fd is no longer registered (e.g. torn down
    /// concurrently) — callers treat that as connection death.
    pub fn rearm(&self, token: u64, fd: RawFd, read: bool, write: bool) -> Result<()> {
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            interest_bits(read, write),
            token,
        )
        .map_err(|e| JiffyError::Rpc(format!("epoll rearm: {e}")))
    }

    /// Removes an fd from the epoll set and drops the reactor's handler
    /// reference (the fd itself closes when the last handler `Arc` does).
    pub fn deregister(&self, token: u64, fd: RawFd) {
        let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, token);
        self.handlers.lock().remove(&token);
    }

    /// Number of currently registered handlers (excluding the wake pipe).
    pub fn registered(&self) -> usize {
        self.handlers.lock().len()
    }

    /// Wakes the reactor thread out of `epoll_wait`.
    pub fn wake(&self) {
        let _ = (&self.wake_w).write(&[1]);
    }

    /// Stops and joins the reactor thread, then drops every handler
    /// reference. Idempotent.
    pub fn shutdown(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            self.wake();
            if let Some(t) = self.thread.lock().take() {
                let _ = t.join();
            }
            self.handlers.lock().clear();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        // The reactor thread holds an Arc, so Drop can only run after it
        // exited (or was never joined because shutdown was not called —
        // impossible, since the thread's Arc would still be live).
        sys::close_fd(self.epfd);
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Reactor(handlers={})", self.registered())
    }
}

/// Tracks the desired interest set of one registered fd so that
/// arm/disarm requests racing from different threads (a worker parking
/// egress, the reactor draining it) serialize into a coherent final
/// state instead of clobbering each other's epoll `MOD`s.
pub struct Interest {
    state: Mutex<(bool, bool)>,
}

impl Interest {
    /// Creates a cell mirroring the interest the fd was registered with.
    pub fn new(read: bool, write: bool) -> Self {
        Self {
            state: Mutex::new((read, write)),
        }
    }

    /// Recomputes the interest set under the cell's lock and pushes it to
    /// the kernel if it changed.
    ///
    /// `f` receives the currently recorded `(read, write)` interest and
    /// returns the desired one. Crucially, `f` runs *inside* the lock, so
    /// callers derive the decision from **live** state (e.g. "does the
    /// egress queue hold parked bytes *right now*") rather than from a
    /// stale operation result — with stale inputs, a drain's disarm can
    /// race a sender's arm and strand queued frames with writability
    /// disarmed. With live inputs, whichever update serializes last wins
    /// with a decision that matches the state it observed.
    ///
    /// # Errors
    ///
    /// Propagates [`Reactor::rearm`] failures (fd already torn down).
    pub fn update<F>(&self, reactor: &Reactor, token: u64, fd: RawFd, f: F) -> Result<()>
    where
        F: FnOnce(bool, bool) -> (bool, bool),
    {
        let mut g = self.state.lock();
        let next = f(g.0, g.1);
        if next == *g {
            return Ok(());
        }
        *g = next;
        reactor.rearm(token, fd, next.0, next.1)
    }
}

fn interest_bits(read: bool, write: bool) -> u32 {
    let mut bits = sys::EPOLLRDHUP;
    if read {
        bits |= sys::EPOLLIN;
    }
    if write {
        bits |= sys::EPOLLOUT;
    }
    bits
}

/// Where [`EgressQueue`] bytes go: a nonblocking byte sink. Implemented
/// for `TcpStream`; loom models substitute a scripted sink that injects
/// short writes and `WouldBlock` at chosen points.
pub trait EgressSink {
    /// Writes a prefix of `buf`, returning how many bytes were accepted.
    ///
    /// # Errors
    ///
    /// `WouldBlock` parks the queue until writability; other errors break
    /// the connection.
    fn sink_write(&self, buf: &[u8]) -> std::io::Result<usize>;
}

impl EgressSink for TcpStream {
    fn sink_write(&self, buf: &[u8]) -> std::io::Result<usize> {
        let mut s: &TcpStream = self;
        s.write(buf)
    }
}

/// Outcome of a send or drain on an [`EgressQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendStatus {
    /// Everything queued so far is on the wire.
    Flushed,
    /// The socket would block; bytes remain queued and the caller must
    /// (keep) the fd armed for writability so the reactor drains them.
    Parked,
}

struct EgressState {
    /// Length-prefixed frames packed back to back; `[head..]` is unsent.
    buf: Vec<u8>,
    head: usize,
    /// `Some(reason)` once the sink failed or the connection closed.
    broken: Option<String>,
    /// A `WouldBlock` left bytes queued; the drain is owed to the next
    /// writability event rather than to senders.
    parked: bool,
}

/// Per-socket egress queue: the PR 4 corked writer adapted to
/// nonblocking sockets.
///
/// Senders append one length-prefixed frame under the lock and drain the
/// queue through the sink while they hold it (the sink never blocks, so
/// the critical section is bounded by a kernel buffer copy). A burst of
/// concurrent small sends still collapses into one big write. When the
/// socket's buffer fills, the queue parks: bytes stay queued, senders
/// return immediately, and the next writability event drains. Senders
/// block (on a condvar, not the socket) only once the queue holds more
/// than `cap` unsent bytes — backpressure for peers that stop reading.
pub struct EgressQueue<S> {
    sink: S,
    state: Mutex<EgressState>,
    drained: Condvar,
    cap: usize,
}

impl<S: EgressSink> EgressQueue<S> {
    /// Creates a queue with the process-wide default cap
    /// ([`jiffy_common::config::rpc_egress_cap`]).
    pub fn new(sink: S) -> Self {
        Self::with_cap(sink, jiffy_common::rpc_egress_cap())
    }

    /// Creates a queue with an explicit unsent-byte cap (tests/models).
    pub fn with_cap(sink: S, cap: usize) -> Self {
        Self {
            sink,
            state: Mutex::new(EgressState {
                buf: Vec::new(),
                head: 0,
                broken: None,
                parked: false,
            }),
            drained: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// The sink this queue writes to.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Unsent bytes currently queued.
    pub fn pending(&self) -> usize {
        let st = self.state.lock();
        st.buf.len() - st.head
    }

    /// True while a drain is owed to a writability event: the queue hit
    /// `WouldBlock` and holds bytes the reactor must flush. This is the
    /// *live* input for [`Interest::update`] write-interest decisions.
    pub fn needs_write(&self) -> bool {
        let st = self.state.lock();
        st.parked && st.broken.is_none()
    }

    /// Queues `payload` as one frame and drains as far as the socket
    /// allows. `Ok(Parked)` means bytes remain queued and the caller must
    /// ensure the fd is armed for writability.
    ///
    /// Blocks (without holding the socket) while more than the cap of
    /// unsent bytes is queued; a frame destined for an empty queue is
    /// always admitted, so frames up to `MAX_FRAME_LEN` pass any cap.
    ///
    /// # Errors
    ///
    /// Fails if the connection is broken or the frame exceeds
    /// [`frame`]'s `MAX_FRAME_LEN`.
    pub fn send(&self, payload: &[u8]) -> Result<SendStatus> {
        let mut st = self.state.lock();
        loop {
            if let Some(reason) = &st.broken {
                return Err(JiffyError::Rpc(reason.clone()));
            }
            let pending = st.buf.len() - st.head;
            if pending == 0 || pending <= self.cap {
                break;
            }
            self.drained.wait(&mut st);
        }
        frame::encode_frame(payload, &mut st.buf)?;
        if st.parked {
            // A drain is owed to the reactor's next writability event;
            // this frame rides it.
            return Ok(SendStatus::Parked);
        }
        self.drain_locked(&mut st)
    }

    /// Reactor side: the socket reported writable — drain queued bytes.
    ///
    /// # Errors
    ///
    /// Propagates sink failures; the caller tears the connection down.
    pub fn on_writable(&self) -> Result<SendStatus> {
        let mut st = self.state.lock();
        if let Some(reason) = &st.broken {
            return Err(JiffyError::Rpc(reason.clone()));
        }
        st.parked = false;
        self.drain_locked(&mut st)
    }

    /// Marks the queue broken (connection teardown), waking any sender
    /// blocked on the cap.
    pub fn fail(&self, reason: &str) {
        let mut st = self.state.lock();
        if st.broken.is_none() {
            st.broken = Some(reason.to_string());
        }
        st.buf.clear();
        st.head = 0;
        self.drained.notify_all();
    }

    fn drain_locked(&self, st: &mut jiffy_sync::MutexGuard<'_, EgressState>) -> Result<SendStatus> {
        while st.head < st.buf.len() {
            let wrote = {
                let window = &st.buf[st.head..];
                self.sink.sink_write(window)
            };
            match wrote {
                Ok(0) => {
                    st.broken = Some("connection closed by peer".into());
                    self.drained.notify_all();
                    return Err(JiffyError::Rpc("connection closed by peer".into()));
                }
                Ok(n) => {
                    st.head += n;
                    self.drained.notify_all();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    st.parked = true;
                    // Reclaim the dead prefix so a long park does not pin
                    // already-sent bytes.
                    if st.head >= 64 * 1024 {
                        let head = st.head;
                        st.buf.drain(..head);
                        st.head = 0;
                    }
                    return Ok(SendStatus::Parked);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    let msg = format!("egress write failed: {e}");
                    st.broken = Some(msg.clone());
                    self.drained.notify_all();
                    return Err(JiffyError::Rpc(msg));
                }
            }
        }
        st.buf.clear();
        st.head = 0;
        self.drained.notify_all();
        Ok(SendStatus::Flushed)
    }
}

/// A fixed pool of executor threads fed through a condvar queue.
///
/// The TCP server submits ready sessions here; the pool bounds execution
/// concurrency no matter how many connections the reactor multiplexes.
pub struct WorkerPool<J: Send + 'static> {
    shared: Arc<PoolShared<J>>,
    workers: Mutex<Vec<Worker>>,
}

struct Worker {
    handle: std::thread::JoinHandle<()>,
    exited: Arc<AtomicBool>,
}

struct PoolShared<J> {
    queue: Mutex<VecDeque<J>>,
    available: Condvar,
    stop: AtomicBool,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `n` worker threads (named `{name}-{i}`), each running
    /// `run` on every job it pops.
    ///
    /// # Errors
    ///
    /// Fails if no worker thread could be spawned; a partially spawned
    /// pool (rare) proceeds with the threads it got.
    pub fn start(n: usize, name: &str, run: impl Fn(J) + Send + Sync + 'static) -> Result<Self> {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let run = Arc::new(run);
        let mut workers = Vec::new();
        let mut first_err = None;
        for i in 0..n.max(1) {
            let sh = shared.clone();
            let r = run.clone();
            let exited = Arc::new(AtomicBool::new(false));
            let ex2 = exited.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("{name}-{i}"))
                .spawn(move || {
                    loop {
                        let job = {
                            let mut q = sh.queue.lock();
                            loop {
                                if let Some(j) = q.pop_front() {
                                    break Some(j);
                                }
                                if sh.stop.load(Ordering::SeqCst) {
                                    break None;
                                }
                                sh.available.wait(&mut q);
                            }
                        };
                        match job {
                            Some(j) => r(j),
                            None => break,
                        }
                    }
                    ex2.store(true, Ordering::SeqCst);
                });
            match spawned {
                Ok(handle) => workers.push(Worker { handle, exited }),
                Err(e) => first_err = Some(e),
            }
        }
        if workers.is_empty() {
            return Err(JiffyError::Rpc(format!(
                "spawn worker pool: {}",
                first_err.map(|e| e.to_string()).unwrap_or_default()
            )));
        }
        Ok(Self {
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Enqueues a job; returns `false` (dropping the job) if the pool is
    /// stopped.
    pub fn submit(&self, job: J) -> bool {
        if self.shared.stop.load(Ordering::SeqCst) {
            return false;
        }
        self.shared.queue.lock().push_back(job);
        self.shared.available.notify_one();
        true
    }

    /// Number of worker threads in the pool.
    pub fn threads(&self) -> usize {
        self.workers.lock().len()
    }

    /// Jobs queued but not yet picked up.
    pub fn backlog(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Stops the pool: no further jobs are accepted, queued jobs are
    /// dropped, idle workers exit and are joined. A worker stuck inside a
    /// job (e.g. a service handler that blocks forever) is *detached*
    /// after a short grace period instead of wedging shutdown.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.lock().clear();
        self.shared.available.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock());
        let deadline = Instant::now() + Duration::from_millis(500);
        while Instant::now() < deadline && !workers.iter().all(|w| w.exited.load(Ordering::SeqCst))
        {
            std::thread::sleep(Duration::from_millis(2));
        }
        for w in workers {
            if w.exited.load(Ordering::SeqCst) {
                let _ = w.handle.join();
            }
            // else: detached — the thread exits when its job returns.
        }
    }
}

/// One parked call: the calling thread blocks on `cv` until the reactor
/// deposits the reply (or the deadline passes). Slots are pooled per
/// shard, so a steady-state call registers a waiter without allocating.
#[derive(Default)]
pub struct WaiterSlot {
    reply: Mutex<Option<Result<Envelope>>>,
    cv: Condvar,
}

impl WaiterSlot {
    /// Deposits a terminal outcome and wakes the waiter.
    pub fn deliver(&self, r: Result<Envelope>) {
        *self.reply.lock() = Some(r);
        self.cv.notify_one();
    }

    /// Waits up to `timeout` for a reply; `None` on deadline.
    pub fn wait_for_reply(&self, timeout: Duration) -> Option<Result<Envelope>> {
        let deadline = Instant::now() + timeout;
        let mut g = self.reply.lock();
        loop {
            if let Some(r) = g.take() {
                return Some(r);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if self.cv.wait_for(&mut g, deadline - now) {
                return g.take();
            }
        }
    }

    /// Waits without a deadline. Used only once the demux side has
    /// claimed this slot, when delivery is imminent.
    pub fn wait_reply(&self) -> Result<Envelope> {
        let mut g = self.reply.lock();
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            self.cv.wait(&mut g);
        }
    }
}

const WAITER_SHARDS: u64 = 8;
const SLOT_POOL_PER_SHARD: usize = 32;

struct WaiterShard {
    live: HashMap<u64, Arc<WaiterSlot>>,
    free: Vec<Arc<WaiterSlot>>,
}

/// Pending calls keyed by request id, sharded to keep the register /
/// claim handoff off a single hot mutex, with a per-shard slab of free
/// slots so completed calls donate their parking spot to the next one.
///
/// Exactly the PR 4 design; the reactor rewrite moved it here (public)
/// so the `loom_reactor` models can drive the claim / unregister /
/// fail-all races directly.
pub struct WaiterTable {
    shards: Vec<Mutex<WaiterShard>>,
}

impl Default for WaiterTable {
    fn default() -> Self {
        Self::new()
    }
}

impl WaiterTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            shards: (0..WAITER_SHARDS)
                .map(|_| {
                    Mutex::new(WaiterShard {
                        live: HashMap::new(),
                        free: Vec::new(),
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<WaiterShard> {
        &self.shards[(id % WAITER_SHARDS) as usize]
    }

    /// Parks a new waiter for `id`, reusing a pooled slot when possible.
    pub fn register(&self, id: u64) -> Arc<WaiterSlot> {
        let mut sh = self.shard(id).lock();
        let slot = sh
            .free
            .pop()
            .unwrap_or_else(|| Arc::new(WaiterSlot::default()));
        sh.live.insert(id, slot.clone());
        slot
    }

    /// Demux side: claims (removes) the waiter for a reply id. `None`
    /// means the caller already timed out and the reply is discarded.
    pub fn claim(&self, id: u64) -> Option<Arc<WaiterSlot>> {
        self.shard(id).lock().live.remove(&id)
    }

    /// Caller side: unregisters `slot` after a timeout or send failure.
    /// Returns `false` if the demux side claimed it concurrently (a
    /// reply is in the middle of being delivered).
    pub fn unregister(&self, id: u64, slot: &Arc<WaiterSlot>) -> bool {
        let mut sh = self.shard(id).lock();
        match sh.live.get(&id) {
            Some(s) if Arc::ptr_eq(s, slot) => {
                sh.live.remove(&id);
                true
            }
            _ => false,
        }
    }

    /// Returns a completed (and no longer registered) slot to its pool.
    pub fn recycle(&self, id: u64, slot: Arc<WaiterSlot>) {
        *slot.reply.lock() = None;
        let mut sh = self.shard(id).lock();
        if sh.free.len() < SLOT_POOL_PER_SHARD {
            sh.free.push(slot);
        }
    }

    /// Connection death: wakes every pending call with an error.
    pub fn fail_all(&self, msg: &str) {
        for shard in &self.shards {
            let drained: Vec<_> = shard.lock().live.drain().collect();
            for (_, slot) in drained {
                slot.deliver(Err(JiffyError::Rpc(msg.into())));
            }
        }
    }

    /// Pooled free slots across all shards (model/test introspection).
    #[doc(hidden)]
    pub fn free_slots(&self) -> usize {
        self.shards.iter().map(|s| s.lock().free.len()).sum()
    }

    /// Live (pending) waiters across all shards.
    pub fn live(&self) -> usize {
        self.shards.iter().map(|s| s.lock().live.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_sync::atomic::AtomicUsize;

    #[test]
    fn worker_pool_runs_jobs_and_shuts_down() {
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = done.clone();
        let pool = WorkerPool::start(3, "test-pool", move |n: usize| {
            d2.fetch_add(n, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(pool.threads(), 3);
        for i in 1..=10 {
            assert!(pool.submit(i));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) != 55 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(done.load(Ordering::SeqCst), 55);
        pool.shutdown();
        assert!(!pool.submit(99), "stopped pool refuses jobs");
    }

    #[test]
    fn egress_queue_caps_and_fails_cleanly() {
        struct NullSink;
        impl EgressSink for NullSink {
            fn sink_write(&self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
        }
        let q = EgressQueue::with_cap(NullSink, 1024);
        assert_eq!(q.send(b"hello").unwrap(), SendStatus::Flushed);
        assert_eq!(q.pending(), 0);
        q.fail("teardown");
        assert!(q.send(b"x").is_err(), "broken queue refuses frames");
    }

    #[test]
    fn egress_queue_parks_on_wouldblock_and_drains_on_writable() {
        use jiffy_sync::Mutex as M;
        /// Accepts `budget` bytes, then `WouldBlock`s until topped up.
        struct Throttled {
            budget: M<usize>,
            out: M<Vec<u8>>,
        }
        impl EgressSink for Throttled {
            fn sink_write(&self, buf: &[u8]) -> std::io::Result<usize> {
                let mut b = self.budget.lock();
                if *b == 0 {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(*b);
                *b -= n;
                self.out.lock().extend_from_slice(&buf[..n]);
                Ok(n)
            }
        }
        let q = EgressQueue::with_cap(
            Throttled {
                budget: M::new(6),
                out: M::new(Vec::new()),
            },
            1 << 20,
        );
        // 4-byte prefix + 5 payload bytes = 9 > 6: parks mid-frame.
        assert_eq!(q.send(b"hello").unwrap(), SendStatus::Parked);
        assert_eq!(q.pending(), 3);
        // Another frame while parked just queues.
        assert_eq!(q.send(b"ab").unwrap(), SendStatus::Parked);
        *q.sink().budget.lock() = usize::MAX;
        assert_eq!(q.on_writable().unwrap(), SendStatus::Flushed);
        assert_eq!(q.pending(), 0);
        // The wire holds both frames, in order, byte-for-byte.
        let mut expect = Vec::new();
        frame::encode_frame(b"hello", &mut expect).unwrap();
        frame::encode_frame(b"ab", &mut expect).unwrap();
        assert_eq!(*q.sink().out.lock(), expect);
    }

    #[test]
    fn reactor_starts_registers_and_shuts_down() {
        let reactor = Reactor::start("unit").unwrap();
        assert_eq!(reactor.registered(), 0);
        reactor.wake();
        reactor.shutdown();
        assert!(
            reactor.register(Arc::new(NeverReady), true, false).is_err(),
            "stopped reactor refuses registration"
        );
    }

    struct NeverReady;
    impl EventHandler for NeverReady {
        fn fd(&self) -> RawFd {
            -1
        }
        fn on_ready(&self, _r: bool, _w: bool) -> bool {
            true
        }
    }
}
