//! RPC layer for Jiffy.
//!
//! The paper builds its data plane on Apache Thrift with asynchronous
//! framed IO so that many client sessions multiplex over non-blocking
//! connections (§4.2.2). This crate provides the equivalent:
//!
//! - [`service`] — the [`Service`] trait implemented by the controller
//!   and the memory servers, plus per-session push handles used by the
//!   notification subsystem.
//! - [`inproc`] — a zero-copy in-process transport (used by tests, the
//!   simulator and single-process deployments).
//! - [`reactor`] — the vendored epoll reactor core: readiness-driven
//!   event loop, fixed worker pool, per-socket egress queues and the
//!   sharded waiter table (DESIGN.md §12).
//! - [`tcp`] — a framed TCP transport on the reactor: one event loop
//!   multiplexes every session, so thousands of concurrent connections
//!   cost zero threads, with concurrent in-flight requests per
//!   connection.
//! - [`fabric`] — unified addressing (`inproc:N` / `tcp:host:port`),
//!   connection pooling and an optional latency injector for experiments.
//! - [`fault`] — seeded, deterministic fault injection ([`FaultInjector`]
//!   / [`ChaosConn`]): per-address drop, delay, duplicate, transient
//!   error and partition rules, togglable at runtime.
//! - [`retry`] — exponential-backoff [`RetryPolicy`] for transport-level
//!   faults.
//! - [`dedup`] — server-side replay cache ([`Deduplicated`]) making
//!   same-id retries execute exactly once per session.
//!
//! [`Service`]: service::Service

pub mod dedup;
pub mod fabric;
pub mod fault;
pub mod inproc;
pub mod reactor;
pub mod retry;
pub mod service;
pub mod tcp;

pub use dedup::{Deduplicated, ReplayWindow};
pub use fabric::{Fabric, LatencyInjector};
pub use fault::{ChaosConn, FaultInjector, FaultRule, FaultStats};
pub use inproc::InprocHub;
pub use reactor::{
    EgressQueue, EgressSink, EventHandler, Interest, Reactor, SendStatus, WaiterSlot, WaiterTable,
    WorkerPool,
};
pub use retry::RetryPolicy;
pub use service::{ClientConn, PushCallback, Service, SessionHandle};
pub use tcp::{TcpServerHandle, TransportStats};
