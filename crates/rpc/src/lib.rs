//! RPC layer for Jiffy.
//!
//! The paper builds its data plane on Apache Thrift with asynchronous
//! framed IO so that many client sessions multiplex over non-blocking
//! connections (§4.2.2). This crate provides the equivalent:
//!
//! - [`service`] — the [`Service`] trait implemented by the controller
//!   and the memory servers, plus per-session push handles used by the
//!   notification subsystem.
//! - [`inproc`] — a zero-copy in-process transport (used by tests, the
//!   simulator and single-process deployments).
//! - [`tcp`] — a framed TCP transport with a per-connection demultiplexer
//!   thread, allowing concurrent in-flight requests per connection.
//! - [`fabric`] — unified addressing (`inproc:N` / `tcp:host:port`),
//!   connection pooling and an optional latency injector for experiments.
//!
//! [`Service`]: service::Service

pub mod fabric;
pub mod inproc;
pub mod service;
pub mod tcp;

pub use fabric::{Fabric, LatencyInjector};
pub use inproc::InprocHub;
pub use service::{ClientConn, PushCallback, Service, SessionHandle};
pub use tcp::TcpServerHandle;
