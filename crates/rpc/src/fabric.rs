//! Unified connector, connection pooling and latency injection.
//!
//! Every Jiffy address is a string: `inproc:N` (in-process hub) or
//! `tcp:host:port`. The [`Fabric`] resolves either kind, caches one
//! connection per address (connections multiplex concurrent requests,
//! so one per address suffices), and can wrap connections in a
//! [`LatencyInjector`] to emulate datacenter RTTs in experiments run on a
//! single machine.

use jiffy_sync::Arc;
use std::collections::HashMap;
use std::time::Duration;

use jiffy_common::Result;
use jiffy_proto::Envelope;
use jiffy_sync::Mutex;

use crate::fault::{ChaosConn, FaultInjector};
use crate::inproc::InprocHub;
use crate::service::{ClientConn, Connection, PushCallback};
use crate::tcp;

/// Connection factory + pool over both transports.
#[derive(Clone)]
pub struct Fabric {
    hub: Arc<InprocHub>,
    pool: Arc<Mutex<HashMap<String, ClientConn>>>,
    injected_rtt: Option<Duration>,
    injector: Option<Arc<FaultInjector>>,
}

impl Fabric {
    /// Creates a fabric with a fresh in-process hub.
    pub fn new() -> Self {
        Self::with_hub(InprocHub::new())
    }

    /// Creates a fabric around an existing hub (so services registered by
    /// a cluster bootstrap are reachable).
    pub fn with_hub(hub: Arc<InprocHub>) -> Self {
        Self {
            hub,
            pool: Arc::new(Mutex::new(HashMap::new())),
            injected_rtt: None,
            injector: None,
        }
    }

    /// Returns a copy of this fabric whose *new* connections add `rtt` of
    /// artificial round-trip delay to every call (half on send, half on
    /// receive conceptually; implemented as one sleep per call).
    pub fn with_injected_rtt(mut self, rtt: Duration) -> Self {
        self.injected_rtt = Some(rtt);
        self.pool = Arc::new(Mutex::new(HashMap::new()));
        self
    }

    /// Returns a copy of this fabric whose *new* connections are wrapped
    /// in a [`ChaosConn`] driven by `injector`. The fast path of a fabric
    /// without an injector is untouched: the wrapper only exists on
    /// connections dialed through a fabric configured this way.
    pub fn with_fault_injection(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self.pool = Arc::new(Mutex::new(HashMap::new()));
        self
    }

    /// The fault injector driving this fabric's connections, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// The in-process hub backing `inproc:` addresses.
    pub fn hub(&self) -> &Arc<InprocHub> {
        &self.hub
    }

    /// Returns a pooled connection to `addr`, dialing on first use.
    ///
    /// # Errors
    ///
    /// Fails if the address is malformed or unreachable.
    pub fn connect(&self, addr: &str) -> Result<ClientConn> {
        if let Some(conn) = self.pool.lock().get(addr) {
            return Ok(conn.clone());
        }
        let conn = self.dial(addr)?;
        let mut pool = self.pool.lock();
        // Double-checked: another thread may have dialed concurrently.
        Ok(pool.entry(addr.to_string()).or_insert(conn).clone())
    }

    /// Dials a fresh, unpooled connection (used where per-session push
    /// callbacks must not be shared, e.g. notification listeners).
    pub fn dial(&self, addr: &str) -> Result<ClientConn> {
        let mut conn = if addr.starts_with("inproc:") {
            self.hub.connect(addr)?
        } else {
            tcp::connect_tcp(addr)?
        };
        if let Some(injector) = &self.injector {
            conn = ClientConn(Arc::new(ChaosConn::new(conn, addr, injector.clone())));
        }
        Ok(match self.injected_rtt {
            Some(rtt) => ClientConn(Arc::new(LatencyInjector { inner: conn, rtt })),
            None => conn,
        })
    }

    /// Drops the pooled connection for `addr` (e.g. after an RPC error,
    /// to force a re-dial on next use).
    pub fn evict(&self, addr: &str) {
        if let Some(conn) = self.pool.lock().remove(addr) {
            conn.close();
        }
    }

    /// Closes every pooled connection.
    pub fn close_all(&self) {
        for (_, conn) in self.pool.lock().drain() {
            conn.close();
        }
    }
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fabric(rtt={:?})", self.injected_rtt)
    }
}

/// Wraps a connection, adding a fixed delay to every call — used to give
/// in-process experiments datacenter-like round-trip times.
pub struct LatencyInjector {
    inner: ClientConn,
    rtt: Duration,
}

impl Connection for LatencyInjector {
    fn call(&self, req: Envelope) -> Result<Envelope> {
        std::thread::sleep(self.rtt);
        self.inner.call(req)
    }

    fn set_push_callback(&self, cb: PushCallback) {
        self.inner.set_push_callback(cb);
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Service, SessionHandle};
    use jiffy_proto::{DataRequest, DataResponse};

    struct Echo;

    impl Service for Echo {
        fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
            match req {
                Envelope::DataReq { id, .. } => Envelope::DataResp {
                    id,
                    resp: Ok(DataResponse::Pong),
                },
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn pooled_connections_are_shared() {
        let fabric = Fabric::new();
        let addr = fabric.hub().register(Arc::new(Echo));
        let a = fabric.connect(&addr).unwrap();
        let b = fabric.connect(&addr).unwrap();
        // Both are handles onto the same underlying connection.
        assert!(Arc::ptr_eq(&a.0, &b.0));
        a.call(Envelope::DataReq {
            id: 1,
            req: DataRequest::Ping,
            tenant: jiffy_common::TenantId::ANONYMOUS,
        })
        .unwrap();
    }

    #[test]
    fn dial_returns_distinct_connections() {
        let fabric = Fabric::new();
        let addr = fabric.hub().register(Arc::new(Echo));
        let a = fabric.dial(&addr).unwrap();
        let b = fabric.dial(&addr).unwrap();
        assert!(!Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn evict_forces_redial() {
        let fabric = Fabric::new();
        let addr = fabric.hub().register(Arc::new(Echo));
        let a = fabric.connect(&addr).unwrap();
        fabric.evict(&addr);
        let b = fabric.connect(&addr).unwrap();
        assert!(!Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn injected_rtt_delays_calls() {
        let fabric = Fabric::new();
        let addr = fabric.hub().register(Arc::new(Echo));
        let delayed = fabric.clone().with_injected_rtt(Duration::from_millis(20));
        let conn = delayed.connect(&addr).unwrap();
        let t0 = std::time::Instant::now();
        conn.call(Envelope::DataReq {
            id: 1,
            req: DataRequest::Ping,
            tenant: jiffy_common::TenantId::ANONYMOUS,
        })
        .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn unknown_scheme_errors() {
        let fabric = Fabric::new();
        assert!(fabric.connect("carrier-pigeon:42").is_err());
    }
}
