//! Deterministic fault injection for the RPC fabric.
//!
//! A [`FaultInjector`] holds a seeded RNG plus per-address [`FaultRule`]s
//! and decides, for every outgoing call, whether to deliver it cleanly,
//! delay it, drop it (before or after delivery — the latter exercises
//! retry deduplication, since the server *did* execute the op), duplicate
//! it, fail it with a transient error, or reject it outright because the
//! peer is partitioned. Wrapping connections in [`ChaosConn`] (see
//! [`Fabric::with_fault_injection`]) applies those decisions on the data
//! path.
//!
//! Everything is driven by one seeded [`SmallRng`], so a chaos run is
//! reproducible: same seed + same call sequence = same fault schedule.
//! Injection can be toggled at runtime with [`FaultInjector::set_enabled`]
//! and each class of injected fault is counted in [`FaultStats`].
//!
//! [`Fabric::with_fault_injection`]: crate::fabric::Fabric::with_fault_injection

use jiffy_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use jiffy_sync::Arc;
use std::collections::HashMap;
use std::time::Duration;

use jiffy_common::{JiffyError, Result};
use jiffy_proto::Envelope;
use jiffy_sync::Mutex;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::service::{ClientConn, Connection, PushCallback};

/// Deadline reported by injected [`JiffyError::Timeout`]s. Injected drops
/// fail immediately rather than actually waiting this long, so chaos runs
/// stay fast; the value only labels the error.
pub const INJECTED_TIMEOUT_MS: u64 = 100;

/// Per-address fault probabilities. All probabilities are independent
/// draws in `[0, 1]`; `drop_prob`, `error_prob` and `duplicate_prob` are
/// mutually exclusive outcomes sampled from a single draw (in that
/// priority order), while a delay may accompany any outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Probability the message is lost. Half of drops happen before
    /// delivery (request lost), half after (reply lost — the server
    /// executed the op). Both surface as [`JiffyError::Timeout`].
    pub drop_prob: f64,
    /// Probability the call is delayed by a uniform draw from
    /// `[delay_min, delay_max]`.
    pub delay_prob: f64,
    /// Minimum injected delay.
    pub delay_min: Duration,
    /// Maximum injected delay.
    pub delay_max: Duration,
    /// Probability the request is delivered twice (the duplicate's
    /// response is discarded). Exercises server-side idempotency.
    pub duplicate_prob: f64,
    /// Probability the call fails with [`JiffyError::Unavailable`]
    /// without being delivered.
    pub error_prob: f64,
    /// When set, every call to this address fails with
    /// [`JiffyError::Unavailable`] — a full network partition.
    pub partitioned: bool,
}

impl FaultRule {
    /// A rule that injects nothing.
    pub fn none() -> Self {
        Self {
            drop_prob: 0.0,
            delay_prob: 0.0,
            delay_min: Duration::ZERO,
            delay_max: Duration::ZERO,
            duplicate_prob: 0.0,
            error_prob: 0.0,
            partitioned: false,
        }
    }

    /// Sets the message-loss probability.
    #[must_use]
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Sets the delay probability and bounds.
    #[must_use]
    pub fn with_delay(mut self, p: f64, min: Duration, max: Duration) -> Self {
        self.delay_prob = p;
        self.delay_min = min;
        self.delay_max = max;
        self
    }

    /// Sets the duplicate-delivery probability.
    #[must_use]
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_prob = p;
        self
    }

    /// Sets the transient-error probability.
    #[must_use]
    pub fn with_error(mut self, p: f64) -> Self {
        self.error_prob = p;
        self
    }

    /// Marks the address fully partitioned.
    #[must_use]
    pub fn with_partition(mut self, partitioned: bool) -> Self {
        self.partitioned = partitioned;
        self
    }
}

impl Default for FaultRule {
    fn default() -> Self {
        Self::none()
    }
}

/// What the injector decided to do with one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Lose the message. `before_delivery` distinguishes a lost request
    /// (server never saw it) from a lost reply (server executed the op).
    Drop {
        /// `true`: request lost. `false`: delivered, reply lost.
        before_delivery: bool,
    },
    /// Deliver the request twice; return the second response.
    Duplicate,
    /// Fail with a transient [`JiffyError::Unavailable`], undelivered.
    TransientError,
    /// The address is partitioned; fail without delivery.
    Partitioned,
}

/// A decision for one call: an optional artificial delay plus the action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Sleep this long before acting (applies to every action).
    pub delay: Option<Duration>,
    /// What to do with the message.
    pub action: FaultAction,
}

impl FaultDecision {
    const DELIVER: Self = Self {
        delay: None,
        action: FaultAction::Deliver,
    };
}

/// Counters of injected faults, snapshot via [`FaultInjector::stats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Calls delivered unmodified (possibly delayed).
    pub delivered: u64,
    /// Requests lost before reaching the peer.
    pub dropped_requests: u64,
    /// Replies lost after the peer executed the request.
    pub dropped_replies: u64,
    /// Calls that had an artificial delay injected.
    pub delayed: u64,
    /// Requests delivered twice.
    pub duplicated: u64,
    /// Calls failed with an injected transient error.
    pub transient_errors: u64,
    /// Calls rejected because the address was partitioned.
    pub partition_rejections: u64,
}

impl FaultStats {
    /// Total number of calls that experienced any injected fault.
    pub fn total_faults(&self) -> u64 {
        self.dropped_requests
            + self.dropped_replies
            + self.delayed
            + self.duplicated
            + self.transient_errors
            + self.partition_rejections
    }
}

/// Seeded, runtime-togglable fault source shared by all [`ChaosConn`]s of
/// a fabric.
pub struct FaultInjector {
    enabled: AtomicBool,
    rng: Mutex<SmallRng>,
    default_rule: Mutex<FaultRule>,
    per_addr: Mutex<HashMap<String, FaultRule>>,
    delivered: AtomicU64,
    dropped_requests: AtomicU64,
    dropped_replies: AtomicU64,
    delayed: AtomicU64,
    duplicated: AtomicU64,
    transient_errors: AtomicU64,
    partition_rejections: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector (enabled, no rules) whose fault schedule is a
    /// pure function of `seed` and the call sequence.
    pub fn new(seed: u64) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            default_rule: Mutex::new(FaultRule::none()),
            per_addr: Mutex::new(HashMap::new()),
            delivered: AtomicU64::new(0),
            dropped_requests: AtomicU64::new(0),
            dropped_replies: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            partition_rejections: AtomicU64::new(0),
        }
    }

    /// Turns injection on or off at runtime. Disabled, every decision is
    /// `Deliver` and the RNG is not advanced.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether injection is currently active.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Sets the rule applied to addresses without a specific rule.
    pub fn set_default_rule(&self, rule: FaultRule) {
        *self.default_rule.lock() = rule;
    }

    /// Sets the rule for one address, overriding the default.
    pub fn set_rule(&self, addr: &str, rule: FaultRule) {
        self.per_addr.lock().insert(addr.to_string(), rule);
    }

    /// Removes the per-address rule, reverting `addr` to the default.
    pub fn clear_rule(&self, addr: &str) {
        self.per_addr.lock().remove(addr);
    }

    /// Fully partitions `addr`: every call fails with `Unavailable`.
    /// Other fields of an existing per-address rule are preserved.
    pub fn partition(&self, addr: &str) {
        let mut rules = self.per_addr.lock();
        let rule = rules
            .entry(addr.to_string())
            .or_insert_with(|| self.default_rule.lock().clone());
        rule.partitioned = true;
    }

    /// Heals a partition created by [`partition`](Self::partition).
    pub fn heal(&self, addr: &str) {
        if let Some(rule) = self.per_addr.lock().get_mut(addr) {
            rule.partitioned = false;
        }
    }

    /// Snapshot of the fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_requests: self.dropped_requests.load(Ordering::Relaxed),
            dropped_replies: self.dropped_replies.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            partition_rejections: self.partition_rejections.load(Ordering::Relaxed),
        }
    }

    /// Decides the fate of one call to `addr`, advancing the RNG and the
    /// counters. Public so transports other than [`ChaosConn`] (e.g. the
    /// simulator) can consult the same schedule.
    pub fn decide(&self, addr: &str) -> FaultDecision {
        if !self.is_enabled() {
            return FaultDecision::DELIVER;
        }
        let rule = match self.per_addr.lock().get(addr) {
            Some(r) => r.clone(),
            None => self.default_rule.lock().clone(),
        };
        if rule.partitioned {
            self.partition_rejections.fetch_add(1, Ordering::Relaxed);
            return FaultDecision {
                delay: None,
                action: FaultAction::Partitioned,
            };
        }

        let mut rng = self.rng.lock();
        let delay = if rule.delay_prob > 0.0 && rng.random_bool(rule.delay_prob) {
            let span = rule.delay_max.saturating_sub(rule.delay_min);
            let jitter = if span.is_zero() {
                Duration::ZERO
            } else {
                Duration::from_nanos(rng.random_range(0..=span.as_nanos() as u64))
            };
            Some(rule.delay_min + jitter)
        } else {
            None
        };

        // One draw decides the (mutually exclusive) outcome so the
        // probabilities compose predictably.
        let r: f64 = rng.random();
        let action = if r < rule.drop_prob {
            FaultAction::Drop {
                before_delivery: rng.random(),
            }
        } else if r < rule.drop_prob + rule.error_prob {
            FaultAction::TransientError
        } else if r < rule.drop_prob + rule.error_prob + rule.duplicate_prob {
            FaultAction::Duplicate
        } else {
            FaultAction::Deliver
        };
        drop(rng);

        if delay.is_some() {
            self.delayed.fetch_add(1, Ordering::Relaxed);
        }
        match action {
            FaultAction::Deliver => {
                self.delivered.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Drop {
                before_delivery: true,
            } => {
                self.dropped_requests.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Drop {
                before_delivery: false,
            } => {
                self.dropped_replies.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Duplicate => {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::TransientError => {
                self.transient_errors.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Partitioned => unreachable!("handled above"),
        }
        FaultDecision { delay, action }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("enabled", &self.is_enabled())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Connection wrapper that applies a [`FaultInjector`]'s decisions.
pub struct ChaosConn {
    inner: ClientConn,
    addr: String,
    injector: Arc<FaultInjector>,
}

impl ChaosConn {
    /// Wraps `inner` (a connection to `addr`) under `injector`.
    pub fn new(inner: ClientConn, addr: impl Into<String>, injector: Arc<FaultInjector>) -> Self {
        Self {
            inner,
            addr: addr.into(),
            injector,
        }
    }
}

impl Connection for ChaosConn {
    fn call(&self, req: Envelope) -> Result<Envelope> {
        let decision = self.injector.decide(&self.addr);
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        match decision.action {
            FaultAction::Deliver => self.inner.call(req),
            FaultAction::Partitioned => Err(JiffyError::Unavailable(format!(
                "{} (partitioned)",
                self.addr
            ))),
            FaultAction::TransientError => Err(JiffyError::Unavailable(format!(
                "{} (injected transient error)",
                self.addr
            ))),
            FaultAction::Drop {
                before_delivery: true,
            } => Err(JiffyError::Timeout {
                after_ms: INJECTED_TIMEOUT_MS,
            }),
            FaultAction::Drop {
                before_delivery: false,
            } => {
                // The server executes the request but the reply is lost.
                // This is the case that distinguishes at-least-once from
                // exactly-once: a naive retry re-executes the op.
                let _ = self.inner.call(req);
                Err(JiffyError::Timeout {
                    after_ms: INJECTED_TIMEOUT_MS,
                })
            }
            FaultAction::Duplicate => {
                let _ = self.inner.call(req.clone());
                self.inner.call(req)
            }
        }
    }

    fn set_push_callback(&self, cb: PushCallback) {
        self.inner.set_push_callback(cb);
    }

    fn close(&self) {
        self.inner.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Service, SessionHandle};
    use jiffy_proto::{DataRequest, DataResponse};
    use jiffy_sync::atomic::AtomicUsize;

    struct Counting {
        calls: AtomicUsize,
    }

    impl Counting {
        fn new() -> Arc<Self> {
            Arc::new(Self {
                calls: AtomicUsize::new(0),
            })
        }
    }

    impl Service for Counting {
        fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
            self.calls.fetch_add(1, Ordering::SeqCst);
            match req {
                Envelope::DataReq { id, .. } => Envelope::DataResp {
                    id,
                    resp: Ok(DataResponse::Pong),
                },
                _ => unreachable!(),
            }
        }
    }

    fn ping(id: u64) -> Envelope {
        Envelope::DataReq {
            id,
            req: DataRequest::Ping,
            tenant: jiffy_common::TenantId::ANONYMOUS,
        }
    }

    fn chaos_pair(
        rule: FaultRule,
        seed: u64,
    ) -> (Arc<Counting>, ChaosConn, Arc<FaultInjector>, String) {
        let hub = crate::inproc::InprocHub::new();
        let svc = Counting::new();
        let addr = hub.register(svc.clone());
        let injector = Arc::new(FaultInjector::new(seed));
        injector.set_default_rule(rule);
        let conn = ChaosConn::new(hub.connect(&addr).unwrap(), addr.clone(), injector.clone());
        (svc, conn, injector, addr)
    }

    #[test]
    fn same_seed_same_schedule() {
        let rule = FaultRule::none()
            .with_drop(0.3)
            .with_error(0.2)
            .with_duplicate(0.1)
            .with_delay(0.5, Duration::ZERO, Duration::from_micros(10));
        let schedule = |seed: u64| -> Vec<FaultDecision> {
            let inj = FaultInjector::new(seed);
            inj.set_default_rule(rule.clone());
            (0..200).map(|_| inj.decide("inproc:1")).collect()
        };
        assert_eq!(schedule(42), schedule(42));
        assert_ne!(schedule(42), schedule(43));
    }

    #[test]
    fn disabled_injector_is_transparent() {
        let (svc, conn, injector, _) = chaos_pair(FaultRule::none().with_drop(1.0), 7);
        injector.set_enabled(false);
        for i in 1..=10 {
            conn.call(ping(i)).unwrap();
        }
        assert_eq!(svc.calls.load(Ordering::SeqCst), 10);
        assert_eq!(injector.stats().total_faults(), 0);
    }

    #[test]
    fn certain_drop_times_out() {
        let (svc, conn, injector, _) = chaos_pair(FaultRule::none().with_drop(1.0), 7);
        let mut lost_requests = 0;
        for i in 1..=20 {
            match conn.call(ping(i)) {
                Err(JiffyError::Timeout { .. }) => {}
                other => panic!("expected timeout, got {other:?}"),
            }
            lost_requests += 1;
        }
        let stats = injector.stats();
        assert_eq!(
            stats.dropped_requests + stats.dropped_replies,
            lost_requests
        );
        // Reply-drops still executed on the server.
        assert_eq!(
            svc.calls.load(Ordering::SeqCst) as u64,
            stats.dropped_replies
        );
    }

    #[test]
    fn partition_rejects_without_delivery() {
        let (svc, conn, injector, addr) = chaos_pair(FaultRule::none(), 7);
        injector.partition(&addr);
        match conn.call(ping(1)) {
            Err(JiffyError::Unavailable(msg)) => assert!(msg.contains("partitioned")),
            other => panic!("expected unavailable, got {other:?}"),
        }
        assert_eq!(svc.calls.load(Ordering::SeqCst), 0);
        injector.heal(&addr);
        conn.call(ping(2)).unwrap();
        assert_eq!(svc.calls.load(Ordering::SeqCst), 1);
        assert_eq!(injector.stats().partition_rejections, 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let (svc, conn, _injector, _) = chaos_pair(FaultRule::none().with_duplicate(1.0), 7);
        conn.call(ping(1)).unwrap();
        assert_eq!(svc.calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn transient_error_is_unavailable_and_undelivered() {
        let (svc, conn, injector, _) = chaos_pair(FaultRule::none().with_error(1.0), 7);
        match conn.call(ping(1)) {
            Err(JiffyError::Unavailable(msg)) => assert!(msg.contains("transient")),
            other => panic!("expected unavailable, got {other:?}"),
        }
        assert_eq!(svc.calls.load(Ordering::SeqCst), 0);
        assert_eq!(injector.stats().transient_errors, 1);
    }

    #[test]
    fn per_addr_rule_overrides_default() {
        let injector = FaultInjector::new(1);
        injector.set_default_rule(FaultRule::none().with_drop(1.0));
        injector.set_rule("inproc:2", FaultRule::none());
        for _ in 0..10 {
            assert_eq!(injector.decide("inproc:2").action, FaultAction::Deliver);
            assert!(matches!(
                injector.decide("inproc:1").action,
                FaultAction::Drop { .. }
            ));
        }
        injector.clear_rule("inproc:2");
        assert!(matches!(
            injector.decide("inproc:2").action,
            FaultAction::Drop { .. }
        ));
    }

    #[test]
    fn delay_is_bounded_by_rule() {
        let injector = FaultInjector::new(3);
        injector.set_default_rule(FaultRule::none().with_delay(
            1.0,
            Duration::from_millis(1),
            Duration::from_millis(5),
        ));
        for _ in 0..50 {
            let d = injector.decide("inproc:1").delay.expect("delay expected");
            assert!(d >= Duration::from_millis(1) && d <= Duration::from_millis(5));
        }
        assert_eq!(injector.stats().delayed, 50);
    }
}
