//! In-process transport.
//!
//! Services register with an [`InprocHub`] and get an `inproc:N` address;
//! connections dispatch requests as direct function calls on the caller's
//! thread. This transport carries the test suite, the discrete-event
//! simulator and single-process cluster deployments; it exercises exactly
//! the same [`Service`] code as TCP.

use jiffy_sync::Arc;
use std::collections::HashMap;

use jiffy_common::{JiffyError, Result};
use jiffy_proto::Envelope;
use jiffy_sync::RwLock;

use crate::service::{ClientConn, Connection, PushCallback, PushSlot, Service, SessionHandle};

/// Registry of in-process services.
#[derive(Default)]
pub struct InprocHub {
    services: RwLock<HashMap<u64, Arc<dyn Service>>>,
    next: jiffy_sync::atomic::AtomicU64,
}

impl InprocHub {
    /// Creates an empty hub.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Registers a service and returns its `inproc:N` address.
    pub fn register(&self, service: Arc<dyn Service>) -> String {
        let id = self
            .next
            .fetch_add(1, jiffy_sync::atomic::Ordering::Relaxed);
        self.services.write().insert(id, service);
        format!("inproc:{id}")
    }

    /// Removes a service (subsequent connects fail; existing connections
    /// error on their next call).
    pub fn deregister(&self, addr: &str) {
        if let Some(id) = Self::parse(addr) {
            self.services.write().remove(&id);
        }
    }

    /// Re-registers a service at a previously issued address, so a
    /// restarted peer (e.g. a recovered controller) becomes reachable at
    /// the address its clients already hold. Existing [`InprocConn`]s
    /// re-resolve the service on every call, so they heal transparently.
    ///
    /// # Errors
    ///
    /// Returns [`JiffyError::Rpc`] if the address is malformed.
    pub fn register_at(&self, addr: &str, service: Arc<dyn Service>) -> Result<()> {
        let id = Self::parse(addr)
            .ok_or_else(|| JiffyError::Rpc(format!("bad inproc address: {addr}")))?;
        self.services.write().insert(id, service);
        // Keep fresh registrations from colliding with the reused id.
        self.next
            .fetch_max(id + 1, jiffy_sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Connects to a registered service.
    ///
    /// # Errors
    ///
    /// Returns [`JiffyError::Rpc`] if the address is malformed, or
    /// [`JiffyError::Unavailable`] if no service is registered under it
    /// (the peer was never started, or was killed/decommissioned).
    pub fn connect(self: &Arc<Self>, addr: &str) -> Result<ClientConn> {
        let id = Self::parse(addr)
            .ok_or_else(|| JiffyError::Rpc(format!("bad inproc address: {addr}")))?;
        if !self.services.read().contains_key(&id) {
            return Err(JiffyError::Unavailable(format!("no service at {addr}")));
        }
        let push = PushSlot::new();
        let push_for_session = push.clone();
        let session = SessionHandle::new(Arc::new(move |n| push_for_session.deliver(n)));
        Ok(ClientConn(Arc::new(InprocConn {
            hub: Arc::clone(self),
            id,
            session,
            push,
            closed: jiffy_sync::atomic::AtomicBool::new(false),
        })))
    }

    fn parse(addr: &str) -> Option<u64> {
        addr.strip_prefix("inproc:")?.parse().ok()
    }

    fn service(&self, id: u64) -> Option<Arc<dyn Service>> {
        self.services.read().get(&id).cloned()
    }
}

struct InprocConn {
    hub: Arc<InprocHub>,
    id: u64,
    session: SessionHandle,
    push: PushSlot,
    closed: jiffy_sync::atomic::AtomicBool,
}

impl Connection for InprocConn {
    fn call(&self, req: Envelope) -> Result<Envelope> {
        if self.closed.load(jiffy_sync::atomic::Ordering::SeqCst) {
            return Err(JiffyError::Rpc("connection closed".into()));
        }
        let svc = self
            .hub
            .service(self.id)
            .ok_or_else(|| JiffyError::Unavailable(format!("service inproc:{} gone", self.id)))?;
        Ok(svc.handle(req, &self.session))
    }

    fn set_push_callback(&self, cb: PushCallback) {
        self.push.set(cb);
    }

    fn close(&self) {
        if !self.closed.swap(true, jiffy_sync::atomic::Ordering::SeqCst) {
            if let Some(svc) = self.hub.service(self.id) {
                svc.on_disconnect(&self.session);
            }
        }
    }
}

impl Drop for InprocConn {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::BlockId;
    use jiffy_proto::{DataRequest, DataResponse, Notification, OpKind};
    use jiffy_sync::atomic::{AtomicUsize, Ordering};

    /// Echo service that answers pings and can push a notification back
    /// to whoever sent the last request.
    struct Echo {
        disconnects: AtomicUsize,
    }

    impl Service for Echo {
        fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
            match req {
                Envelope::DataReq {
                    id,
                    req: DataRequest::Ping,
                    ..
                } => {
                    session.push(Notification {
                        block: BlockId(1),
                        op: OpKind::Write,
                        size: 0,
                        seq: id,
                    });
                    Envelope::DataResp {
                        id,
                        resp: Ok(DataResponse::Pong),
                    }
                }
                Envelope::DataReq { id, .. } => Envelope::DataResp {
                    id,
                    resp: Err(JiffyError::Internal("unexpected".into())),
                },
                _ => Envelope::DataResp {
                    id: 0,
                    resp: Err(JiffyError::Internal("bad envelope".into())),
                },
            }
        }

        fn on_disconnect(&self, _session: &SessionHandle) {
            self.disconnects.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn call_round_trips() {
        let hub = InprocHub::new();
        let addr = hub.register(Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        }));
        assert!(addr.starts_with("inproc:"));
        let conn = hub.connect(&addr).unwrap();
        let resp = conn
            .call(Envelope::DataReq {
                id: 5,
                req: DataRequest::Ping,
                tenant: jiffy_common::TenantId::ANONYMOUS,
            })
            .unwrap();
        assert_eq!(
            resp,
            Envelope::DataResp {
                id: 5,
                resp: Ok(DataResponse::Pong)
            }
        );
    }

    #[test]
    fn pushes_reach_the_callback() {
        let hub = InprocHub::new();
        let addr = hub.register(Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        }));
        let conn = hub.connect(&addr).unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        conn.set_push_callback(Arc::new(move |n| {
            assert_eq!(n.seq, 9);
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        conn.call(Envelope::DataReq {
            id: 9,
            req: DataRequest::Ping,
            tenant: jiffy_common::TenantId::ANONYMOUS,
        })
        .unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn connect_to_missing_service_fails() {
        let hub = InprocHub::new();
        assert!(hub.connect("inproc:99").is_err());
        assert!(hub.connect("tcp:1.2.3.4:1").is_err());
        assert!(hub.connect("inproc:nonsense").is_err());
    }

    #[test]
    fn close_notifies_service_once() {
        let hub = InprocHub::new();
        let svc = Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        });
        let addr = hub.register(svc.clone());
        let conn = hub.connect(&addr).unwrap();
        conn.close();
        conn.close();
        drop(conn);
        assert_eq!(svc.disconnects.load(Ordering::SeqCst), 1);
        // A closed connection refuses calls.
    }

    #[test]
    fn calls_after_close_fail() {
        let hub = InprocHub::new();
        let addr = hub.register(Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        }));
        let conn = hub.connect(&addr).unwrap();
        conn.close();
        assert!(conn
            .call(Envelope::DataReq {
                id: 1,
                req: DataRequest::Ping,
                tenant: jiffy_common::TenantId::ANONYMOUS,
            })
            .is_err());
    }

    #[test]
    fn deregister_breaks_existing_connections() {
        let hub = InprocHub::new();
        let addr = hub.register(Arc::new(Echo {
            disconnects: AtomicUsize::new(0),
        }));
        let conn = hub.connect(&addr).unwrap();
        hub.deregister(&addr);
        assert!(conn
            .call(Envelope::DataReq {
                id: 1,
                req: DataRequest::Ping,
                tenant: jiffy_common::TenantId::ANONYMOUS,
            })
            .is_err());
    }
}
