//! Exponential-backoff retry for transport-level faults.
//!
//! Servers distinguish retryable from fatal errors via
//! [`JiffyError::class`]; this module handles the *transport* subset
//! ([`JiffyError::is_transport`]): timeouts, unavailability and broken
//! connections, where the request may or may not have executed. Callers
//! retry those with the **same request id** so the server's replay cache
//! (see [`crate::dedup`]) deduplicates re-executions.
//!
//! [`JiffyError::class`]: jiffy_common::JiffyError::class
//! [`JiffyError::is_transport`]: jiffy_common::JiffyError::is_transport

use std::time::Duration;

use jiffy_common::{JiffyError, Result};

/// Retry schedule: `max_attempts` total tries, sleeping
/// `base_delay * multiplier^n` (capped at `max_delay`) between them.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total number of attempts (>= 1), including the first.
    pub max_attempts: usize,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single sleep.
    pub max_delay: Duration,
    /// Geometric growth factor between consecutive sleeps.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// The sleep inserted after failed attempt number `attempt`
    /// (0-based): `base_delay * multiplier^attempt`, capped at
    /// `max_delay`.
    pub fn backoff(&self, attempt: usize) -> Duration {
        let factor = self.multiplier.powi(attempt.min(64) as i32);
        let nanos =
            (self.base_delay.as_nanos() as f64 * factor).min(self.max_delay.as_nanos() as f64);
        Duration::from_nanos(nanos as u64)
    }

    /// Runs `op` until it succeeds, fails with a non-transport error, or
    /// exhausts `max_attempts`. `op` receives the 0-based attempt index;
    /// between transport failures the policy sleeps [`backoff`] and calls
    /// `on_retry` (e.g. to evict a pooled connection).
    ///
    /// [`backoff`]: Self::backoff
    ///
    /// # Errors
    ///
    /// The last transport error once attempts are exhausted, or the first
    /// non-transport error.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(usize) -> Result<T>,
        mut on_retry: impl FnMut(&JiffyError),
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transport() && attempt + 1 < attempts => {
                    on_retry(&e);
                    std::thread::sleep(self.backoff(attempt));
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| JiffyError::Internal("retry loop without attempts".into())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
            multiplier: 2.0,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(16));
        assert_eq!(p.backoff(4), Duration::from_millis(20)); // capped
        assert_eq!(p.backoff(60), Duration::from_millis(20));
    }

    #[test]
    fn retries_transport_errors_until_success() {
        let p = RetryPolicy {
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let mut evictions = 0;
        let out = p.run(
            |attempt| {
                if attempt < 3 {
                    Err(JiffyError::Timeout { after_ms: 1 })
                } else {
                    Ok(attempt)
                }
            },
            |_| evictions += 1,
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(evictions, 3);
    }

    #[test]
    fn fatal_errors_abort_immediately() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<()> = p.run(
            |_| {
                calls += 1;
                Err(JiffyError::PathNotFound("x".into()))
            },
            |_| {},
        );
        assert!(matches!(out, Err(JiffyError::PathNotFound(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn server_errors_are_not_transport_retried() {
        // StaleMetadata is retryable at the *routing* layer (with a
        // metadata refresh), not the transport layer.
        let p = RetryPolicy::default();
        let mut calls = 0;
        let out: Result<()> = p.run(
            |_| {
                calls += 1;
                Err(JiffyError::StaleMetadata)
            },
            |_| {},
        );
        assert!(matches!(out, Err(JiffyError::StaleMetadata)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out: Result<()> = p.run(
            |_| {
                calls += 1;
                Err(JiffyError::Unavailable("srv".into()))
            },
            |_| {},
        );
        assert!(matches!(out, Err(JiffyError::Unavailable(_))));
        assert_eq!(calls, 3);
    }
}
