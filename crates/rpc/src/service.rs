//! Service and connection abstractions shared by all transports.

use jiffy_sync::atomic::{AtomicU64, Ordering};
use jiffy_sync::Arc;

use jiffy_common::Result;
use jiffy_proto::{Envelope, Notification};
use jiffy_sync::Mutex;

/// Callback invoked on the client side when the server pushes a
/// [`Notification`].
pub type PushCallback = Arc<dyn Fn(Notification) + Send + Sync>;

static SESSION_IDS: AtomicU64 = AtomicU64::new(1);

/// Identifies one client session at a server and lets the server push
/// notifications to it asynchronously.
///
/// The subscription map of a memory server stores these handles; when a
/// subscribed operation executes, the server calls [`SessionHandle::push`]
/// for every subscriber.
#[derive(Clone)]
pub struct SessionHandle {
    id: u64,
    pusher: Arc<dyn Fn(Notification) + Send + Sync>,
}

impl SessionHandle {
    /// Creates a handle around a transport-specific push function.
    pub fn new(pusher: Arc<dyn Fn(Notification) + Send + Sync>) -> Self {
        Self {
            id: SESSION_IDS.fetch_add(1, Ordering::Relaxed),
            pusher,
        }
    }

    /// Process-unique session identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pushes a notification to the session's client. Delivery is
    /// best-effort: a disconnected session drops the notification.
    pub fn push(&self, n: Notification) {
        (self.pusher)(n);
    }
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SessionHandle({})", self.id)
    }
}

impl PartialEq for SessionHandle {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for SessionHandle {}

impl std::hash::Hash for SessionHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

/// A request handler: the controller and every memory server implement
/// this. One call per request envelope; responses are returned inline,
/// notifications go out-of-band through the [`SessionHandle`].
pub trait Service: Send + Sync + 'static {
    /// Handles one request and produces the response envelope.
    fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope;

    /// Invoked when a session disconnects so the service can clean up
    /// subscriptions held for it.
    fn on_disconnect(&self, _session: &SessionHandle) {}
}

impl<T: Service + ?Sized> Service for Arc<T> {
    fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
        (**self).handle(req, session)
    }

    fn on_disconnect(&self, session: &SessionHandle) {
        (**self).on_disconnect(session);
    }
}

/// Transport-agnostic client connection.
///
/// Implementations must allow concurrent `call`s from multiple threads.
pub trait Connection: Send + Sync {
    /// Issues one request and blocks for the matching response.
    fn call(&self, req: Envelope) -> Result<Envelope>;

    /// Registers the callback invoked for server pushes on this
    /// connection. Replaces any previous callback.
    fn set_push_callback(&self, cb: PushCallback);

    /// Closes the connection, releasing transport resources.
    fn close(&self);
}

/// Shared, cloneable handle to a [`Connection`].
#[derive(Clone)]
pub struct ClientConn(pub Arc<dyn Connection>);

impl ClientConn {
    /// Issues one request and blocks for the matching response.
    pub fn call(&self, req: Envelope) -> Result<Envelope> {
        self.0.call(req)
    }

    /// Registers the push callback for this connection.
    pub fn set_push_callback(&self, cb: PushCallback) {
        self.0.set_push_callback(cb);
    }

    /// Closes the connection.
    pub fn close(&self) {
        self.0.close();
    }
}

impl std::fmt::Debug for ClientConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClientConn")
    }
}

/// A slot holding the client's push callback; shared between the
/// connection facade and the transport's receive path.
#[derive(Clone, Default)]
pub struct PushSlot(Arc<Mutex<Option<PushCallback>>>);

impl PushSlot {
    /// Creates an empty slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (replaces) the callback.
    pub fn set(&self, cb: PushCallback) {
        *self.0.lock() = Some(cb);
    }

    /// Invokes the callback if one is registered.
    pub fn deliver(&self, n: Notification) {
        let cb = self.0.lock().clone();
        if let Some(cb) = cb {
            cb(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_common::BlockId;
    use jiffy_proto::OpKind;
    use jiffy_sync::atomic::AtomicUsize;

    fn notif(seq: u64) -> Notification {
        Notification {
            block: BlockId(0),
            op: OpKind::Enqueue,
            size: 1,
            seq,
        }
    }

    #[test]
    fn session_handles_are_unique() {
        let p: Arc<dyn Fn(Notification) + Send + Sync> = Arc::new(|_| {});
        let a = SessionHandle::new(p.clone());
        let b = SessionHandle::new(p);
        assert_ne!(a.id(), b.id());
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn push_invokes_callback() {
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        let h = SessionHandle::new(Arc::new(move |_| {
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        h.push(notif(1));
        h.push(notif(2));
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn push_slot_delivers_only_when_set() {
        let slot = PushSlot::new();
        // No callback yet: silently dropped.
        slot.deliver(notif(1));
        let count = Arc::new(AtomicUsize::new(0));
        let c2 = count.clone();
        slot.set(Arc::new(move |n| {
            assert_eq!(n.seq, 2);
            c2.fetch_add(1, Ordering::SeqCst);
        }));
        slot.deliver(notif(2));
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }
}
