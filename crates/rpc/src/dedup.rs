//! Server-side request deduplication (replay cache).
//!
//! Under lossy transports a client cannot tell a lost *request* from a
//! lost *reply*: both surface as a timeout. Retrying is only safe if the
//! server suppresses re-execution of requests it already handled. The
//! [`Deduplicated`] wrapper gives any [`Service`] that property: it
//! remembers the response to each `(session, request id)` pair and
//! replays the cached response when the same id arrives again, instead of
//! re-invoking the inner service.
//!
//! Request ids of `0` (unstamped requests and push traffic) bypass the
//! cache. The cache is bounded per session ([`DEDUP_CACHE_PER_SESSION`]
//! most-recent entries, FIFO eviction) and dropped when the session
//! disconnects — so deduplication holds across retries on one connection,
//! which is exactly the window in which a client reuses a request id.

use jiffy_sync::Arc;
use std::collections::{HashMap, VecDeque};

use jiffy_proto::Envelope;
use jiffy_sync::Mutex;

use crate::service::{Service, SessionHandle};

/// Responses remembered per session before FIFO eviction.
pub const DEDUP_CACHE_PER_SESSION: usize = 128;

#[derive(Default)]
struct SessionCache {
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
    /// Request id -> response envelope.
    responses: HashMap<u64, Envelope>,
}

impl SessionCache {
    fn insert(&mut self, id: u64, resp: Envelope, capacity: usize) {
        if self.responses.insert(id, resp).is_none() {
            self.order.push_back(id);
            if self.order.len() > capacity {
                if let Some(old) = self.order.pop_front() {
                    self.responses.remove(&old);
                }
            }
        }
    }
}

/// Wraps a [`Service`], replaying cached responses for repeated request
/// ids so retried mutations execute exactly once per session.
pub struct Deduplicated<S: Service> {
    inner: S,
    sessions: Mutex<HashMap<u64, SessionCache>>,
    capacity: usize,
    replays: jiffy_sync::atomic::AtomicU64,
}

impl<S: Service> Deduplicated<S> {
    /// Wraps `inner` with a replay cache of [`DEDUP_CACHE_PER_SESSION`]
    /// entries per session.
    pub fn new(inner: S) -> Self {
        Self::with_capacity(inner, DEDUP_CACHE_PER_SESSION)
    }

    /// Wraps `inner` with a replay cache of `capacity` entries per
    /// session (minimum 1). Small capacities shrink the retry window —
    /// the loom model in `tests/loom_dedup.rs` uses this to make the
    /// retry-vs-eviction race explorable.
    pub fn with_capacity(inner: S, capacity: usize) -> Self {
        Self {
            inner,
            sessions: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            replays: jiffy_sync::atomic::AtomicU64::new(0),
        }
    }

    /// Convenience: wraps and Arcs in one step.
    pub fn shared(inner: S) -> Arc<Self> {
        Arc::new(Self::new(inner))
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of requests answered from the replay cache.
    pub fn replays(&self) -> u64 {
        self.replays.load(jiffy_sync::atomic::Ordering::Relaxed)
    }

    fn request_id(req: &Envelope) -> Option<u64> {
        match req {
            Envelope::ControlReq { id, .. } | Envelope::DataReq { id, .. } if *id != 0 => Some(*id),
            _ => None,
        }
    }

    /// Throttled answers mean "the server chose not to execute" — the op
    /// never ran, so there is nothing whose re-execution must be
    /// suppressed. Caching one would replay the rejection at a retry that
    /// should be admitted once the tenant's tokens refill.
    fn is_throttled(resp: &Envelope) -> bool {
        matches!(
            resp,
            Envelope::DataResp {
                resp: Err(jiffy_common::JiffyError::Throttled { .. }),
                ..
            } | Envelope::ControlResp {
                resp: Err(jiffy_common::JiffyError::Throttled { .. }),
                ..
            }
        )
    }
}

impl<S: Service> Service for Deduplicated<S> {
    fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
        let Some(id) = Self::request_id(&req) else {
            return self.inner.handle(req, session);
        };
        if let Some(cache) = self.sessions.lock().get(&session.id()) {
            if let Some(resp) = cache.responses.get(&id) {
                self.replays
                    .fetch_add(1, jiffy_sync::atomic::Ordering::Relaxed);
                return resp.clone();
            }
        }
        // Not holding the lock during the inner call: concurrent in-flight
        // duplicates may both execute (same race exists on a real network);
        // the cache closes the much wider retry-after-timeout window.
        let resp = self.inner.handle(req, session);
        if !Self::is_throttled(&resp) {
            self.sessions
                .lock()
                .entry(session.id())
                .or_default()
                .insert(id, resp.clone(), self.capacity);
        }
        resp
    }

    fn on_disconnect(&self, session: &SessionHandle) {
        self.sessions.lock().remove(&session.id());
        self.inner.on_disconnect(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_proto::{DataRequest, DataResponse, DsResult};
    use jiffy_sync::atomic::{AtomicUsize, Ordering};

    /// Returns a fresh counter value per executed request, so replayed
    /// responses are distinguishable from re-executions.
    struct Stamping {
        executed: AtomicUsize,
    }

    impl Service for Stamping {
        fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
            let n = self.executed.fetch_add(1, Ordering::SeqCst) as u64;
            match req {
                Envelope::DataReq { id, .. } => Envelope::DataResp {
                    id,
                    resp: Ok(DataResponse::OpResult(DsResult::Size(n))),
                },
                Envelope::ControlReq { id, .. } => Envelope::DataResp {
                    id,
                    resp: Ok(DataResponse::OpResult(DsResult::Size(n))),
                },
                _ => unreachable!(),
            }
        }
    }

    fn svc() -> Deduplicated<Stamping> {
        Deduplicated::new(Stamping {
            executed: AtomicUsize::new(0),
        })
    }

    fn session() -> SessionHandle {
        SessionHandle::new(Arc::new(|_| {}))
    }

    fn req(id: u64) -> Envelope {
        Envelope::DataReq {
            id,
            req: DataRequest::Ping,
            tenant: jiffy_common::TenantId::ANONYMOUS,
        }
    }

    #[test]
    fn repeated_id_replays_cached_response() {
        let d = svc();
        let s = session();
        let first = d.handle(req(7), &s);
        let second = d.handle(req(7), &s);
        assert_eq!(first, second);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 1);
        assert_eq!(d.replays(), 1);
    }

    #[test]
    fn id_zero_bypasses_cache() {
        let d = svc();
        let s = session();
        let a = d.handle(req(0), &s);
        let b = d.handle(req(0), &s);
        assert_ne!(a, b);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn sessions_are_isolated() {
        let d = svc();
        let (s1, s2) = (session(), session());
        let a = d.handle(req(7), &s1);
        let b = d.handle(req(7), &s2);
        assert_ne!(a, b);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn disconnect_drops_the_session_cache() {
        let d = svc();
        let s = session();
        let a = d.handle(req(7), &s);
        d.on_disconnect(&s);
        let b = d.handle(req(7), &s);
        assert_ne!(a, b);
    }

    #[test]
    fn cache_is_bounded_fifo() {
        let d = svc();
        let s = session();
        let first = d.handle(req(1), &s);
        // Push enough distinct ids to evict id 1.
        for id in 2..(DEDUP_CACHE_PER_SESSION as u64 + 2) {
            d.handle(req(id), &s);
        }
        let again = d.handle(req(1), &s);
        assert_ne!(first, again); // re-executed after eviction
                                  // But recent ids are still cached.
        let recent = DEDUP_CACHE_PER_SESSION as u64 + 1;
        assert_eq!(d.handle(req(recent), &s), d.handle(req(recent), &s));
    }

    #[test]
    fn batch_requests_are_deduplicated_as_one_unit() {
        // A retried Batch envelope reuses its request id, so the replay
        // cache must answer the whole multi-op request once — no sub-op
        // may execute twice on a duplicate delivery.
        let d = svc();
        let s = session();
        let batch = |id| Envelope::DataReq {
            id,
            req: DataRequest::Batch {
                block: jiffy_common::BlockId(1),
                ops: vec![
                    jiffy_proto::DsOp::Enqueue { item: "a".into() },
                    jiffy_proto::DsOp::Enqueue { item: "b".into() },
                ],
            },
            tenant: jiffy_common::TenantId::ANONYMOUS,
        };
        let first = d.handle(batch(11), &s);
        let replayed = d.handle(batch(11), &s);
        assert_eq!(first, replayed);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 1);
        assert_eq!(d.replays(), 1);
    }

    #[test]
    fn throttled_responses_are_not_cached() {
        // A Throttled answer means "did not execute", so a retry with the
        // same id must reach the service again rather than replay the
        // rejection forever.
        struct ThrottleOnce {
            executed: AtomicUsize,
        }
        impl Service for ThrottleOnce {
            fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
                let n = self.executed.fetch_add(1, Ordering::SeqCst);
                let id = match req {
                    Envelope::DataReq { id, .. } => id,
                    _ => unreachable!(),
                };
                if n == 0 {
                    Envelope::DataResp {
                        id,
                        resp: Err(jiffy_common::JiffyError::Throttled { retry_after_ms: 1 }),
                    }
                } else {
                    Envelope::DataResp {
                        id,
                        resp: Ok(DataResponse::Pong),
                    }
                }
            }
        }
        let d = Deduplicated::new(ThrottleOnce {
            executed: AtomicUsize::new(0),
        });
        let s = session();
        let first = d.handle(req(21), &s);
        assert!(Deduplicated::<ThrottleOnce>::is_throttled(&first));
        let second = d.handle(req(21), &s);
        assert_eq!(
            second,
            Envelope::DataResp {
                id: 21,
                resp: Ok(DataResponse::Pong)
            }
        );
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 2);
        assert_eq!(d.replays(), 0);
        // The successful answer IS cached.
        let third = d.handle(req(21), &s);
        assert_eq!(second, third);
        assert_eq!(d.replays(), 1);
    }

    #[test]
    fn control_requests_are_deduplicated_too() {
        let d = svc();
        let s = session();
        let req = |id| Envelope::ControlReq {
            id,
            req: jiffy_proto::ControlRequest::RegisterJob { name: "t".into() },
            tenant: jiffy_common::TenantId::ANONYMOUS,
        };
        let a = d.handle(req(9), &s);
        let b = d.handle(req(9), &s);
        assert_eq!(a, b);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 1);
    }
}
