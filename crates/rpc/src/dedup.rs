//! Server-side request deduplication (replay caches).
//!
//! Under lossy transports a client cannot tell a lost *request* from a
//! lost *reply*: both surface as a timeout. Retrying is only safe if the
//! server suppresses re-execution of requests it already handled. Two
//! layers provide that property:
//!
//! - [`Deduplicated`] wraps any [`Service`], remembering the response to
//!   each `(session, request id)` pair and replaying it when the same id
//!   arrives again on the same connection.
//! - [`ReplayWindow`] is the reusable bounded window underneath it — a
//!   `(request id → cached value)` map with LRU eviction and a seq
//!   watermark. `jiffy-block` embeds one per block (value =
//!   `DsResult`) and replicates it down the chain, so exactly-once
//!   survives what the per-session cache cannot: an abrupt chain-head
//!   failure between an executed write and its retry.
//!
//! Request ids of `0` (unstamped requests and push traffic) bypass the
//! cache. The per-session cache is bounded ([`DEDUP_CACHE_PER_SESSION`]
//! most-recent entries) and dropped when the session disconnects — so
//! deduplication holds across retries on one connection, which is the
//! window in which a client reuses a request id on a *healthy* chain.

use jiffy_sync::Arc;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use jiffy_common::{JiffyError, Result};
use jiffy_proto::Envelope;
use jiffy_sync::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::service::{Service, SessionHandle};

/// Responses remembered per session before eviction.
pub const DEDUP_CACHE_PER_SESSION: usize = 128;

/// A bounded `(request id → value)` replay window with LRU eviction.
///
/// The window remembers the result of each recently executed request so
/// a retry carrying the same id can be answered without re-executing.
/// Entries carry an explicit byte weight; eviction (least-recently-used
/// first) keeps the window within both an entry count and a byte budget.
/// Lookups *touch* their entry, so an id that is actively being retried
/// stays resident while idle entries age out.
///
/// The window is not itself synchronized — callers wrap it in whatever
/// lock already guards the state it shadows (the per-block mutex on the
/// replicate path, the session-map mutex in [`Deduplicated`]), which is
/// what makes "execute + record" atomic with respect to a concurrent
/// retry.
/// Identity hasher for request-id keys. Rids are client-assigned
/// sequential counters (and the transport's auto-ids likewise), so
/// their low bits are already uniformly distributed for bucketing —
/// SipHash would only add per-op latency on the replicated write path.
#[derive(Default)]
pub struct RidHasher(u64);

impl Hasher for RidHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

pub struct ReplayWindow<V> {
    /// id → (recency seq, byte weight, value).
    entries: HashMap<u64, (u64, u64, V), BuildHasherDefault<RidHasher>>,
    /// Recency index: seq → id, oldest first.
    by_seq: BTreeMap<u64, u64>,
    /// Next recency seq to assign (monotone; touched entries move here).
    next_seq: u64,
    /// Sum of entry byte weights.
    bytes: u64,
    max_entries: usize,
    max_bytes: u64,
    /// Highest recency seq ever evicted. A miss only proves
    /// non-execution while the op's era is above the watermark; windows
    /// are sized far above the in-flight op count so live retries always
    /// land inside it.
    watermark: u64,
}

/// Serialized form of a window, as a plain tuple (the vendored
/// serde_derive does not support generic structs): `(next_seq,
/// watermark, entries)` with entries `(id, seq, bytes, value)` in
/// ascending seq order — the counters make an import into an empty
/// window an exact restore.
type WindowImage<V> = (u64, u64, Vec<(u64, u64, u64, V)>);

impl<V> ReplayWindow<V> {
    /// Creates an empty window bounded to `max_entries` entries and
    /// `max_bytes` total byte weight (each clamped to at least 1).
    pub fn new(max_entries: usize, max_bytes: u64) -> Self {
        Self {
            entries: HashMap::default(),
            by_seq: BTreeMap::new(),
            next_seq: 1,
            bytes: 0,
            max_entries: max_entries.max(1),
            max_bytes: max_bytes.max(1),
            watermark: 0,
        }
    }

    /// Looks up a cached value, refreshing its recency.
    pub fn lookup(&mut self, id: u64) -> Option<&V> {
        let entry = self.entries.get_mut(&id)?;
        self.by_seq.remove(&entry.0);
        entry.0 = self.next_seq;
        self.by_seq.insert(self.next_seq, id);
        self.next_seq += 1;
        self.entries.get(&id).map(|(_, _, v)| v)
    }

    /// Records a value under `id` with the given byte weight, evicting
    /// least-recently-used entries until the window fits its bounds
    /// again (the entry just inserted is never evicted, so a single
    /// oversized value may transiently exceed the byte budget alone).
    /// A repeated id keeps the first value: the first execution's result
    /// is the canonical one.
    pub fn insert(&mut self, id: u64, value: V, bytes: u64) {
        if self.entries.contains_key(&id) {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(id, (seq, bytes, value));
        self.by_seq.insert(seq, id);
        self.bytes += bytes;
        while self.entries.len() > self.max_entries
            || (self.bytes > self.max_bytes && self.entries.len() > 1)
        {
            let Some((&old_seq, &old_id)) = self.by_seq.iter().next() else {
                break;
            };
            if old_id == id {
                break;
            }
            self.by_seq.remove(&old_seq);
            if let Some((_, b, _)) = self.entries.remove(&old_id) {
                self.bytes -= b;
            }
            self.watermark = self.watermark.max(old_seq);
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of resident entries' byte weights.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Highest recency seq ever evicted (0 when nothing was evicted).
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_seq.clear();
        self.next_seq = 1;
        self.bytes = 0;
        self.watermark = 0;
    }
}

impl<V: Serialize + Clone> ReplayWindow<V> {
    /// Serializes the window (entries in recency order plus counters).
    /// Importing the bytes into an *empty* window restores it exactly,
    /// so export → import → export round-trips byte-for-byte.
    ///
    /// # Errors
    ///
    /// Serialization failures.
    pub fn export_bytes(&self) -> Result<Vec<u8>> {
        let entries = self
            .by_seq
            .iter()
            .map(|(&seq, &id)| {
                let (_, bytes, v) = &self.entries[&id];
                (id, seq, *bytes, v.clone())
            })
            .collect();
        let image: WindowImage<V> = (self.next_seq, self.watermark, entries);
        jiffy_proto::to_bytes(&image)
            .map_err(|e| JiffyError::Internal(format!("replay window export: {e}")))
    }
}

impl<V: DeserializeOwned> ReplayWindow<V> {
    /// Absorbs an exported window. Into an empty window this is an exact
    /// restore (seqs and watermark preserved); into a non-empty one the
    /// imported entries are re-sequenced behind the resident ones in
    /// their original recency order (merge semantics — a repartition
    /// target keeps its own entries and gains the source's). Repeated
    /// ids keep the resident value. Empty input is a no-op.
    ///
    /// # Errors
    ///
    /// Malformed bytes.
    pub fn import_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        let (next_seq, watermark, entries): WindowImage<V> = jiffy_proto::from_bytes(bytes)
            .map_err(|e| JiffyError::Internal(format!("replay window import: {e}")))?;
        if self.entries.is_empty() && self.watermark == 0 {
            self.next_seq = next_seq;
            self.watermark = watermark;
            for (id, seq, bytes, value) in entries {
                if self.entries.insert(id, (seq, bytes, value)).is_none() {
                    self.by_seq.insert(seq, id);
                    self.bytes += bytes;
                }
            }
        } else {
            self.watermark = self.watermark.max(watermark);
            for (id, _, bytes, value) in entries {
                self.insert(id, value, bytes);
            }
        }
        Ok(())
    }
}

impl<V> std::fmt::Debug for ReplayWindow<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReplayWindow({} entries, {} bytes, watermark {})",
            self.entries.len(),
            self.bytes,
            self.watermark
        )
    }
}

/// Wraps a [`Service`], replaying cached responses for repeated request
/// ids so retried mutations execute exactly once per session.
pub struct Deduplicated<S: Service> {
    inner: S,
    sessions: Mutex<HashMap<u64, ReplayWindow<Envelope>>>,
    capacity: usize,
    replays: jiffy_sync::atomic::AtomicU64,
}

impl<S: Service> Deduplicated<S> {
    /// Wraps `inner` with a replay cache of [`DEDUP_CACHE_PER_SESSION`]
    /// entries per session.
    pub fn new(inner: S) -> Self {
        Self::with_capacity(inner, DEDUP_CACHE_PER_SESSION)
    }

    /// Wraps `inner` with a replay cache of `capacity` entries per
    /// session (minimum 1). Small capacities shrink the retry window —
    /// the loom model in `tests/loom_dedup.rs` uses this to make the
    /// retry-vs-eviction race explorable.
    pub fn with_capacity(inner: S, capacity: usize) -> Self {
        Self {
            inner,
            sessions: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            replays: jiffy_sync::atomic::AtomicU64::new(0),
        }
    }

    /// Convenience: wraps and Arcs in one step.
    pub fn shared(inner: S) -> Arc<Self> {
        Arc::new(Self::new(inner))
    }

    /// The wrapped service.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of requests answered from the replay cache.
    pub fn replays(&self) -> u64 {
        self.replays.load(jiffy_sync::atomic::Ordering::Relaxed)
    }

    fn request_id(req: &Envelope) -> Option<u64> {
        match req {
            Envelope::ControlReq { id, .. } | Envelope::DataReq { id, .. } if *id != 0 => Some(*id),
            _ => None,
        }
    }

    /// Error answers mean "the op did not take effect" — a `Throttled`
    /// rejection precedes execution, and every other error leaves the
    /// target unmutated — so there is nothing whose re-execution must be
    /// suppressed. They are also not worth pinning: a routing retry now
    /// reuses its request id across a metadata refresh, so a cached
    /// `StaleMetadata` or dead-downstream `Unavailable` would be
    /// replayed forever after the condition healed. (Per-op errors
    /// inside an `Ok(DataResponse::Batch)` prefix are still cached with
    /// the batch: the executed prefix is what a duplicate delivery must
    /// not re-run.)
    fn is_error(resp: &Envelope) -> bool {
        matches!(
            resp,
            Envelope::DataResp { resp: Err(_), .. } | Envelope::ControlResp { resp: Err(_), .. }
        )
    }
}

impl<S: Service> Service for Deduplicated<S> {
    fn handle(&self, req: Envelope, session: &SessionHandle) -> Envelope {
        let Some(id) = Self::request_id(&req) else {
            return self.inner.handle(req, session);
        };
        if let Some(cache) = self.sessions.lock().get_mut(&session.id()) {
            if let Some(resp) = cache.lookup(id) {
                self.replays
                    .fetch_add(1, jiffy_sync::atomic::Ordering::Relaxed);
                return resp.clone();
            }
        }
        // Not holding the lock during the inner call: concurrent in-flight
        // duplicates may both execute (same race exists on a real network);
        // the cache closes the much wider retry-after-timeout window.
        let resp = self.inner.handle(req, session);
        if !Self::is_error(&resp) {
            self.sessions
                .lock()
                .entry(session.id())
                .or_insert_with(|| ReplayWindow::new(self.capacity, u64::MAX))
                .insert(id, resp.clone(), 0);
        }
        resp
    }

    fn on_disconnect(&self, session: &SessionHandle) {
        self.sessions.lock().remove(&session.id());
        self.inner.on_disconnect(session);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jiffy_proto::{DataRequest, DataResponse, DsResult};
    use jiffy_sync::atomic::{AtomicUsize, Ordering};

    /// Returns a fresh counter value per executed request, so replayed
    /// responses are distinguishable from re-executions.
    struct Stamping {
        executed: AtomicUsize,
    }

    impl Service for Stamping {
        fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
            let n = self.executed.fetch_add(1, Ordering::SeqCst) as u64;
            match req {
                Envelope::DataReq { id, .. } => Envelope::DataResp {
                    id,
                    resp: Ok(DataResponse::OpResult(DsResult::Size(n))),
                },
                Envelope::ControlReq { id, .. } => Envelope::DataResp {
                    id,
                    resp: Ok(DataResponse::OpResult(DsResult::Size(n))),
                },
                _ => unreachable!(),
            }
        }
    }

    fn svc() -> Deduplicated<Stamping> {
        Deduplicated::new(Stamping {
            executed: AtomicUsize::new(0),
        })
    }

    fn session() -> SessionHandle {
        SessionHandle::new(Arc::new(|_| {}))
    }

    fn req(id: u64) -> Envelope {
        Envelope::DataReq {
            id,
            req: DataRequest::Ping,
            tenant: jiffy_common::TenantId::ANONYMOUS,
        }
    }

    #[test]
    fn repeated_id_replays_cached_response() {
        let d = svc();
        let s = session();
        let first = d.handle(req(7), &s);
        let second = d.handle(req(7), &s);
        assert_eq!(first, second);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 1);
        assert_eq!(d.replays(), 1);
    }

    #[test]
    fn id_zero_bypasses_cache() {
        let d = svc();
        let s = session();
        let a = d.handle(req(0), &s);
        let b = d.handle(req(0), &s);
        assert_ne!(a, b);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn sessions_are_isolated() {
        let d = svc();
        let (s1, s2) = (session(), session());
        let a = d.handle(req(7), &s1);
        let b = d.handle(req(7), &s2);
        assert_ne!(a, b);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn disconnect_drops_the_session_cache() {
        let d = svc();
        let s = session();
        let a = d.handle(req(7), &s);
        d.on_disconnect(&s);
        let b = d.handle(req(7), &s);
        assert_ne!(a, b);
    }

    #[test]
    fn cache_is_bounded_lru() {
        let d = svc();
        let s = session();
        let first = d.handle(req(1), &s);
        // Push enough distinct ids to evict id 1.
        for id in 2..(DEDUP_CACHE_PER_SESSION as u64 + 2) {
            d.handle(req(id), &s);
        }
        let again = d.handle(req(1), &s);
        assert_ne!(first, again); // re-executed after eviction
                                  // But recent ids are still cached.
        let recent = DEDUP_CACHE_PER_SESSION as u64 + 1;
        assert_eq!(d.handle(req(recent), &s), d.handle(req(recent), &s));
    }

    #[test]
    fn actively_retried_ids_stay_resident() {
        // A lookup refreshes recency: an id that keeps being retried is
        // not evicted by newer traffic, unlike under FIFO.
        let d = svc();
        let s = session();
        let first = d.handle(req(1), &s);
        for id in 2..(DEDUP_CACHE_PER_SESSION as u64) {
            d.handle(req(id), &s);
            assert_eq!(d.handle(req(1), &s), first); // touch
        }
        // Two more distinct ids would evict the FIFO-oldest (1) but must
        // evict an idle id instead.
        d.handle(req(10_001), &s);
        d.handle(req(10_002), &s);
        assert_eq!(d.handle(req(1), &s), first);
    }

    #[test]
    fn batch_requests_are_deduplicated_as_one_unit() {
        // A retried Batch envelope reuses its request id, so the replay
        // cache must answer the whole multi-op request once — no sub-op
        // may execute twice on a duplicate delivery.
        let d = svc();
        let s = session();
        let batch = |id| Envelope::DataReq {
            id,
            req: DataRequest::Batch {
                block: jiffy_common::BlockId(1),
                ops: vec![
                    jiffy_proto::DsOp::Enqueue { item: "a".into() },
                    jiffy_proto::DsOp::Enqueue { item: "b".into() },
                ],
                rids: vec![],
            },
            tenant: jiffy_common::TenantId::ANONYMOUS,
        };
        let first = d.handle(batch(11), &s);
        let replayed = d.handle(batch(11), &s);
        assert_eq!(first, replayed);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 1);
        assert_eq!(d.replays(), 1);
    }

    #[test]
    fn error_responses_are_not_cached() {
        // An error answer means "did not execute" (throttles precede
        // execution; other errors leave the target unmutated), so a
        // retry with the same id must reach the service again rather
        // than replay a possibly-healed rejection forever.
        struct FailOnce {
            executed: AtomicUsize,
        }
        impl Service for FailOnce {
            fn handle(&self, req: Envelope, _s: &SessionHandle) -> Envelope {
                let n = self.executed.fetch_add(1, Ordering::SeqCst);
                let id = match req {
                    Envelope::DataReq { id, .. } => id,
                    _ => unreachable!(),
                };
                if n == 0 {
                    Envelope::DataResp {
                        id,
                        resp: Err(jiffy_common::JiffyError::Throttled { retry_after_ms: 1 }),
                    }
                } else if n == 1 {
                    Envelope::DataResp {
                        id,
                        resp: Err(jiffy_common::JiffyError::StaleMetadata),
                    }
                } else {
                    Envelope::DataResp {
                        id,
                        resp: Ok(DataResponse::Pong),
                    }
                }
            }
        }
        let d = Deduplicated::new(FailOnce {
            executed: AtomicUsize::new(0),
        });
        let s = session();
        let first = d.handle(req(21), &s);
        assert!(Deduplicated::<FailOnce>::is_error(&first));
        let second = d.handle(req(21), &s);
        assert!(Deduplicated::<FailOnce>::is_error(&second));
        let third = d.handle(req(21), &s);
        assert_eq!(
            third,
            Envelope::DataResp {
                id: 21,
                resp: Ok(DataResponse::Pong)
            }
        );
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 3);
        assert_eq!(d.replays(), 0);
        // The successful answer IS cached.
        let fourth = d.handle(req(21), &s);
        assert_eq!(third, fourth);
        assert_eq!(d.replays(), 1);
    }

    #[test]
    fn control_requests_are_deduplicated_too() {
        let d = svc();
        let s = session();
        let req = |id| Envelope::ControlReq {
            id,
            req: jiffy_proto::ControlRequest::RegisterJob { name: "t".into() },
            tenant: jiffy_common::TenantId::ANONYMOUS,
        };
        let a = d.handle(req(9), &s);
        let b = d.handle(req(9), &s);
        assert_eq!(a, b);
        assert_eq!(d.inner().executed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn window_evicts_lru_within_entry_and_byte_bounds() {
        let mut w: ReplayWindow<u64> = ReplayWindow::new(3, 100);
        w.insert(1, 10, 40);
        w.insert(2, 20, 40);
        assert_eq!(w.lookup(1), Some(&10)); // touch 1: 2 is now LRU
        w.insert(3, 30, 40); // 120 bytes > 100: evict 2
        assert_eq!(w.len(), 2);
        assert_eq!(w.bytes(), 80);
        assert_eq!(w.lookup(2), None);
        assert_eq!(w.lookup(1), Some(&10));
        assert!(w.watermark() > 0);
        // Entry-count bound.
        w.insert(4, 40, 1);
        w.insert(5, 50, 1);
        assert_eq!(w.len(), 3);
        // First insert wins on a repeated id.
        w.insert(5, 99, 1);
        assert_eq!(w.lookup(5), Some(&50));
    }

    #[test]
    fn window_export_import_round_trips() {
        let mut w: ReplayWindow<u64> = ReplayWindow::new(4, 1000);
        for id in 1..=6u64 {
            w.insert(id, id * 100, 8);
        }
        w.lookup(3);
        let bytes = w.export_bytes().unwrap();
        let mut restored: ReplayWindow<u64> = ReplayWindow::new(4, 1000);
        restored.import_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), w.len());
        assert_eq!(restored.bytes(), w.bytes());
        assert_eq!(restored.watermark(), w.watermark());
        assert_eq!(restored.export_bytes().unwrap(), bytes);
        // Merge into a non-empty window keeps resident entries.
        let mut target: ReplayWindow<u64> = ReplayWindow::new(8, 1000);
        target.insert(3, 7, 8);
        target.import_bytes(&bytes).unwrap();
        assert_eq!(target.lookup(3), Some(&7)); // resident wins
        assert_eq!(target.lookup(6), Some(&600));
    }
}
